"""A small POSIX-flavoured shell.

Enough ``sh`` to express the paper's grading script as an actual shell
script running (sandboxed) in the simulated world:

* simple commands resolved via ``$PATH``, run with fork+exec;
* variables (``VAR=value``, ``$VAR``, ``${VAR}``), positional parameters
  (``$1``..``$9``, ``$#``), and ``$?``;
* command substitution ``$(cmd)`` (output captured, trailing newline
  stripped);
* redirections ``< file``, ``> file``, ``>> file`` and ``2> file``;
* ``for VAR in words...; do ... done`` and ``if cmd; then ... [else ...] fi``
  (multi-line, as produced by ordinary scripts);
* builtins: ``exit``, ``set`` (no-op), ``true``/``false``, ``echo`` falls
  through to the real echo binary.

Scripts start with ``#!/bin/sh``; the kernel's exec recognizes the
shebang and re-invokes this program with the script path prepended.
"""

from __future__ import annotations

import re

from repro.errors import SysError
from repro.kernel.syscalls import O_APPEND, O_CREAT, O_RDONLY, O_TRUNC, O_WRONLY
from repro.programs.base import Program, resolve_in_path

_VAR_RE = re.compile(r"\$\{(\w+)\}|\$(\w+)|\$(\?)|\$(#)")


class ShellExit(Exception):
    def __init__(self, status: int) -> None:
        self.status = status


class Sh(Program):
    name = "sh"
    needed = ["libc.so.7"]

    def main(self, sys, argv, env):
        args = argv[1:]
        if args and args[0] == "-c":
            script = args[1] if len(args) > 1 else ""
            positional = args[2:]
        elif args:
            try:
                script = sys.read_whole(args[0]).decode(errors="replace")
            except SysError as err:
                self.err(sys, f"sh: {args[0]}: {err.name}\n")
                return 127
            positional = args[1:]
        else:
            script = self.read_stdin(sys).decode(errors="replace")
            positional = []
        state = {
            "vars": dict(env),
            "positional": positional,
            "status": 0,
        }
        lines = self._strip_script(script)
        try:
            self._run_lines(sys, lines, state, env)
        except ShellExit as exit_:
            return exit_.status
        except SysError as err:
            self.err(sys, f"sh: {err.name}\n")
            return 2
        return state["status"]

    # ------------------------------------------------------------------
    # parsing / execution
    # ------------------------------------------------------------------

    @staticmethod
    def _strip_script(script: str) -> list[str]:
        lines: list[str] = []
        for raw in script.splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            # allow `cmd; done` style by splitting trailing keywords off
            lines.append(line)
        return lines

    def _run_lines(self, sys, lines: list[str], state: dict, env: dict) -> None:
        i = 0
        while i < len(lines):
            line = lines[i]
            if line.startswith("for "):
                i = self._run_for(sys, lines, i, state, env)
            elif line.startswith("if "):
                i = self._run_if(sys, lines, i, state, env)
            else:
                for part in self._split_semis(line):
                    self._run_simple(sys, part, state, env)
                i += 1

    @staticmethod
    def _split_semis(line: str) -> list[str]:
        parts: list[str] = []
        depth = 0
        current: list[str] = []
        for ch in line:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            if ch == ";" and depth == 0:
                parts.append("".join(current).strip())
                current = []
            else:
                current.append(ch)
        parts.append("".join(current).strip())
        return [p for p in parts if p]

    def _find_block_end(self, lines: list[str], start: int, opener: str, closer: str,
                        middle: tuple[str, ...] = ()) -> int:
        depth = 0
        for j in range(start, len(lines)):
            head = lines[j].split()[0] if lines[j].split() else ""
            if head in ("for", "if"):
                depth += 1
            elif head in ("done", "fi"):
                depth -= 1
                if depth == 0:
                    return j
        raise SysError(2, f"sh: missing {closer}")

    @staticmethod
    def _glob(sys, words: list[str]) -> list[str]:
        """Pathname expansion for `*` in the final component."""
        import fnmatch

        out: list[str] = []
        for word in words:
            if "*" not in word:
                out.append(word)
                continue
            directory, _, pattern = word.rpartition("/")
            try:
                entries = sys.contents(directory or ".")
            except SysError:
                out.append(word)  # no matches: the literal word survives
                continue
            matches = [
                (directory + "/" if directory else "") + entry
                for entry in entries
                if fnmatch.fnmatchcase(entry, pattern)
            ]
            out.extend(matches if matches else [word])
        return out

    def _run_for(self, sys, lines: list[str], i: int, state: dict, env: dict) -> int:
        # for VAR in words...; do
        header = lines[i]
        match = re.match(r"for\s+(\w+)\s+in\s+(.*?);?\s*(do)?$", header)
        if match is None:
            raise SysError(2, "sh: bad for")
        var, words_text = match.group(1), match.group(2)
        body_start = i + 1
        if match.group(3) is None:
            if lines[body_start].strip() != "do":
                raise SysError(2, "sh: expected do")
            body_start += 1
        end = self._find_block_end(lines, i, "for", "done")
        body = lines[body_start:end]
        for word in self._glob(sys, self._expand(words_text, state, sys, env).split()):
            state["vars"][var] = word
            self._run_lines(sys, list(body), state, env)
        return end + 1

    def _run_if(self, sys, lines: list[str], i: int, state: dict, env: dict) -> int:
        # if CMD; then  ...  [else ...]  fi
        header = lines[i]
        match = re.match(r"if\s+(.*?);?\s*(then)?$", header)
        if match is None:
            raise SysError(2, "sh: bad if")
        cond = match.group(1)
        body_start = i + 1
        if match.group(2) is None:
            if lines[body_start].strip() != "then":
                raise SysError(2, "sh: expected then")
            body_start += 1
        end = self._find_block_end(lines, i, "if", "fi")
        # locate a top-level `else`
        else_at = None
        depth = 0
        for j in range(body_start, end):
            head = lines[j].split()[0] if lines[j].split() else ""
            if head in ("for", "if"):
                depth += 1
            elif head == "done" or head == "fi":
                depth -= 1
            elif head == "else" and depth == 0:
                else_at = j
                break
        self._run_simple(sys, cond, state, env)
        if state["status"] == 0:
            body = lines[body_start:(else_at if else_at is not None else end)]
        else:
            body = lines[else_at + 1 : end] if else_at is not None else []
        state["status"] = 0
        self._run_lines(sys, list(body), state, env)
        return end + 1

    # ------------------------------------------------------------------
    # simple commands
    # ------------------------------------------------------------------

    def _run_simple(self, sys, text: str, state: dict, env: dict) -> None:
        text = text.strip()
        if not text:
            return
        if "|" in text:
            segments = [seg.strip() for seg in text.split("|")]
            if all(segments):
                self._run_pipeline(sys, segments, state, env)
                return
        # variable assignment
        match = re.match(r"^(\w+)=(.*)$", text)
        if match and " " not in match.group(1):
            state["vars"][match.group(1)] = self._expand(match.group(2), state, sys, env)
            state["status"] = 0
            return
        expanded = self._expand(text, state, sys, env)
        words = self._glob(sys, expanded.split())
        if not words:
            return
        if words[0] == "exit":
            raise ShellExit(int(words[1]) if len(words) > 1 else state["status"])
        if words[0] == "true":
            state["status"] = 0
            return
        if words[0] == "false":
            state["status"] = 1
            return
        if words[0] == "set":
            state["status"] = 0
            return
        words, redirs = self._extract_redirections(words)
        state["status"] = self._spawn(sys, words, redirs, state, env)

    def _run_pipeline(self, sys, segments: list[str], state: dict, env: dict) -> None:
        """``cmd1 | cmd2 | ...``: each stage's output feeds the next via a
        real pipe; the pipeline's status is the last stage's (sequential
        execution — the synchronous analogue of a shell pipeline)."""
        prev_read: int | None = None
        status = 0
        for index, segment in enumerate(segments):
            expanded = self._expand(segment, state, sys, env)
            words = self._glob(sys, expanded.split())
            if not words:
                status = 2
                break
            words, redirs = self._extract_redirections(words)
            last = index == len(segments) - 1
            write_fd: int | None = None
            read_for_next: int | None = None
            if not last:
                try:
                    read_for_next, write_fd = sys.pipe()
                except SysError as err:
                    self.err(sys, f"sh: pipe: {err.name}\n")
                    status = 2
                    break
            try:
                prog = resolve_in_path(sys, words[0], env)
                _, _, vp = sys._resolve(prog)
                child = sys.fork()
                if prev_read is not None:
                    child.fdtable.install(0, sys.proc.fdtable.get(prev_read))
                if write_fd is not None:
                    child.fdtable.install(1, sys.proc.fdtable.get(write_fd))
                self._wire(sys, child, redirs)
                status = sys.kernel.exec_file(child, vp, words, env)
            except SysError as err:
                self.err(sys, f"sh: {words[0]}: {err.name}\n")
                status = 127
            if prev_read is not None:
                sys.close(prev_read)
            if write_fd is not None:
                sys.close(write_fd)  # EOF for the next stage
            prev_read = read_for_next
        if prev_read is not None:
            try:
                sys.close(prev_read)
            except SysError:
                pass
        state["status"] = status

    @staticmethod
    def _extract_redirections(words: list[str]) -> tuple[list[str], dict[str, str]]:
        out: list[str] = []
        redirs: dict[str, str] = {}
        i = 0
        while i < len(words):
            word = words[i]
            if word in ("<", ">", ">>", "2>") and i + 1 < len(words):
                redirs[word] = words[i + 1]
                i += 2
            else:
                out.append(word)
                i += 1
        return out, redirs

    def _spawn(self, sys, words: list[str], redirs: dict[str, str], state: dict, env: dict) -> int:
        try:
            prog = resolve_in_path(sys, words[0], env)
            _, _, vp = sys._resolve(prog)
            if vp is None:
                raise SysError(2, words[0])
            child = sys.fork()
            self._wire(sys, child, redirs)
            merged_env = dict(env)
            merged_env.update(
                {k: v for k, v in state["vars"].items() if isinstance(v, str)}
            )
            return sys.kernel.exec_file(child, vp, words, merged_env)
        except SysError as err:
            self.err(sys, f"sh: {words[0]}: {err.name}\n")
            return 127

    @staticmethod
    def _wire(sys, child, redirs: dict[str, str]) -> None:
        def open_into(fd: int, path: str, flags) -> None:
            host_fd = sys.open(path, flags)
            child.fdtable.install(fd, sys.proc.fdtable.get(host_fd))
            sys.close(host_fd)

        if "<" in redirs:
            open_into(0, redirs["<"], O_RDONLY)
        if ">" in redirs:
            open_into(1, redirs[">"], O_WRONLY | O_CREAT | O_TRUNC)
        if ">>" in redirs:
            open_into(1, redirs[">>"], O_WRONLY | O_CREAT | O_APPEND)
        if "2>" in redirs:
            open_into(2, redirs["2>"], O_WRONLY | O_CREAT | O_TRUNC)

    # ------------------------------------------------------------------
    # expansion
    # ------------------------------------------------------------------

    def _expand(self, text: str, state: dict, sys, env: dict) -> str:
        # command substitution first (no nesting)
        while True:
            start = text.find("$(")
            if start == -1:
                break
            depth = 0
            for end in range(start + 1, len(text)):
                if text[end] == "(":
                    depth += 1
                elif text[end] == ")":
                    depth -= 1
                    if depth == 0:
                        break
            else:
                raise SysError(2, "sh: unterminated $(")
            inner = text[start + 2 : end]
            text = text[:start] + self._capture(sys, inner, state, env) + text[end + 1 :]

        def sub(match: re.Match) -> str:
            name = match.group(1) or match.group(2)
            if match.group(3) == "?":
                return str(state["status"])
            if match.group(4) == "#":
                return str(len(state["positional"]))
            if name and name.isdigit():
                index = int(name) - 1
                pos = state["positional"]
                return pos[index] if 0 <= index < len(pos) else ""
            return str(state["vars"].get(name, ""))

        return _VAR_RE.sub(sub, text)

    def _capture(self, sys, command: str, state: dict, env: dict) -> str:
        """$(cmd): capture output through a *real* pipe syscall, so the
        sandbox's pipe-factory policy mediates it."""
        expanded = self._expand(command, state, sys, env)
        words = expanded.split()
        if not words:
            return ""
        try:
            rfd, wfd = sys.pipe()
        except SysError as err:
            self.err(sys, f"sh: pipe: {err.name}\n")
            return ""
        try:
            prog = resolve_in_path(sys, words[0], env)
            _, _, vp = sys._resolve(prog)
            child = sys.fork()
            child.fdtable.install(1, sys.proc.fdtable.get(wfd))
            sys.kernel.exec_file(child, vp, words, env)
            sys.close(wfd)
            chunks: list[bytes] = []
            while True:
                chunk = sys.read(rfd, 1 << 16)
                if not chunk:
                    break
                chunks.append(chunk)
            return b"".join(chunks).decode(errors="replace").rstrip("\n")
        except SysError:
            return ""
        finally:
            try:
                sys.close(rfd)
            except SysError:
                pass
