"""Archiving: tar and gzip (simulated formats).

The archive format is deliberately simple but real enough that the Untar
benchmark exercises genuine filesystem churn: every member becomes a
create+write inside the sandbox.

tar format::

    SIMTAR1\n
    <path> <size>\n<bytes><path> <size>\n<bytes>...

gzip "compression" frames the payload (``SIMGZ1`` + length); it exists so
``tar xzf`` has a decompression step and the emacs tarball is a .tar.gz.
"""

from __future__ import annotations

from repro.errors import SysError
from repro.programs.base import Program

TAR_MAGIC = b"SIMTAR1\n"
GZ_MAGIC = b"SIMGZ1\n"


def tar_create(members: list[tuple[str, bytes]]) -> bytes:
    """Build an archive (used by world fixtures and the tar program)."""
    out = bytearray(TAR_MAGIC)
    for path, data in members:
        out.extend(f"{path} {len(data)}\n".encode())
        out.extend(data)
    return bytes(out)


def tar_extract_members(data: bytes) -> list[tuple[str, bytes]]:
    if not data.startswith(TAR_MAGIC):
        raise ValueError("not a SIMTAR archive")
    members: list[tuple[str, bytes]] = []
    i = len(TAR_MAGIC)
    while i < len(data):
        nl = data.index(b"\n", i)
        header = data[i:nl].decode()
        path, size_s = header.rsplit(" ", 1)
        size = int(size_s)
        start = nl + 1
        members.append((path, bytes(data[start : start + size])))
        i = start + size
    return members


def gzip_compress(data: bytes) -> bytes:
    return GZ_MAGIC + str(len(data)).encode() + b"\n" + data


def gzip_decompress(data: bytes) -> bytes:
    if not data.startswith(GZ_MAGIC):
        raise ValueError("not a SIMGZ stream")
    rest = data[len(GZ_MAGIC):]
    nl = rest.index(b"\n")
    size = int(rest[:nl])
    return bytes(rest[nl + 1 : nl + 1 + size])


class Tar(Program):
    """``tar cf out.tar paths...`` / ``tar xf archive [-C dir]`` with an
    optional ``z`` mode letter for gzip framing."""

    name = "tar"
    needed = ["libc.so.7", "libz.so.6"]

    def main(self, sys, argv, env):
        if len(argv) < 3:
            self.err(sys, "usage: tar c|x[z]f archive [paths|-C dir]\n")
            return 64
        mode = argv[1].lstrip("-")
        archive = argv[2]
        rest = argv[3:]
        use_gzip = "z" in mode
        try:
            if "c" in mode:
                return self._create(sys, archive, rest, use_gzip)
            if "x" in mode:
                dest = "."
                if "-C" in rest:
                    dest = rest[rest.index("-C") + 1]
                return self._extract(sys, archive, dest, use_gzip)
            if "t" in mode:
                return self._list(sys, archive, use_gzip)
        except (SysError, ValueError) as err:
            self.err(sys, f"tar: {err}\n")
            return 1
        self.err(sys, f"tar: unknown mode {mode!r}\n")
        return 64

    def _create(self, sys, archive: str, paths: list[str], use_gzip: bool) -> int:
        members: list[tuple[str, bytes]] = []

        def collect(path: str, rel: str) -> None:
            st = sys.stat(path)
            if st.is_dir:
                for entry in sys.contents(path):
                    collect(f"{path}/{entry}", f"{rel}/{entry}" if rel else entry)
            else:
                members.append((rel or path.rsplit("/", 1)[-1], sys.read_whole(path)))

        for path in paths:
            collect(path, path.rsplit("/", 1)[-1])
        blob = tar_create(members)
        if use_gzip:
            blob = gzip_compress(blob)
        sys.write_whole(archive, blob)
        return 0

    def _extract(self, sys, archive: str, dest: str, use_gzip: bool) -> int:
        blob = sys.read_whole(archive)
        if use_gzip or blob.startswith(GZ_MAGIC):
            blob = gzip_decompress(blob)
        for path, data in tar_extract_members(blob):
            target = dest.rstrip("/") + "/" + path
            self._mkdirs(sys, target.rsplit("/", 1)[0])
            # Preserve the execute bit for program images (stand-in for
            # the mode field a real tar header carries).
            mode = 0o755 if data.startswith(b"#!ELF") else 0o644
            sys.write_whole(target, data, mode=mode)
        return 0

    def _list(self, sys, archive: str, use_gzip: bool) -> int:
        blob = sys.read_whole(archive)
        if use_gzip or blob.startswith(GZ_MAGIC):
            blob = gzip_decompress(blob)
        for path, _ in tar_extract_members(blob):
            self.out(sys, path + "\n")
        return 0

    @staticmethod
    def _mkdirs(sys, path: str) -> None:
        parts = [p for p in path.split("/") if p]
        prefix = "/" if path.startswith("/") else ""
        for part in parts:
            prefix = prefix.rstrip("/") + "/" + part if prefix else part
            try:
                sys.mkdir(prefix)
            except SysError as err:
                if err.name != "EEXIST":
                    raise


class Gzip(Program):
    name = "gzip"
    needed = ["libc.so.7", "libz.so.6"]

    def main(self, sys, argv, env):
        decompress = "-d" in argv
        paths = [a for a in argv[1:] if not a.startswith("-")]
        try:
            for path in paths:
                data = sys.read_whole(path)
                if decompress:
                    out_path = path[:-3] if path.endswith(".gz") else path + ".out"
                    sys.write_whole(out_path, gzip_decompress(data))
                else:
                    sys.write_whole(path + ".gz", gzip_compress(data))
                sys.unlink(path)
            return 0
        except (SysError, ValueError) as err:
            self.err(sys, f"gzip: {err}\n")
            return 1
