'''Case study 1: grading student submissions (section 4.1).

Two secured variants, exactly as in the paper:

* **Sandboxed Bash script** — the original ``grade.sh`` runs unmodified
  inside one SHILL sandbox.  A 22-line capability-safe wrapper (14 lines
  of contract) plus a 22-line ambient script.  Guarantees: read-only
  submissions and tests, confined writes.

* **Pure SHILL script** — grading rewritten in SHILL (78 lines, 6 of
  contract; 16-line ambient script).  Adds the fine-grained guarantee the
  Bash version cannot give: "while grading a student's submission, no
  other student's submission, working-directory files, or results file
  can be accessed", and grade files are append-only from the graded
  code's perspective.
'''

from __future__ import annotations

from dataclasses import dataclass

from repro.api import RunResult, Session, World, as_kernel
from repro.api.sessions import deprecated_runtime_property
from repro.casestudies.probes import make_probe_batch
from repro.kernel.kernel import Kernel

SANDBOXED_CAP_SCRIPT = """\
#lang shill/cap
require shill/native;

provide grade_all :
  {wallet : native_wallet,
   submissions : is_dir && readonly,
   tests : is_dir && readonly,
   working : dir(+lookup, +contents, +path, +stat,
                 +create-file with full_privs,
                 +create-dir with full_privs),
   grades : dir(+lookup, +contents, +path, +stat,
                +create-file with full_privs),
   tmp : dir(+lookup, +path, +stat,
             +create-file with full_privs),
   devnull : file(+read, +write, +append, +stat, +path)} -> is_num;

grade_all = fun(wallet, submissions, tests, working, grades, tmp, devnull) {
  grade_sh = pkg_native("grade.sh", wallet);
  grade_sh([submissions, tests, working, grades],
           extras = [wallet, submissions, tests, working, grades, tmp, devnull]);
}
"""

SANDBOXED_AMBIENT_SCRIPT = """\
#lang shill/ambient

require shill/native;
require "grading_sandboxed.cap";

root = open_dir("/");
wallet = create_wallet();
populate_native_wallet(wallet, root,
                       "/bin:/usr/bin:/usr/local/bin",
                       "/lib:/usr/lib:/usr/local/lib",
                       pipe_factory);
submissions = open_dir("~/submissions");
tests = open_dir("~/tests");
working = open_dir("~/working");
grades = open_dir("~/grades");
tmp = open_dir("/tmp");
devnull = open_file("/dev/null");
grade_all(wallet, submissions, tests, working, grades, tmp, devnull);
"""

PURE_SHILL_CAP_SCRIPT = """\
#lang shill/cap
require shill/native;

provide grade :
  {wallet : native_wallet,
   submissions : is_dir && readonly,
   tests : is_dir && readonly,
   working : dir(+lookup, +path, +stat, +create-dir with full_privs),
   grades : dir(+create-file with {+append, +stat, +path}),
   tmp : dir(+lookup, +path, +stat, +create-file with full_privs)} -> is_num;

# Grade every submission; each student is compiled and run with
# capabilities for *their own* files only.  Returns the student count.
grade = fun(wallet, submissions, tests, working, grades, tmp) {
  ocamlc = pkg_native("ocamlc", wallet);
  ocamlrun = pkg_native("ocamlrun", wallet);
  names = test_names(tests);
  for student in contents(submissions) {
    subdir = lookup(submissions, student);
    if !is_syserror(subdir) then
      grade_one(ocamlc, ocamlrun, student, subdir, tests, names,
                working, grades, tmp);
  }
  length(contents(submissions));
}

# The names of the tests: every "<t>.in" entry, stripped of its suffix.
test_names = fun(tests) {
  collect_names(contents(tests), []);
}

collect_names = fun(entries, acc) {
  if length(entries) == 0 then acc
  else {
    entry = nth(entries, 0);
    rest = remove_first(entries);
    if ends_with(entry, ".in") then
      collect_names(rest, push(acc, nth(split(entry, "."), 0)))
    else
      collect_names(rest, acc);
  }
}

remove_first = fun(l) { drop_n(l, 1, []); }

drop_n = fun(l, n, acc) {
  if length(l) == n then acc
  else drop_n_go(l, n, acc);
}

drop_n_go = fun(l, n, acc) {
  drop_n(l, n + 1, push(acc, nth(l, n)));
}

# One student: private work dir, compile, run each test, record score.
grade_one = fun(ocamlc, ocamlrun, student, subdir, tests, names,
                working, grades, tmp) {
  work = create_dir(working, student);
  gradefile = create_file(grades, student);
  submission = lookup(subdir, "main.ml");
  if is_syserror(submission) then
    append(gradefile, student + ": 0/" + to_string(length(names)) + " (no submission)\\n")
  else {
    status = ocamlc(["-o", path(work) + "/main.byte", submission],
                    extras = [work, submission, tmp]);
    if status == 0 then {
      bytecode = lookup(work, "main.byte");
      score = run_tests(ocamlrun, bytecode, tests, names, work, 0);
      append(gradefile, student + ": " + to_string(score) + "/" +
             to_string(length(names)) + "\\n");
    } else
      append(gradefile, student + ": 0/" + to_string(length(names)) + " (compile error)\\n");
  }
}

run_tests = fun(ocamlrun, bytecode, tests, names, work, i) {
  if i == length(names) then 0
  else {
    passed = run_one(ocamlrun, bytecode, tests, nth(names, i), work);
    rest = run_tests(ocamlrun, bytecode, tests, names, work, i + 1);
    if passed then 1 + rest else rest;
  }
}

run_one = fun(ocamlrun, bytecode, tests, test, work) {
  input = lookup(tests, test + ".in");
  expected = lookup(tests, test + ".expected");
  outfile = create_file(work, test + ".out");
  status = ocamlrun([bytecode], stdin = input, stdout = outfile,
                    extras = [work, bytecode]);
  if status == 0 then read(outfile) == read(expected) else false;
}
"""

PURE_SHILL_AMBIENT_SCRIPT = """\
#lang shill/ambient

require shill/native;
require "grading_shill.cap";

root = open_dir("/");
wallet = create_wallet();
populate_native_wallet(wallet, root,
                       "/bin:/usr/bin:/usr/local/bin",
                       "/lib:/usr/lib:/usr/local/lib",
                       pipe_factory);
submissions = open_dir("~/submissions");
tests = open_dir("~/tests");
working = open_dir("~/working");
grades = open_dir("~/grades");
tmp = open_dir("/tmp");
grade(wallet, submissions, tests, working, grades, tmp);
"""

SHELLSCRIPT_CAP_SCRIPT = SANDBOXED_CAP_SCRIPT.replace(
    'pkg_native("grade.sh", wallet)', 'pkg_native("grade-sh", wallet)'
)

SHELLSCRIPT_AMBIENT_SCRIPT = SANDBOXED_AMBIENT_SCRIPT.replace(
    "grading_sandboxed.cap", "grading_shellscript.cap"
)

SCRIPTS = {
    "grading_sandboxed.cap": SANDBOXED_CAP_SCRIPT,
    "grading_shellscript.cap": SHELLSCRIPT_CAP_SCRIPT,
    "grading_shill.cap": PURE_SHILL_CAP_SCRIPT,
}


def grading_world(install_shill: bool = True, **fixture_kwargs) -> World:
    """The standard world this case study runs against: the base image
    plus the student-submission fixture.  Declarative, so repeated boots
    hit the boot-image cache and fork instead of rebuilding."""
    return World(install_shill=install_shill).with_grading_fixture(**fixture_kwargs)


#: One straight-line ambient probe touching the submissions fixture — the
#: executor-equivalence suites run it across every execution strategy.
PROBE_AMBIENT = """\
#lang shill/ambient
subs = open_dir("/home/tester/submissions");
entries = contents(subs);
append(stdout, path(subs) + "\\n");
"""


def probe_batch(jobs: int = 3, install_shill: bool = True, cache: bool = False,
                **fixture_kwargs):
    """Fixture probes over this world (see :mod:`repro.casestudies.probes`)."""
    return make_probe_batch(lambda: grading_world(install_shill, **fixture_kwargs),
                            PROBE_AMBIENT, jobs=jobs, cache=cache)


@dataclass
class GradingResult:
    session: Session
    run: RunResult
    grades: dict[str, str]

    runtime = deprecated_runtime_property()


def _collect_grades(kernel: Kernel, grades_dir: str) -> dict[str, str]:
    sys = kernel.syscalls(kernel.spawn_process("tester", "/home/tester"))
    out: dict[str, str] = {}
    for name in sys.contents(grades_dir):
        out[name] = sys.read_whole(f"{grades_dir}/{name}").decode()
    return out


def run_sandboxed_grading(world: "World | Kernel", user: str = "tester") -> GradingResult:
    """The "Sandboxed" configuration: grade.sh in one SHILL sandbox."""
    kernel = as_kernel(world)
    session = Session(kernel, user=user, scripts=SCRIPTS)
    run = session.run_ambient(SANDBOXED_AMBIENT_SCRIPT, "grading_sandboxed.ambient")
    return GradingResult(session, run, _collect_grades(kernel, f"/home/{user}/grades"))


def run_shellscript_grading(world: "World | Kernel", user: str = "tester") -> GradingResult:
    """The sandboxed configuration with the grader as an *actual shell
    script* (/usr/local/bin/grade-sh, run by the simulated /bin/sh via
    its shebang) — the closest analogue of the paper's secured Bash
    script."""
    kernel = as_kernel(world)
    session = Session(kernel, user=user, scripts=SCRIPTS)
    run = session.run_ambient(SHELLSCRIPT_AMBIENT_SCRIPT, "grading_shellscript.ambient")
    return GradingResult(session, run, _collect_grades(kernel, f"/home/{user}/grades"))


def run_shill_grading(world: "World | Kernel", user: str = "tester") -> GradingResult:
    """The "SHILL version": fine-grained per-student isolation."""
    kernel = as_kernel(world)
    session = Session(kernel, user=user, scripts=SCRIPTS)
    run = session.run_ambient(PURE_SHILL_AMBIENT_SCRIPT, "grading_shill.ambient")
    return GradingResult(session, run, _collect_grades(kernel, f"/home/{user}/grades"))


def run_baseline_grading(world: "World | Kernel", user: str = "tester") -> dict[str, str]:
    """No SHILL at all: run the grading *shell script* with the user's
    full ambient authority (the paper's baseline Bash script)."""
    kernel = as_kernel(world)
    launcher = kernel.spawn_process(user, f"/home/{user}")
    sys = kernel.syscalls(launcher)
    base = f"/home/{user}"
    status = sys.spawn(
        "/usr/local/bin/grade-sh",
        ["grade-sh", f"{base}/submissions", f"{base}/tests", f"{base}/working", f"{base}/grades"],
    )
    if status != 0:
        raise RuntimeError(f"grade-sh failed with status {status}")
    return _collect_grades(kernel, f"{base}/grades")
