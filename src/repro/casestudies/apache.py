'''Case study 3: sandboxing the Apache web server (section 4.1).

"the script's contract gives the webserver read-only access to
configuration files and web content directories, the ability to create
and use sockets, and write-only access to log files."

Notably, "programs running in a SHILL sandbox are not isolated from the
rest of the system": while httpd serves, other processes can add content
to the docroot and read the growing access log — a test demonstrates
exactly this.
'''

from __future__ import annotations

from dataclasses import dataclass

from repro.api import RunResult, Session, World, as_kernel
from repro.api.sessions import deprecated_runtime_property
from repro.casestudies.probes import make_probe_batch
from repro.kernel.kernel import Kernel
from repro.kernel.sockets import AddressFamily, SocketType

CAP_SCRIPT = """\
#lang shill/cap
require shill/native;

provide start_server :
  {wallet : native_wallet,
   net : socket_factory,
   config : is_file && readonly,
   docroot : is_dir && readonly,
   logdir : dir(+lookup with {}, +path, +stat,
                +create-file with {+write, +append, +stat, +path}),
   logfile : file(+write, +append, +stat, +path)} -> is_num;

start_server = fun(wallet, net, config, docroot, logdir, logfile) {
  httpd = pkg_native("httpd", wallet);
  httpd(["-f", config], extras = [net, config, docroot, logdir, logfile]);
}
"""

AMBIENT_SCRIPT = """\
#lang shill/ambient

require shill/native;
require "apache.cap";

root = open_dir("/");
wallet = create_wallet();
populate_native_wallet(wallet, root,
                       "/bin:/usr/bin:/usr/local/bin",
                       "/lib:/usr/lib:/usr/local/lib",
                       pipe_factory);
config = open_file("/etc/apache/httpd.conf");
docroot = open_dir("/var/www");
logdir = open_dir("/var/log");
logfile = open_file("/var/log/httpd-access.log");
start_server(wallet, socket_factory, config, docroot, logdir, logfile);
"""

SCRIPTS = {"apache.cap": CAP_SCRIPT}


def web_world(install_shill: bool = True, **fixture_kwargs) -> World:
    """The standard world: the base image plus docroot content and the
    (empty) access log the Apache workload serves and appends to."""
    return World(install_shill=install_shill).with_web_content(**fixture_kwargs)


#: One straight-line ambient probe touching the docroot fixture — the
#: executor-equivalence suites run it across every execution strategy.
PROBE_AMBIENT = """\
#lang shill/ambient
page = open_file("/var/www/page0.html");
append(stdout, read(page));
"""


def probe_batch(jobs: int = 3, install_shill: bool = True, cache: bool = False,
                **fixture_kwargs):
    """Fixture probes over this world (see :mod:`repro.casestudies.probes`)."""
    return make_probe_batch(lambda: web_world(install_shill, **fixture_kwargs),
                            PROBE_AMBIENT, jobs=jobs, cache=cache)


@dataclass
class ApacheBenchResult:
    session: Session
    run: RunResult
    responses: list[bytes]
    log_text: str

    runtime = deprecated_runtime_property()


def apache_bench(
    world: "World | Kernel",
    requests: int = 16,
    path: str = "/big.bin",
    port: int = 8080,
    user: str = "root",
) -> ApacheBenchResult:
    """Run httpd sandboxed and hit it with ``requests`` queued connections
    (the "Apache Benchmark tool" role).  Returns the raw responses and the
    access log contents."""
    kernel = as_kernel(world)
    client_fds: list[tuple] = []

    def flood(listener) -> None:
        driver = kernel.spawn_process("root", "/")
        dsys = kernel.syscalls(driver)
        for _ in range(requests):
            fd = dsys.socket(AddressFamily.AF_INET, SocketType.SOCK_STREAM)
            dsys.connect(fd, ("0.0.0.0", port))
            dsys.send(fd, f"GET {path}\n".encode())
            client_fds.append((dsys, fd))

    kernel.network.register_listen_hook(("0.0.0.0", port), flood)

    session = Session(kernel, user=user, cwd="/root", scripts=SCRIPTS)
    run = session.run_ambient(AMBIENT_SCRIPT, "apache.ambient")

    responses = [dsys.recv(fd, 1 << 26) for dsys, fd in client_fds]
    sys = kernel.syscalls(kernel.spawn_process("root", "/"))
    log_text = sys.read_whole("/var/log/httpd-access.log").decode()
    return ApacheBenchResult(session, run, responses, log_text)


def baseline_bench(world: "World | Kernel", requests: int = 16,
                   path: str = "/big.bin", port: int = 8080) -> list[bytes]:
    """The same workload with httpd run unconfined (Figure 9 baseline)."""
    kernel = as_kernel(world)
    client_fds: list[tuple] = []

    def flood(listener) -> None:
        driver = kernel.spawn_process("root", "/")
        dsys = kernel.syscalls(driver)
        for _ in range(requests):
            fd = dsys.socket(AddressFamily.AF_INET, SocketType.SOCK_STREAM)
            dsys.connect(fd, ("0.0.0.0", port))
            dsys.send(fd, f"GET {path}\n".encode())
            client_fds.append((dsys, fd))

    kernel.network.register_listen_hook(("0.0.0.0", port), flood)
    launcher = kernel.spawn_process("root", "/")
    sys = kernel.syscalls(launcher)
    status = sys.spawn("/usr/local/bin/httpd", ["httpd", "-f", "/etc/apache/httpd.conf"])
    if status != 0:
        raise RuntimeError(f"httpd exited with {status}")
    return [dsys.recv(fd, 1 << 26) for dsys, fd in client_fds]
