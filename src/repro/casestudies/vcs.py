'''Case study 5 (extension): a git-like version-control tool in SHILL.

A miniature VCS over the :func:`repro.world.add_vcs_repo` fixture —
``status`` / ``commit`` / ``log`` over a worktree with a ``.vcs``
metadata directory.  The capability story mirrors the paper's grading
study: the commit script walks the worktree with read-only privileges,
may *only create* snapshot objects (never rewrite history), and the
commit log is append-only from the script's perspective.  The deploy
token sitting next to the worktree (``~/secrets/deploy_token``) is never
passed in, so no code path in the scripts can reach it.

This is also the standard target for the declarative policy layer
(:mod:`repro.policy`) and the scenario fuzzer (:mod:`repro.fuzz`): its
worktree/metadata/secret split gives policies natural allow and deny
targets, and :func:`read_token_sandboxed` is the flip-a-denial
demonstration used by ``docs/policy.md``.
'''

from __future__ import annotations

from dataclasses import dataclass

from repro.api import RunResult, Session, World, as_kernel
from repro.api.sessions import deprecated_runtime_property
from repro.casestudies.probes import make_probe_batch
from repro.kernel.kernel import Kernel

VCS_CAP_SCRIPT = """\
#lang shill/cap

provide vcs_status :
  {src : dir(+lookup, +contents, +read, +stat, +path),
   logf : file(+read, +stat, +path)} -> is_string;

provide vcs_commit :
  {msg : is_string,
   src : dir(+lookup, +contents, +read, +stat, +path),
   objects : dir(+contents, +path, +stat,
                 +create-file with {+write, +append, +stat, +path}),
   logf : file(+read, +append, +stat, +path),
   headf : file(+write, +stat, +path)} -> is_num;

provide vcs_log :
  {logf : file(+read, +stat, +path)} -> is_string;

# Recursively collect the worktree's files, skipping the .vcs metadata
# directory.  +lookup carries no modifier, so every child inherits the
# same read-only privilege set — the whole walk stays read-only.
walk = fun(d, acc) {
  walk_entries(d, contents(d), 0, acc);
}

walk_entries = fun(d, entries, i, acc) {
  if i == length(entries) then acc
  else {
    entry = nth(entries, i);
    if entry == ".vcs" then
      walk_entries(d, entries, i + 1, acc)
    else {
      child = lookup(d, entry);
      if is_syserror(child) then
        walk_entries(d, entries, i + 1, acc)
      else {
        if is_dir(child) then
          walk_entries(d, entries, i + 1, walk(child, acc))
        else
          walk_entries(d, entries, i + 1, push(acc, child));
      }
    }
  }
}

vcs_status = fun(src, logf) {
  files = walk(src, []);
  committed = length(lines(read(logf)));
  format_status(files, 0, "# on commit " + to_string(committed) + "\\n");
}

format_status = fun(files, i, acc) {
  if i == length(files) then acc
  else format_status(files, i + 1,
                     acc + "tracked: " + path(nth(files, i)) + "\\n");
}

# Snapshot every worktree file into objects/ and append one log line.
# The objects capability can only create (never rewrite) and the log
# capability can only append — history is immutable by contract.
vcs_commit = fun(msg, src, objects, logf, headf) {
  n = length(lines(read(logf))) + 1;
  files = walk(src, []);
  store_all(files, 0, objects, n);
  append(logf, "commit " + to_string(n) + " " + msg + "\\n");
  write(headf, to_string(n) + "\\n");
  n;
}

store_all = fun(files, i, objects, n) {
  if i == length(files) then 0
  else {
    f = nth(files, i);
    obj = create_file(objects,
                      "c" + to_string(n) + "-" + to_string(i) + "-" + name(f));
    write(obj, read(f));
    store_all(files, i + 1, objects, n);
  }
}

vcs_log = fun(logf) {
  read(logf);
}
"""

STATUS_AMBIENT = """\
#lang shill/ambient

require "vcs.cap";

src = open_dir("~/project");
logf = open_file("~/project/.vcs/log");
append(stdout, vcs_status(src, logf));
"""

COMMIT_AMBIENT = """\
#lang shill/ambient

require "vcs.cap";

src = open_dir("~/project");
objects = open_dir("~/project/.vcs/objects");
logf = open_file("~/project/.vcs/log");
headf = open_file("~/project/.vcs/HEAD");
n = vcs_commit("{msg}", src, objects, logf, headf);
append(stdout, "committed " + to_string(n) + "\\n");
"""

LOG_AMBIENT = """\
#lang shill/ambient

require "vcs.cap";

logf = open_file("~/project/.vcs/log");
append(stdout, vcs_log(logf));
"""

SCRIPTS = {"vcs.cap": VCS_CAP_SCRIPT}


def vcs_world(install_shill: bool = True, owner: str = "alice", **fixture_kwargs) -> World:
    """The standard world: the base image plus a git-like repository (and
    its out-of-tree deploy token) owned by ``owner``."""
    return (World(install_shill=install_shill)
            .for_user(owner)
            .with_vcs_repo(owner=owner, **fixture_kwargs))


#: One straight-line ambient probe touching the repository fixture — the
#: executor-equivalence suites run it across every execution strategy.
PROBE_AMBIENT = """\
#lang shill/ambient
src = open_dir("~/project/src");
entries = contents(src);
append(stdout, path(src) + "\\n");
"""


def probe_batch(jobs: int = 3, install_shill: bool = True, cache: bool = False,
                **fixture_kwargs):
    """Fixture probes over this world (see :mod:`repro.casestudies.probes`)."""
    return make_probe_batch(lambda: vcs_world(install_shill, **fixture_kwargs),
                            PROBE_AMBIENT, jobs=jobs, cache=cache)


@dataclass
class VcsResult:
    session: Session
    run: RunResult
    output: str

    runtime = deprecated_runtime_property()


def _run(world: "World | Kernel", source: str, name: str, user: str) -> VcsResult:
    kernel = as_kernel(world)
    session = Session(kernel, user=user, scripts=SCRIPTS)
    run = session.run_ambient(source, name)
    return VcsResult(session, run, run.stdout)


def run_status(world: "World | Kernel", user: str = "alice") -> VcsResult:
    """List tracked files and the current commit number."""
    return _run(world, STATUS_AMBIENT, "vcs_status.ambient", user)


def run_commit(world: "World | Kernel", msg: str = "update", user: str = "alice") -> VcsResult:
    """Snapshot the worktree into ``.vcs/objects`` and append one commit."""
    return _run(world, COMMIT_AMBIENT.format(msg=msg), "vcs_commit.ambient", user)


def run_log(world: "World | Kernel", user: str = "alice") -> VcsResult:
    """Print the append-only commit log."""
    return _run(world, LOG_AMBIENT, "vcs_log.ambient", user)


def read_token_sandboxed(world: "World | Kernel", user: str = "alice",
                         policy: str = "") -> RunResult:
    """Try to read the deploy token from a ``shill-run`` sandbox.

    Under the default (empty) policy the sandbox holds no capability for
    ``~/secrets`` and the read is denied; a kernel-wide
    :meth:`~repro.api.World.with_policy_rules` allow rule flips it to a
    success with zero script changes — the executable demonstration in
    ``docs/policy.md``.
    """
    kernel = as_kernel(world)
    home = kernel.users.lookup(user).home
    from repro.api.sandboxes import Sandbox

    sandbox = Sandbox(kernel, policy, user=user, cwd=home)
    return sandbox.exec(["/bin/cat", f"{home}/secrets/deploy_token"])
