'''Case study 4: find and execute (section 4.1).

Two versions, "as another example of how programmers can use SHILL to
gradually strengthen the guarantees of scripts":

* **Simple**: one sandbox around
  ``find /usr/src -name "*.c" -exec grep -H mac_ {} \\;``
  — the sandbox has access only to /usr/src and what find/grep need.

* **Fine-grained**: the polymorphic ``find`` function from Figure 5
  walks the tree in SHILL, and a *fresh sandbox per matching file* runs
  grep with a capability for exactly that file.  "the files that grep
  operates on are exactly the files selected by the find function" —
  unlike the simple version, where "paths passed to grep may resolve to
  different files."
'''

from __future__ import annotations

from dataclasses import dataclass

from repro.api import RunResult, Session, World, as_kernel
from repro.api.sessions import deprecated_runtime_property
from repro.casestudies.probes import make_probe_batch
from repro.kernel.kernel import Kernel

SIMPLE_CAP_SCRIPT = """\
#lang shill/cap
require shill/native;

provide find_grep :
  {wallet : native_wallet,
   src : is_dir && readonly,
   out : file(+write, +append, +stat, +path)} -> is_num;

find_grep = fun(wallet, src, out) {
  findprog = pkg_native("find", wallet);
  findprog([src, "-name", "*.c", "-exec", "grep", "-H", "mac_", "{}", ";"],
           stdout = out, extras = [wallet, src]);
}
"""

# Figure 5, verbatim (ASCII spellings).
FIND_CAP_SCRIPT = """\
#lang shill/cap

provide find :
  forall X with {+lookup, +contents} .
  {cur : X, filter : X -> is_bool, cmd : X -> void} -> void;

find = fun(cur, filter, cmd) {
  if is_file(cur) && filter(cur) then
    cmd(cur);

  # if cur is a directory, recur on its contents
  if is_dir(cur) then
    for name in contents(cur) {
      child = lookup(cur, name);
      if !is_syserror(child) then
        find(child, filter, cmd);
    }
}
"""

FINE_CAP_SCRIPT = """\
#lang shill/cap
require shill/native;
require "find.cap";

provide find_grep_fine :
  {wallet : native_wallet,
   src : is_dir && readonly,
   srcwalk : dir(+lookup with {+lookup}, +stat, +path),
   out : file(+write, +append, +stat, +path)} -> void;

find_grep_fine = fun(wallet, src, srcwalk, out) {
  grep = pkg_native("grep", wallet);
  find(src,
       fun(f) { has_ext(f, "c"); },
       # binding the status makes the body's value void, as cmd's
       # contract (X -> void) requires
       fun(f) { status = grep(["-H", "mac_", f], stdout = out,
                              extras = [f, srcwalk]); });
}
"""

SIMPLE_AMBIENT = """\
#lang shill/ambient

require shill/native;
require "findgrep_simple.cap";

root = open_dir("/");
wallet = create_wallet();
populate_native_wallet(wallet, root,
                       "/bin:/usr/bin:/usr/local/bin",
                       "/lib:/usr/lib:/usr/local/lib",
                       pipe_factory);
src = open_dir("/usr/src");
out = open_file("{out}");
find_grep(wallet, src, out);
"""

FINE_AMBIENT = """\
#lang shill/ambient

require shill/native;
require "findgrep_fine.cap";

root = open_dir("/");
wallet = create_wallet();
populate_native_wallet(wallet, root,
                       "/bin:/usr/bin:/usr/local/bin",
                       "/lib:/usr/lib:/usr/local/lib",
                       pipe_factory);
src = open_dir("/usr/src");
srcwalk = open_dir("/usr/src");
out = open_file("{out}");
find_grep_fine(wallet, src, srcwalk, out);
"""

SCRIPTS = {
    "findgrep_simple.cap": SIMPLE_CAP_SCRIPT,
    "find.cap": FIND_CAP_SCRIPT,
    "findgrep_fine.cap": FINE_CAP_SCRIPT,
}


def usr_src_world(install_shill: bool = True, **fixture_kwargs) -> World:
    """The standard world: the base image plus the scaled-down /usr/src
    tree the Find workload greps."""
    return World(install_shill=install_shill).with_usr_src(**fixture_kwargs)


#: One straight-line ambient probe touching the /usr/src fixture — the
#: executor-equivalence suites run it across every execution strategy.
PROBE_AMBIENT = """\
#lang shill/ambient
src = open_dir("/usr/src/sys00/dir0");
entries = contents(src);
append(stdout, path(src) + "\\n");
"""


def probe_batch(jobs: int = 3, install_shill: bool = True, cache: bool = False,
                **fixture_kwargs):
    """Fixture probes over this world (see :mod:`repro.casestudies.probes`)."""
    return make_probe_batch(lambda: usr_src_world(install_shill, **fixture_kwargs),
                            PROBE_AMBIENT, jobs=jobs, cache=cache)


@dataclass
class FindResult:
    session: Session
    run: RunResult
    output: str

    @property
    def matches(self) -> list[str]:
        return [line for line in self.output.splitlines() if line]

    runtime = deprecated_runtime_property()


def _prepare_out(kernel: Kernel, user: str, out_path: str) -> None:
    from repro.world.image import WorldBuilder

    cred = kernel.users.lookup(user)
    WorldBuilder(kernel).write_file(out_path, b"", uid=cred.uid, gid=cred.gid)


def run_simple(world: "World | Kernel", user: str = "root",
               out_path: str = "/root/matches.txt") -> FindResult:
    """One sandbox around find -exec grep."""
    kernel = as_kernel(world)
    _prepare_out(kernel, user, out_path)
    session = Session(kernel, user=user, cwd="/root", scripts=SCRIPTS)
    run = session.run_ambient(SIMPLE_AMBIENT.format(out=out_path), "findgrep_simple.ambient")
    sys = kernel.syscalls(kernel.spawn_process(user, "/"))
    return FindResult(session, run, sys.read_whole(out_path).decode())


def run_fine(world: "World | Kernel", user: str = "root", out_path: str = "/root/matches.txt") -> FindResult:
    """The SHILL version: Figure 5's find + one grep sandbox per file."""
    kernel = as_kernel(world)
    _prepare_out(kernel, user, out_path)
    session = Session(kernel, user=user, cwd="/root", scripts=SCRIPTS)
    run = session.run_ambient(FINE_AMBIENT.format(out=out_path), "findgrep_fine.ambient")
    sys = kernel.syscalls(kernel.spawn_process(user, "/"))
    return FindResult(session, run, sys.read_whole(out_path).decode())


def run_baseline(world: "World | Kernel", user: str = "root", out_path: str = "/root/matches.txt") -> str:
    """No SHILL: find -exec grep with full ambient authority."""
    kernel = as_kernel(world)
    _prepare_out(kernel, user, out_path)
    launcher = kernel.spawn_process(user, "/")
    sys = kernel.syscalls(launcher)
    from repro.kernel.fdesc import OpenFile
    from repro.kernel.syscalls import O_APPEND, O_WRONLY

    _, _, out_vp = sys._resolve(out_path)
    child = kernel.procs.fork(launcher)
    child.fdtable.install(1, OpenFile(out_vp, O_WRONLY | O_APPEND))
    _, _, find_vp = sys._resolve("/usr/bin/find")
    status = kernel.exec_file(
        child, find_vp,
        ["find", "/usr/src", "-name", "*.c", "-exec", "grep", "-H", "mac_", "{}", ";"],
    )
    if status != 0:
        raise RuntimeError(f"find exited with {status}")
    return sys.read_whole(out_path).decode()
