"""Shared probe-batch scaffolding for the four case studies.

Each case-study module exposes ``PROBE_AMBIENT`` (one straight-line
ambient script touching its fixture) and a ``probe_batch`` helper built
on :func:`make_probe_batch` — the uniform surface the executor
equivalence tests and benchmarks drive: every executor must produce
byte-identical fingerprints for these batches.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.api import Batch, World


def make_probe_batch(world_factory: "Callable[[], World]", probe_source: str,
                     jobs: int = 3, cache: bool = False) -> "Batch":
    """A ready-to-run :class:`repro.api.Batch` of ``jobs`` fixture
    probes over ``world_factory()``'s world."""
    from repro.api import Batch

    batch = Batch(world_factory(), cache=cache)
    for index in range(jobs):
        batch.add(probe_source, name=f"probe{index}")
    return batch


def case_study_batches() -> "dict[str, Callable[[], Batch]]":
    """The canonical probe-batch factory per case-study world, at the
    scaled-down fixture sizes the equivalence suites share — the unit
    tests and the benchmark gate must test the *same* worlds, so this
    table lives in exactly one place.  (A function, not a module-level
    dict: the case-study modules import this module at load time.)"""
    from repro.casestudies import apache, findgrep, grading, package_mgmt

    return {
        "grading": lambda: grading.probe_batch(students=3, tests=2),
        "usr_src": lambda: findgrep.probe_batch(subsystems=2, files_per_dir=4),
        "web": lambda: apache.probe_batch(file_kb=16, small_files=2),
        "emacs": lambda: package_mgmt.probe_batch(),
    }
