"""The paper's four case studies (section 4.1), as SHILL scripts plus
Python drivers."""

from repro.casestudies import apache, findgrep, grading, package_mgmt

__all__ = ["grading", "package_mgmt", "apache", "findgrep"]
