"""The paper's four case studies (section 4.1), as SHILL scripts plus
Python drivers — plus the git-like VCS extension study."""

from repro.casestudies import apache, findgrep, grading, package_mgmt, vcs

__all__ = ["grading", "package_mgmt", "apache", "findgrep", "vcs"]
