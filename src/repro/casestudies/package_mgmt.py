'''Case study 2: package management for GNU Emacs (section 4.1).

"The script provides functions to download, compile, install, and
uninstall Emacs.  Unlike a typical package manager, the script has a
detailed security interface for each function.  For example, only the
function for downloading the source code can access the network, and only
the install function can write to the intended installation directory.
In addition, the install function is restricted from reading, altering,
or removing any existing files in the installation directory, and the
uninstall function's contract gives a list of files that it is permitted
to remove."
'''

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import Session, World, as_kernel
from repro.api.sessions import deprecated_runtime_property
from repro.casestudies.probes import make_probe_batch
from repro.kernel.kernel import Kernel

CAP_SCRIPT = """\
#lang shill/cap
require shill/native;

# Only download may touch the network: it alone takes a socket factory.
provide download :
  {wallet : native_wallet, net : socket_factory,
   dest : dir(+lookup, +path, +stat, +create-file with full_privs)} -> is_num;

provide unpack :
  {wallet : native_wallet, archive : is_file && readonly,
   dest : dir(+lookup, +contents, +path, +stat, +chdir,
              +create-file with full_privs,
              +create-dir with full_privs)} -> is_num;

provide configure_pkg :
  {wallet : native_wallet, srcdir : is_dir && full_privs} -> is_num;

provide build :
  {wallet : native_wallet, srcdir : is_dir && full_privs} -> is_num;

# Install may only *add* to the prefix: lookups propagate nothing, so
# existing files stay unreadable, unwritable, and undeletable.
provide install_pkg :
  {wallet : native_wallet, srcdir : is_dir && full_privs,
   prefix : dir(+lookup with {}, +path, +stat,
                +create-file with full_privs,
                +create-dir with full_privs)} -> is_num;

# Uninstall gets the prefix for traversal only, plus capabilities for
# exactly the files it is permitted to remove.
provide uninstall_pkg :
  {wallet : native_wallet,
   prefix : dir(+lookup with {}, +path, +stat),
   removable : is_list} -> is_num;

download = fun(wallet, net, dest) {
  curl = pkg_native("curl", wallet);
  archive = create_file(dest, "emacs-24.3.tar.gz");
  curl(["-o", archive, "http://ftp.gnu.org/gnu/emacs/emacs-24.3.tar.gz"],
       extras = [net, archive, dest]);
}

unpack = fun(wallet, archive, dest) {
  tar = pkg_native("tar", wallet);
  tar(["xzf", archive, "-C", dest], extras = [archive, dest]);
}

configure_pkg = fun(wallet, srcdir) {
  conf = lookup(srcdir, "configure");
  exec(conf, [conf], extras = [wallet, srcdir], cwd = srcdir);
}

build = fun(wallet, srcdir) {
  gmake = pkg_native("gmake", wallet);
  gmake(["-C", srcdir], extras = [wallet, srcdir], cwd = srcdir);
}

install_pkg = fun(wallet, srcdir, prefix) {
  gmake = pkg_native("gmake", wallet);
  gmake(["-C", srcdir, "install"], extras = [wallet, srcdir, prefix], cwd = srcdir);
}

uninstall_pkg = fun(wallet, prefix, removable) {
  rm = pkg_native("rm", wallet);
  rm(concat(["-f"], removable), extras = [prefix, removable]);
}
"""

AMBIENT_SCRIPT_TEMPLATE = """\
#lang shill/ambient

require shill/native;
require "emacs_pkg.cap";

root = open_dir("/");
wallet = create_wallet();
populate_native_wallet(wallet, root,
                       "/bin:/usr/bin:/usr/local/bin",
                       "/lib:/usr/lib:/usr/local/lib",
                       pipe_factory);
downloads = open_dir("{downloads}");
download(wallet, socket_factory, downloads);
archive = open_file("{downloads}/emacs-24.3.tar.gz");
unpack(wallet, archive, downloads);
srcdir = open_dir("{downloads}/emacs-24.3");
configure_pkg(wallet, srcdir);
build(wallet, srcdir);
prefix = open_dir("{prefix}");
install_pkg(wallet, srcdir, prefix);
emacs_bin = open_file("{prefix}/bin/emacs");
doc = open_file("{prefix}/share/DOC");
copying = open_file("{prefix}/share/COPYING");
uninstall_pkg(wallet, prefix, [emacs_bin, doc, copying]);
"""

SCRIPTS = {"emacs_pkg.cap": CAP_SCRIPT}


def emacs_world(install_shill: bool = True, tarball: bytes | None = None) -> World:
    """The standard world: the base image, the simulated GNU mirror, and
    the download/install directories the lifecycle works in."""
    return (
        World(install_shill=install_shill)
        .with_emacs_mirror(tarball)
        .with_dir("/root/downloads")
        .with_dir("/usr/local/emacs")
    )


#: One straight-line ambient probe touching the downloads fixture — the
#: executor-equivalence suites run it across every execution strategy.
PROBE_AMBIENT = """\
#lang shill/ambient
dl = open_dir("/root/downloads");
entries = contents(dl);
append(stdout, path(dl) + "\\n");
"""


def probe_batch(jobs: int = 3, install_shill: bool = True, cache: bool = False,
                tarball: bytes | None = None):
    """Fixture probes over this world (see :mod:`repro.casestudies.probes`)."""
    return make_probe_batch(lambda: emacs_world(install_shill, tarball),
                            PROBE_AMBIENT, jobs=jobs, cache=cache)


@dataclass
class PackageManager:
    """Python driver around the SHILL package-management script,
    exposing each phase separately (the benchmark times them as the
    Download/Untar/Configure/Make/Install/Uninstall sub-tasks)."""

    kernel: "World | Kernel"
    user: str = "root"
    downloads: str = "/root/downloads"
    prefix: str = "/usr/local/emacs"
    session: Session = field(init=False)
    exports: dict = field(init=False)
    _wallet: object = field(init=False, default=None)

    def __post_init__(self) -> None:
        self.kernel = as_kernel(self.kernel)
        self.session = Session(self.kernel, user=self.user, cwd="/root",
                               scripts=SCRIPTS)
        self.exports = self.session.load_cap("emacs_pkg.cap", importer="emacs.ambient")
        for path in (self.downloads, self.prefix):
            self._mkdirs(path)

    runtime = deprecated_runtime_property(hint="``.session``")

    def _mkdirs(self, path: str) -> None:
        from repro.world.image import WorldBuilder

        WorldBuilder(self.kernel).ensure_dir(path)

    def _wallet_value(self):
        if self._wallet is None:
            from repro.capability.caps import PipeFactoryCap
            from repro.stdlib.native import create_wallet, populate_native_wallet

            wallet = create_wallet()
            populate_native_wallet(
                wallet,
                self.session.open_dir("/"),
                "/bin:/usr/bin:/usr/local/bin",
                "/lib:/usr/lib:/usr/local/lib",
                PipeFactoryCap(self.session.runtime.sys),
            )
            self._wallet = wallet
        return self._wallet

    def _call(self, name: str, *args) -> int:
        status = self.session.call(self.exports[name], *args)
        if status != 0:
            raise RuntimeError(f"{name} failed with status {status}")
        return status

    # -- the six phases ---------------------------------------------------

    def download(self) -> int:
        from repro.capability.caps import SocketFactoryCap

        return self._call(
            "download", self._wallet_value(), SocketFactoryCap(),
            self.session.open_dir(self.downloads),
        )

    def unpack(self) -> int:
        return self._call(
            "unpack", self._wallet_value(),
            self.session.open_file(f"{self.downloads}/emacs-24.3.tar.gz"),
            self.session.open_dir(self.downloads),
        )

    def configure(self) -> int:
        return self._call(
            "configure_pkg", self._wallet_value(),
            self.session.open_dir(f"{self.downloads}/emacs-24.3"),
        )

    def build(self) -> int:
        return self._call(
            "build", self._wallet_value(),
            self.session.open_dir(f"{self.downloads}/emacs-24.3"),
        )

    def install(self) -> int:
        return self._call(
            "install_pkg", self._wallet_value(),
            self.session.open_dir(f"{self.downloads}/emacs-24.3"),
            self.session.open_dir(self.prefix),
        )

    def uninstall(self) -> int:
        removable = [
            self.session.open_file(f"{self.prefix}/bin/emacs"),
            self.session.open_file(f"{self.prefix}/share/DOC"),
            self.session.open_file(f"{self.prefix}/share/COPYING"),
        ]
        return self._call(
            "uninstall_pkg", self._wallet_value(),
            self.session.open_dir(self.prefix), removable,
        )

    def full_cycle(self) -> None:
        self.download()
        self.unpack()
        self.configure()
        self.build()
        self.install()
        self.uninstall()


def run_full_ambient(world: "World | Kernel", user: str = "root") -> Session:
    """Run the whole lifecycle through the ambient script (the form a
    SHILL user would actually write).  Returns the finished session."""
    kernel = as_kernel(world)
    session = Session(kernel, user=user, cwd="/root", scripts=SCRIPTS)
    from repro.world.image import WorldBuilder

    WorldBuilder(kernel).ensure_dir("/root/downloads")
    WorldBuilder(kernel).ensure_dir("/usr/local/emacs")
    source = AMBIENT_SCRIPT_TEMPLATE.format(downloads="/root/downloads", prefix="/usr/local/emacs")
    session.run_ambient(source, "emacs.ambient")
    return session
