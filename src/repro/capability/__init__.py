"""Language-level capabilities: unforgeable values conferring privileges."""

from repro.capability.caps import (
    SYSTEM_BLAME,
    Capability,
    FsCap,
    PipeFactoryCap,
    SocketFactoryCap,
)

__all__ = ["Capability", "FsCap", "PipeFactoryCap", "SocketFactoryCap", "SYSTEM_BLAME"]
