"""Language-level capabilities.

"Capabilities in the SHILL language are object-like values that
encapsulate low-level capabilities such as file descriptors or sockets"
(section 3.1.1).  Every capability pairs a kernel object (vnode or pipe
end) with:

* a **privilege set** — the operations this value permits; contract
  application attenuates it (a proxy is just an attenuated copy sharing
  the kernel object);
* a **blame label** — who to accuse if an operation outside the
  privilege set is attempted (the consumer side of the contract that
  attenuated it);
* the **last known path**, the fallback when the ``path`` system call
  cannot produce one (section 3.1.3).

Operations go through the runtime's (unsandboxed) syscall interface but
are gated *first* by the language-level privilege check — this is
capability safety "at the language level".  The file-descriptor wrappers
honour the paper's restriction that "arguments that specify sub-paths
contain only a single component": ``lookup(cur, "a/b")`` and
``lookup(cur, "..")`` are rejected.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

from repro.errors import CapabilitySafetyError, ContractViolation, SysError
from repro.kernel import errno_
from repro.kernel.fdesc import OpenFile
from repro.kernel.pipes import PipeEnd, make_pipe
from repro.kernel.syscalls import O_RDONLY
from repro.kernel.vfs import Vnode, VType
from repro.policy.engine import Decision, PolicyRequest
from repro.sandbox.privileges import Priv, PrivSet, SocketPerms

if TYPE_CHECKING:
    from repro.kernel.syscalls import SyscallInterface

SYSTEM_BLAME = "the system"


def _language_engine(sys: "SyscallInterface"):
    """The non-passive policy engine governing language-level privilege
    checks on this runtime's kernel, or None (the fast path: plain
    capability semantics, byte-identical to the pre-engine code)."""
    engine = sys.kernel.policy_engine
    if engine is None or engine.passive:
        return None
    return engine


def _language_request(sys: "SyscallInterface", op: str, target: str, priv,
                      held: frozenset = frozenset()):
    return PolicyRequest(
        domain="language",
        operation=op,
        target=target,
        priv=f"+{priv.value}",
        user=sys.proc.cred.username,
        held=held,
    )


class Capability:
    """Base class for all SHILL capability values.

    Capabilities are deliberately **not serializable**: scripts cannot
    store or share them "through memory, the filesystem, or the network"
    (section 2.1).
    """

    def __reduce__(self):
        raise CapabilitySafetyError("capabilities are not serializable")

    def __deepcopy__(self, memo):
        raise CapabilitySafetyError("capabilities cannot be copied")


class FsCap(Capability):
    """A capability for a filesystem object (file, directory, device) or
    pipe end.  Following Unix convention, "file capabilities include
    capabilities for files, pipes, and devices" (section 2.2).
    """

    def __init__(
        self,
        sys: "SyscallInterface",
        obj: Union[Vnode, PipeEnd],
        privs: PrivSet,
        last_known_path: str = "",
        blame: str = SYSTEM_BLAME,
    ) -> None:
        self._sys = sys
        self.obj = obj
        self.privs = privs
        self.last_known_path = last_known_path
        self.blame = blame

    # -- classification ---------------------------------------------------------

    @property
    def is_dir_cap(self) -> bool:
        return isinstance(self.obj, Vnode) and self.obj.is_dir

    @property
    def is_file_cap(self) -> bool:
        """Files, pipes, and devices — everything that is not a directory."""
        return not self.is_dir_cap

    @property
    def kernel_object(self):
        """The object granted to sandboxes: the vnode, or the *pipe* for a
        pipe end (privileges are per-pipe)."""
        if isinstance(self.obj, PipeEnd):
            return self.obj.pipe
        return self.obj

    # -- privilege machinery -------------------------------------------------------

    def _need(self, priv: Priv, op: str) -> None:
        engine = _language_engine(self._sys)
        if engine is not None:
            decision = engine.pre_check(_language_request(
                self._sys, op, self.try_path(), priv,
                held=frozenset(f"+{p.value}" for p in self.privs)))
            if decision is Decision.ALLOW:
                return
            if decision is Decision.DENY:
                raise ContractViolation(
                    blame=f"policy-engine:{engine.name}",
                    contract=repr(self.privs),
                    detail=f"operation {op!r} denied by policy engine on {self.describe()}",
                )
        if not self.privs.has(priv):
            raise ContractViolation(
                blame=self.blame,
                contract=repr(self.privs),
                detail=f"operation {op!r} requires +{priv.value} on {self.describe()}",
            )

    def attenuated(self, allowed: PrivSet, blame: str) -> "FsCap":
        """A proxy for this capability restricted to ``allowed`` — how
        contracts wrap capabilities."""
        return FsCap(
            self._sys,
            self.obj,
            self.privs.restricted_to(allowed),
            self.last_known_path,
            blame=blame,
        )

    def describe(self) -> str:
        path = self.try_path()
        kind = "dir" if self.is_dir_cap else "file"
        return f"<{kind}-cap {path or '?'}>"

    # -- operations (each guarded by one privilege) ---------------------------------

    def try_path(self) -> str:
        """Path without a privilege check, for error messages only."""
        if isinstance(self.obj, PipeEnd):
            return "<pipe>"
        try:
            return self._sys.kernel.vfs.path_of(self.obj)
        except SysError:
            return self.last_known_path

    def path(self) -> str:
        """+path: the ``path`` syscall, falling back to the last known
        path when the name cache fails (section 3.1.3)."""
        self._need(Priv.PATH, "path")
        if isinstance(self.obj, PipeEnd):
            raise SysError(errno_.EINVAL, "pipes have no path")
        try:
            return self._sys.kernel.vfs.path_of(self.obj)
        except SysError:
            if self.last_known_path:
                return self.last_known_path
            raise

    def stat(self):
        self._need(Priv.STAT, "stat")
        if isinstance(self.obj, PipeEnd):
            raise SysError(errno_.EINVAL, "stat on pipe capability")
        return self._fstat(self.obj)

    def _fstat(self, vp: Vnode):
        fd = self._open_fd(vp)
        try:
            return self._sys.fstat(fd)
        finally:
            self._sys.close(fd)

    def read(self) -> bytes:
        self._need(Priv.READ, "read")
        if isinstance(self.obj, PipeEnd):
            return self.obj.pipe.read(1 << 20)
        if self.obj.is_chardev:
            assert self.obj.device is not None
            return self.obj.device.read(1 << 20)
        fd = self._open_fd(self.obj)
        try:
            chunks = []
            while True:
                chunk = self._sys.read(fd, 1 << 16)
                if not chunk:
                    return b"".join(chunks)
                chunks.append(chunk)
        finally:
            self._sys.close(fd)

    def write(self, data: bytes) -> int:
        self._need(Priv.WRITE, "write")
        return self._write_raw(data, append=False)

    def append(self, data: bytes) -> int:
        self._need(Priv.APPEND, "append")
        return self._write_raw(data, append=True)

    def _write_raw(self, data: bytes, *, append: bool) -> int:
        from repro.kernel.syscalls import O_APPEND, O_WRONLY

        if isinstance(self.obj, PipeEnd):
            return self.obj.pipe.write(data)
        if self.obj.is_chardev:
            assert self.obj.device is not None
            return self.obj.device.write(data)
        if not append:
            # write replaces the contents (open-with-O_TRUNC semantics).
            self._sys.kernel.vfs.truncate_file(self.obj, 0)
        fd = self._sys._alloc_fd(OpenFile(self.obj, O_WRONLY | (O_APPEND if append else 0)))
        try:
            return self._sys.write(fd, data)
        finally:
            self._sys.close(fd)

    def contents(self) -> list[str]:
        self._need(Priv.CONTENTS, "contents")
        vp = self._require_dir("contents")
        return self._sys.kernel.vfs.contents(vp)

    def lookup(self, name: str) -> "FsCap":
        """+lookup: derive a capability for a single-component child.

        Privileges of the result follow the modifier ("the derived
        capability has the same privileges as its parent" without one).
        ``..``, ``.``, and multi-component names are rejected — "a script
        cannot use ... lookup(cur, '..') to obtain the parent directory."
        """
        self._need(Priv.LOOKUP, "lookup")
        vp = self._require_dir("lookup")
        _check_single_component(name)
        child = self._sys.kernel.vfs.lookup(vp, name)
        derived = self.privs.derived_set(Priv.LOOKUP)
        child_path = _join(self.try_path(), name)
        return FsCap(self._sys, child, derived, child_path, blame=self.blame)

    def create_file(self, name: str, mode: int = 0o644) -> "FsCap":
        self._need(Priv.CREATE_FILE, "create-file")
        vp = self._require_dir("create-file")
        _check_single_component(name)
        cred = self._sys.proc.cred
        child = self._sys.kernel.vfs.create(vp, name, VType.VREG, mode, cred.uid, cred.gid)
        derived = self.privs.derived_set(Priv.CREATE_FILE)
        return FsCap(self._sys, child, derived, _join(self.try_path(), name), blame=self.blame)

    def create_dir(self, name: str, mode: int = 0o755) -> "FsCap":
        self._need(Priv.CREATE_DIR, "create-dir")
        vp = self._require_dir("create-dir")
        _check_single_component(name)
        cred = self._sys.proc.cred
        child = self._sys.kernel.vfs.create(vp, name, VType.VDIR, mode, cred.uid, cred.gid)
        derived = self.privs.derived_set(Priv.CREATE_DIR)
        return FsCap(self._sys, child, derived, _join(self.try_path(), name), blame=self.blame)

    def unlink(self, name: str) -> None:
        """Remove child ``name``.  Requires +lookup on this directory and
        +unlink-file / +unlink-dir on the (derived) child — the mechanism
        behind "delete only files that were created with the capability".
        """
        child = self.lookup(name)
        assert isinstance(child.obj, Vnode)
        priv = Priv.UNLINK_DIR if child.obj.is_dir else Priv.UNLINK_FILE
        child._need(priv, "unlink")
        vp = self._require_dir("unlink")
        self._sys.kernel.vfs.unlink(vp, name, expect=child.obj)

    def read_symlink(self, name: str) -> str:
        self._need(Priv.READ_SYMLINK, "read-symlink")
        vp = self._require_dir("read-symlink")
        _check_single_component(name)
        child = self._sys.kernel.vfs.lookup(vp, name)
        if not child.is_symlink:
            raise SysError(errno_.EINVAL, f"{name!r} is not a symlink")
        assert child.linktarget is not None
        return child.linktarget

    def chmod(self, mode: int) -> None:
        self._need(Priv.CHMOD, "chmod")
        if not isinstance(self.obj, Vnode):
            raise SysError(errno_.EINVAL, "chmod on pipe")
        self._sys.kernel.vfs.set_meta(self.obj, mode=mode & 0o7777)

    # -- helpers -------------------------------------------------------------------

    def _require_dir(self, op: str) -> Vnode:
        if not self.is_dir_cap:
            raise SysError(errno_.ENOTDIR, f"{op} on non-directory capability")
        assert isinstance(self.obj, Vnode)
        return self.obj

    def _open_fd(self, vp: Vnode) -> int:
        return self._sys._alloc_fd(OpenFile(vp, O_RDONLY))

    def __repr__(self) -> str:
        return self.describe()


class PipeFactoryCap(Capability):
    """The right to create pipes: "The pipe factory capability has a
    create operation that returns a pair of pipe ends" (section 3.1.1).
    """

    def __init__(self, sys: "SyscallInterface") -> None:
        self._sys = sys

    def create(self) -> tuple[FsCap, FsCap]:
        rend, wend = make_pipe()
        pipe_privs = PrivSet.of(Priv.READ, Priv.WRITE, Priv.APPEND, Priv.STAT, Priv.PATH)
        read_cap = FsCap(self._sys, rend, pipe_privs.removing(Priv.WRITE, Priv.APPEND))
        write_cap = FsCap(self._sys, wend, pipe_privs.removing(Priv.READ))
        return read_cap, write_cap

    def __repr__(self) -> str:
        return "<pipe-factory>"


class SocketCap(Capability):
    """EXTENSION: a language-level socket capability.

    The paper's prototype "cannot create or manipulate sockets directly
    (which can be addressed by adding built-in functions for socket
    operations to the language)" — these are those built-ins' backing
    objects.  Each operation is gated by the socket permissions the
    factory carried when it minted this capability.
    """

    def __init__(self, sys: "SyscallInterface", fd: int, perms: SocketPerms) -> None:
        self._sys = sys
        self._fd = fd
        self.perms = perms

    def _need(self, priv) -> None:
        engine = _language_engine(self._sys)
        if engine is not None:
            decision = engine.pre_check(_language_request(
                self._sys, f"socket-{priv.value}", "<socket>", priv))
            if decision is Decision.ALLOW:
                return
            if decision is Decision.DENY:
                raise ContractViolation(
                    blame=f"policy-engine:{engine.name}",
                    contract=repr(self.perms),
                    detail=f"socket operation +{priv.value} denied by policy engine",
                )
        if not self.perms.has(priv):
            raise ContractViolation(
                blame=SYSTEM_BLAME,
                contract=repr(self.perms),
                detail=f"socket operation requires +{priv.value}",
            )

    def connect(self, host: str, port: int) -> None:
        from repro.sandbox.privileges import SockPriv

        self._need(SockPriv.CONNECT)
        self._sys.connect(self._fd, (host, int(port)))

    def bind(self, host: str, port: int) -> None:
        from repro.sandbox.privileges import SockPriv

        self._need(SockPriv.BIND)
        self._sys.bind(self._fd, (host, int(port)))

    def listen(self) -> None:
        from repro.sandbox.privileges import SockPriv

        self._need(SockPriv.LISTEN)
        self._sys.listen(self._fd)

    def accept(self) -> "SocketCap":
        from repro.sandbox.privileges import SockPriv

        self._need(SockPriv.ACCEPT)
        conn_fd = self._sys.accept(self._fd)
        return SocketCap(self._sys, conn_fd, self.perms)

    def send(self, data: bytes) -> int:
        from repro.sandbox.privileges import SockPriv

        self._need(SockPriv.SEND)
        return self._sys.send(self._fd, data)

    def recv(self, size: int = 1 << 20) -> bytes:
        from repro.sandbox.privileges import SockPriv

        self._need(SockPriv.RECEIVE)
        return self._sys.recv(self._fd, size)

    def close(self) -> None:
        self._sys.close(self._fd)

    def __repr__(self) -> str:
        return f"<socket-cap fd={self._fd} {self.perms!r}>"


class SocketFactoryCap(Capability):
    """The right to create and use sockets, with its connection-type
    refinement.  Granted to sandboxes; with the socket-builtin extension
    it also mints language-level :class:`SocketCap` values."""

    def __init__(self, perms: Optional[SocketPerms] = None) -> None:
        self.perms = perms or SocketPerms.full()

    def create(self, sys: "SyscallInterface", domain, stype) -> SocketCap:
        from repro.sandbox.privileges import SockPriv

        if not self.perms.has(SockPriv.CREATE):
            raise ContractViolation(
                blame=SYSTEM_BLAME, contract=repr(self.perms),
                detail="socket creation requires +create",
            )
        if not self.perms.allows_conn(int(domain), int(stype)):
            raise ContractViolation(
                blame=SYSTEM_BLAME, contract=repr(self.perms),
                detail=f"connection type ({int(domain)}, {int(stype)}) not permitted",
            )
        fd = sys.socket(domain, stype)
        return SocketCap(sys, fd, self.perms)

    def attenuated(self, perms: SocketPerms) -> "SocketFactoryCap":
        if not perms.subset_of(self.perms):
            raise ContractViolation(
                blame=SYSTEM_BLAME,
                contract=repr(perms),
                detail="socket factory contract demands more than the capability holds",
            )
        return SocketFactoryCap(perms)

    def __repr__(self) -> str:
        return f"<socket-factory {self.perms!r}>"


def _check_single_component(name: str) -> None:
    """The runtime's *at wrappers require single-component names
    (section 3.1.3): not empty, no '/', not '.' or '..'."""
    if not name or "/" in name or name in (".", ".."):
        raise CapabilitySafetyError(
            f"capability operations take single path components, got {name!r}"
        )


def _join(base: str, name: str) -> str:
    if not base:
        return name
    return base.rstrip("/") + "/" + name
