#!/usr/bin/env python
"""Quickstart: the paper's running example (Figures 3, 4 and 6).

Boots a simulated FreeBSD-ish world, then runs two SHILL scripts:

1. ``find_jpg`` (Figure 3) — a capability-safe script that recursively
   finds .jpg files, allowed to do *only* what its contract says;
2. ``jpeginfo`` (Figure 4) — executing a native binary inside a
   capability-based sandbox built from a native wallet, driven by the
   ambient script of Figure 6.

Run with:  python examples/quickstart.py
"""

from repro.api import ScriptRegistry, World

FIND_JPG = """\
#lang shill/cap

provide find_jpg :
  {cur : dir(+contents, +lookup, +path) \\/ file(+path),
   out : file(+append)} -> void;

find_jpg = fun(cur, out) {
  # if cur is a file with extension jpg, output its path to out.
  if is_file(cur) && has_ext(cur, "jpg") then
    append(out, path(cur) + "\\n");

  # if cur is a directory, recur on its contents
  if is_dir(cur) then
    for name in contents(cur) {
      child = lookup(cur, name);
      if !is_syserror(child) then
        find_jpg(child, out);
    }
}
"""

JPEGINFO = """\
#lang shill/cap
require shill/native;

provide jpeginfo :
  {wallet : native_wallet, out : file(+write, +append),
   arg : file(+read, +path)} -> void;

jpeginfo = fun(wallet, out, arg) {
  jpeg_wrapper = pkg_native("jpeginfo", wallet);
  status = jpeg_wrapper(["-i", arg], stdout = out);
}
"""

AMBIENT = """\
#lang shill/ambient

require shill/native;
require "jpeginfo.cap";
require "find_jpg.cap";

root = open_dir("/");
wallet = create_wallet();
populate_native_wallet(wallet, root,
                       "/bin:/usr/bin:/usr/local/bin",
                       "/lib:/usr/lib:/usr/local/lib",
                       pipe_factory);

docs = open_dir("~/Documents");
find_jpg(docs, stdout);

dog = open_file("~/Documents/dog.jpg");
jpeginfo(wallet, stdout, dog);
"""


def main() -> None:
    world = World().for_user("alice").with_jpeg_samples().boot()
    scripts = ScriptRegistry().add("find_jpg.cap", FIND_JPG).add("jpeginfo.cap", JPEGINFO)
    result = world.session(scripts=scripts).run_ambient(AMBIENT, "quickstart.ambient")

    print("--- what the scripts printed (the ambient stdout device) ---")
    print(result.stdout, end="")
    print("--- sandboxes created:", result.sandbox_count, "---")


if __name__ == "__main__":
    main()
