#!/usr/bin/env python
"""The Apache case study: a sandboxed web server.

httpd serves queued requests from inside a SHILL sandbox whose contract
gives read-only content/config, write-only logging, and a socket
factory.  A path-traversal request (GET /../etc/passwd) demonstrates the
confinement, and a file added to the docroot *after* sandbox creation
demonstrates that SHILL sandboxes are not isolated from the system.

Run with:  python examples/apache_example.py
"""

from repro.api import World
from repro.casestudies.apache import apache_bench


def main() -> None:
    world = World().with_web_content(file_kb=64, small_files=3).boot()
    world.write_file("/var/www/late.html", b"<html>added after sandbox setup</html>")

    ok = apache_bench(world.kernel, requests=8, path="/big.bin")
    print(f"/big.bin        : {len(ok.responses)} responses, "
          f"{sum(1 for r in ok.responses if r.startswith(b'HTTP/1.0 200'))} x 200 OK")

    late = apache_bench(world.kernel, requests=2, path="/late.html")
    print(f"/late.html      : {late.responses[0].splitlines()[0].decode()} "
          "(content added after the contract was written)")

    evil = apache_bench(world.kernel, requests=1, path="/../etc/passwd")
    print(f"/../etc/passwd  : {evil.responses[0].splitlines()[0].decode()} "
          "(traversal out of the docroot refused)")

    log = world.read_file("/var/log/httpd-access.log").decode()
    print(f"\naccess log ({len(log.splitlines())} lines): readable outside the sandbox")


if __name__ == "__main__":
    main()
