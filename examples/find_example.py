#!/usr/bin/env python
"""The find-and-execute case study (and Figure 5's polymorphic find).

Searches a scaled-down BSD source tree for .c files containing "mac_",
two ways: one sandbox around `find -exec grep`, and the fine-grained
SHILL version that runs one grep sandbox per matching file.  A planted
symlink pointing at /etc/passwd shows the confinement: grep matches it
but cannot read through it.

Run with:  python examples/find_example.py
"""

from repro.api import World
from repro.casestudies.findgrep import run_fine, run_simple


def main() -> None:
    world = (
        World()
        .with_usr_src(subsystems=4, files_per_dir=10)
        # Plant a symlink escape attempt.
        .with_symlink("/etc/passwd", "/usr/src/sys00/dir0/evil.c")
        .boot()
    )
    counts = world.fixtures["usr_src"]
    print(f"source tree: {counts['total']} files, {counts['c_files']} .c, "
          f"{counts['mac_files']} containing mac_")

    simple = run_simple(world.kernel, out_path="/root/simple.txt")
    print(f"\nsimple version  : {len(simple.matches)} matching lines, "
          f"{simple.run.sandbox_count} sandboxes")

    fine = run_fine(world.kernel, out_path="/root/fine.txt")
    print(f"fine version    : {len(fine.matches)} matching lines, "
          f"{fine.run.sandbox_count} sandboxes "
          f"(one per .c file)")

    leaked = "alice" in fine.output or "alice" in simple.output
    print(f"\n/etc/passwd leaked through the planted symlink: {leaked}")
    print("\nfirst few matches:")
    for line in fine.matches[:5]:
        print("  " + line)


if __name__ == "__main__":
    main()
