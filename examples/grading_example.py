#!/usr/bin/env python
"""The grading case study, including two attacks SHILL stops.

Grades a class of submissions three ways:

* baseline (no SHILL)            — both attacks succeed;
* grade.sh in one SHILL sandbox  — the test suite is protected, but one
  student can still read another's submission;
* pure-SHILL fine-grained script — both attacks stopped, honest students
  unaffected.

Run with:  python examples/grading_example.py
"""

from repro.api import World
from repro.casestudies.grading import (
    run_baseline_grading,
    run_sandboxed_grading,
    run_shill_grading,
)

STUDENTS, TESTS = 6, 3


def show(title: str, grades: dict[str, str]) -> None:
    print(f"\n== {title} ==")
    for student in sorted(grades):
        print("  " + grades[student].strip())


def grading_world(*, shill: bool = True) -> World:
    return World(install_shill=shill).with_grading_fixture(
        students=STUDENTS, tests=TESTS).boot()


def tests_intact(world: World) -> bool:
    return world.read_file("/home/tester/tests/test0.expected") != b"cheated"


def main() -> None:
    print("student00 tries to READ another student's submission;")
    print("student01 tries to OVERWRITE the test suite's expected output.")

    world = grading_world(shill=False)
    grades = run_baseline_grading(world.kernel)
    show("baseline (no SHILL)", grades)
    print("  test suite intact:", tests_intact(world))

    world = grading_world()
    result = run_sandboxed_grading(world.kernel)
    show("grade.sh in a SHILL sandbox", result.grades)
    print("  test suite intact:", tests_intact(world))
    print("  sandboxes created:", result.run.sandbox_count)

    world = grading_world()
    result = run_shill_grading(world.kernel)
    show("pure SHILL (fine-grained per-student isolation)", result.grades)
    print("  test suite intact:", tests_intact(world))
    print("  sandboxes created:", result.run.sandbox_count)


if __name__ == "__main__":
    main()
