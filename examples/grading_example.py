#!/usr/bin/env python
"""The grading case study, including two attacks SHILL stops.

Grades a class of submissions three ways:

* baseline (no SHILL)            — both attacks succeed;
* grade.sh in one SHILL sandbox  — the test suite is protected, but one
  student can still read another's submission;
* pure-SHILL fine-grained script — both attacks stopped, honest students
  unaffected.

Run with:  python examples/grading_example.py
"""

from repro.casestudies.grading import (
    run_baseline_grading,
    run_sandboxed_grading,
    run_shill_grading,
)
from repro.world import add_grading_fixture, build_world

STUDENTS, TESTS = 6, 3


def show(title: str, grades: dict[str, str]) -> None:
    print(f"\n== {title} ==")
    for student in sorted(grades):
        print("  " + grades[student].strip())


def tests_intact(kernel) -> bool:
    sys = kernel.syscalls(kernel.spawn_process("root", "/"))
    return sys.read_whole("/home/tester/tests/test0.expected") != b"cheated"


def main() -> None:
    print("student00 tries to READ another student's submission;")
    print("student01 tries to OVERWRITE the test suite's expected output.")

    kernel = build_world(install_shill=False)
    add_grading_fixture(kernel, students=STUDENTS, tests=TESTS)
    grades = run_baseline_grading(kernel)
    show("baseline (no SHILL)", grades)
    print("  test suite intact:", tests_intact(kernel))

    kernel = build_world()
    add_grading_fixture(kernel, students=STUDENTS, tests=TESTS)
    result = run_sandboxed_grading(kernel)
    show("grade.sh in a SHILL sandbox", result.grades)
    print("  test suite intact:", tests_intact(kernel))
    print("  sandboxes created:", int(result.runtime.profile["sandbox_count"]))

    kernel = build_world()
    add_grading_fixture(kernel, students=STUDENTS, tests=TESTS)
    result = run_shill_grading(kernel)
    show("pure SHILL (fine-grained per-student isolation)", result.grades)
    print("  test suite intact:", tests_intact(kernel))
    print("  sandboxes created:", int(result.runtime.profile["sandbox_count"]))


if __name__ == "__main__":
    main()
