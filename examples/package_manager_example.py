#!/usr/bin/env python
"""The Emacs package-management case study.

Downloads (from a simulated GNU mirror), unpacks, configures, builds,
installs, and uninstalls GNU Emacs — each phase in a sandbox whose
contract grants only what that phase needs: only download can touch the
network; only install can write under the prefix (and cannot read or
remove anything already there); uninstall may remove exactly the listed
files.

Run with:  python examples/package_manager_example.py
"""

from repro.casestudies.package_mgmt import PackageManager
from repro.world import add_emacs_mirror, build_world


def main() -> None:
    kernel = build_world()
    add_emacs_mirror(kernel)
    sys = kernel.syscalls(kernel.spawn_process("root", "/"))

    pm = PackageManager(kernel)
    sys.write_whole("/usr/local/emacs/canary.txt", b"user file, do not touch")

    for phase in ("download", "unpack", "configure", "build", "install", "uninstall"):
        getattr(pm, phase)()
        print(f"{phase:10s} ok")

    print("\nafter uninstall:")
    print("  prefix/bin:", sys.contents("/usr/local/emacs/bin"))
    print("  prefix/share:", sys.contents("/usr/local/emacs/share"))
    print("  canary survived:", sys.read_whole("/usr/local/emacs/canary.txt").decode())
    print("  sandboxes created:", int(pm.runtime.profile["sandbox_count"]))


if __name__ == "__main__":
    main()
