#!/usr/bin/env python
"""The Emacs package-management case study.

Downloads (from a simulated GNU mirror), unpacks, configures, builds,
installs, and uninstalls GNU Emacs — each phase in a sandbox whose
contract grants only what that phase needs: only download can touch the
network; only install can write under the prefix (and cannot read or
remove anything already there); uninstall may remove exactly the listed
files.

Run with:  python examples/package_manager_example.py
"""

from repro.api import World
from repro.casestudies.package_mgmt import PackageManager


def main() -> None:
    world = World().with_emacs_mirror().boot()

    pm = PackageManager(world.kernel)
    world.write_file("/usr/local/emacs/canary.txt", b"user file, do not touch")

    for phase in ("download", "unpack", "configure", "build", "install", "uninstall"):
        getattr(pm, phase)()
        print(f"{phase:10s} ok")

    sys = world.syscalls()
    print("\nafter uninstall:")
    print("  prefix/bin:", sys.contents("/usr/local/emacs/bin"))
    print("  prefix/share:", sys.contents("/usr/local/emacs/share"))
    print("  canary survived:", world.read_file("/usr/local/emacs/canary.txt").decode())
    print("  sandboxes created:", pm.session.sandbox_count)


if __name__ == "__main__":
    main()
