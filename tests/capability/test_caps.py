"""Language-level capability tests: operations, attenuation, safety rules."""

from __future__ import annotations

import pytest

from repro.errors import CapabilitySafetyError, ContractViolation, SysError
from repro.capability.caps import FsCap, PipeFactoryCap, SocketFactoryCap
from repro.sandbox.privileges import Priv, PrivSet, SocketPerms, SockPriv


@pytest.fixture
def sys_iface(kernel):
    return kernel.syscalls(kernel.spawn_process("alice", "/home/alice"))


def cap_for(sys_iface, path: str, privs: PrivSet | None = None) -> FsCap:
    _, _, vp = sys_iface._resolve(path)
    assert vp is not None
    return FsCap(sys_iface, vp, privs or PrivSet.full(), path)


class TestClassification:
    def test_dir_cap(self, sys_iface):
        cap = cap_for(sys_iface, "/home/alice")
        assert cap.is_dir_cap and not cap.is_file_cap

    def test_file_cap(self, sys_iface):
        cap = cap_for(sys_iface, "/home/alice/dog.jpg")
        assert cap.is_file_cap and not cap.is_dir_cap

    def test_pipe_end_is_file_cap(self, sys_iface):
        read_cap, write_cap = PipeFactoryCap(sys_iface).create()
        assert read_cap.is_file_cap and write_cap.is_file_cap


class TestOperations:
    def test_read(self, sys_iface):
        assert cap_for(sys_iface, "/home/alice/dog.jpg").read() == b"JPEGDATA-DOG"

    def test_write_then_read(self, sys_iface):
        cap = cap_for(sys_iface, "/home/alice/dog.jpg")
        cap.write(b"NEW")
        assert cap.read() == b"NEW"

    def test_append(self, sys_iface):
        cap = cap_for(sys_iface, "/home/alice/dog.jpg")
        cap.append(b"+TAIL")
        assert cap.read().endswith(b"+TAIL")

    def test_path(self, sys_iface):
        assert cap_for(sys_iface, "/home/alice/dog.jpg").path() == "/home/alice/dog.jpg"

    def test_path_falls_back_to_last_known(self, sys_iface, kernel):
        cap = cap_for(sys_iface, "/home/alice/dog.jpg")
        home = kernel.vfs.lookup(kernel.vfs.lookup(kernel.vfs.root, "home"), "alice")
        kernel.vfs.unlink(home, "dog.jpg")
        assert cap.path() == "/home/alice/dog.jpg"  # last known path

    def test_stat(self, sys_iface):
        assert cap_for(sys_iface, "/home/alice/dog.jpg").stat().size == 12

    def test_contents(self, sys_iface):
        assert "dog.jpg" in cap_for(sys_iface, "/home/alice").contents()

    def test_lookup_derives(self, sys_iface):
        child = cap_for(sys_iface, "/home/alice").lookup("dog.jpg")
        assert child.read() == b"JPEGDATA-DOG"

    def test_create_file_and_unlink(self, sys_iface):
        home = cap_for(sys_iface, "/home/alice")
        child = home.create_file("scratch.txt")
        child.write(b"tmp")
        home.unlink("scratch.txt")
        with pytest.raises(SysError):
            home.lookup("scratch.txt")

    def test_create_dir(self, sys_iface):
        home = cap_for(sys_iface, "/home/alice")
        sub = home.create_dir("subdir")
        assert sub.is_dir_cap and sub.contents() == []

    def test_chmod(self, sys_iface):
        cap = cap_for(sys_iface, "/home/alice/dog.jpg")
        cap.chmod(0o600)
        assert cap.stat().mode == 0o600


class TestCapabilitySafety:
    def test_lookup_dotdot_refused(self, sys_iface):
        with pytest.raises(CapabilitySafetyError):
            cap_for(sys_iface, "/home/alice").lookup("..")

    def test_lookup_dot_refused(self, sys_iface):
        with pytest.raises(CapabilitySafetyError):
            cap_for(sys_iface, "/home/alice").lookup(".")

    def test_lookup_multicomponent_refused(self, sys_iface):
        with pytest.raises(CapabilitySafetyError):
            cap_for(sys_iface, "/").lookup("home/alice")

    def test_not_picklable(self, sys_iface):
        import pickle

        with pytest.raises(CapabilitySafetyError):
            pickle.dumps(cap_for(sys_iface, "/home/alice"))

    def test_not_deepcopyable(self, sys_iface):
        import copy

        with pytest.raises(CapabilitySafetyError):
            copy.deepcopy(cap_for(sys_iface, "/home/alice"))


class TestAttenuationAndDerivation:
    def test_missing_privilege_raises_with_blame(self, sys_iface):
        cap = cap_for(sys_iface, "/home/alice/dog.jpg", PrivSet.of(Priv.STAT))
        cap.blame = "the-culprit"
        with pytest.raises(ContractViolation) as exc:
            cap.read()
        assert exc.value.blame == "the-culprit"
        assert "+read" in exc.value.detail

    def test_derived_privs_follow_modifier(self, sys_iface):
        privs = PrivSet.of(Priv.LOOKUP).with_modifier(Priv.LOOKUP, {Priv.STAT, Priv.PATH})
        child = cap_for(sys_iface, "/home/alice", privs).lookup("dog.jpg")
        assert child.privs.privs() == {Priv.STAT, Priv.PATH}

    def test_derived_privs_inherit_without_modifier(self, sys_iface):
        privs = PrivSet.of(Priv.LOOKUP, Priv.READ, Priv.STAT)
        child = cap_for(sys_iface, "/home/alice", privs).lookup("dog.jpg")
        assert child.privs.privs() == {Priv.LOOKUP, Priv.READ, Priv.STAT}

    def test_attenuated_never_amplifies(self, sys_iface):
        cap = cap_for(sys_iface, "/home/alice/dog.jpg", PrivSet.of(Priv.READ))
        out = cap.attenuated(PrivSet.of(Priv.READ, Priv.WRITE, Priv.APPEND), blame="x")
        assert out.privs.privs() == {Priv.READ}

    def test_unlink_needs_priv_on_child(self, sys_iface):
        privs = PrivSet.of(Priv.LOOKUP).with_modifier(Priv.LOOKUP, {Priv.STAT})
        home = cap_for(sys_iface, "/home/alice", privs)
        with pytest.raises(ContractViolation) as exc:
            home.unlink("dog.jpg")
        assert "+unlink-file" in exc.value.detail


class TestFactories:
    def test_pipe_roundtrip(self, sys_iface):
        read_cap, write_cap = PipeFactoryCap(sys_iface).create()
        write_cap.write(b"through")
        assert read_cap.read() == b"through"

    def test_pipe_ends_one_directional(self, sys_iface):
        read_cap, write_cap = PipeFactoryCap(sys_iface).create()
        with pytest.raises(ContractViolation):
            read_cap.write(b"x")
        with pytest.raises(ContractViolation):
            write_cap.read()

    def test_socket_factory_attenuation(self):
        factory = SocketFactoryCap()
        narrowed = factory.attenuated(SocketPerms({SockPriv.CONNECT, SockPriv.SEND}))
        assert narrowed.perms.has(SockPriv.SEND)
        with pytest.raises(ContractViolation):
            narrowed.attenuated(SocketPerms({SockPriv.BIND}))
