"""Property test: parse(pprint(ast)) == ast for generated ASTs."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.lang import ast_ as A
from repro.lang.parser import parse_source
from repro.lang.pprint import pprint_ctc, pprint_expr, pprint_module

idents = st.sampled_from(["x", "y", "foo", "cur", "out_v"])
privs = st.sampled_from(["read", "lookup", "contents", "create-file", "stat", "path"])

# -- expression ASTs --------------------------------------------------------

literals = st.one_of(
    st.integers(min_value=0, max_value=10_000).map(A.Lit),
    st.booleans().map(A.Lit),
    st.text(alphabet="abc xyz_!.", max_size=8).map(A.Lit),
)


def exprs(depth: int = 2) -> st.SearchStrategy:
    base = st.one_of(literals, idents.map(A.Var))
    if depth == 0:
        return base
    sub = exprs(depth - 1)
    return st.one_of(
        base,
        st.lists(sub, max_size=3).map(lambda items: A.ListLit(tuple(items))),
        st.tuples(idents, st.lists(sub, max_size=3)).map(
            lambda t: A.Call(A.Var(t[0]), tuple(t[1]))
        ),
        st.tuples(st.sampled_from(["&&", "||"]), sub, sub).map(
            lambda t: A.BinOp(t[0], t[1], t[2])
        ),
        st.tuples(st.sampled_from(["+", "*", "==", "<"]), sub, sub).map(
            lambda t: A.BinOp(t[0], t[1], t[2])
        ),
        sub.map(lambda e: A.UnOp("!", e)),
    )


@settings(max_examples=80, deadline=None)
@given(expr=exprs())
def test_expr_roundtrip(expr):
    source = f"probe = {pprint_expr(expr)};"
    module = parse_source(source, "shill/cap")
    stmt = module.body[0]
    assert isinstance(stmt, A.Def)
    assert stmt.expr == expr


# -- contract ASTs ------------------------------------------------------------------

priv_items = st.builds(
    A.CtcPrivItem,
    priv=privs,
    modifier=st.one_of(
        st.none(),
        st.lists(privs, min_size=1, max_size=2, unique=True).map(tuple),
    ),
    modifier_full=st.just(False),
)


def ctcs(depth: int = 2) -> st.SearchStrategy:
    base = st.one_of(
        st.sampled_from(["is_file", "is_dir", "readonly", "void"]).map(A.CtcName),
        st.builds(
            A.CtcCap,
            kind=st.sampled_from(["file", "dir", "cap"]),
            items=st.lists(priv_items, min_size=1, max_size=3).map(tuple),
        ),
    )
    if depth == 0:
        return base
    sub = ctcs(depth - 1)
    return st.one_of(
        base,
        st.lists(sub, min_size=2, max_size=3).map(lambda ps: A.CtcOr(tuple(ps))),
        st.lists(sub, min_size=2, max_size=3).map(lambda ps: A.CtcAnd(tuple(ps))),
        st.builds(
            A.CtcFun,
            params=st.lists(st.tuples(idents, sub), min_size=1, max_size=3,
                            unique_by=lambda t: t[0]).map(tuple),
            result=sub,
        ),
    )


def _normalize(ctc: A.Ctc) -> A.Ctc:
    """Adjacent same-operator nests flatten on reparse; normalize both
    sides by flattening nested Or-of-Or / And-of-And."""
    if isinstance(ctc, A.CtcOr):
        parts: list[A.Ctc] = []
        for part in (_normalize(p) for p in ctc.parts):
            parts.extend(part.parts if isinstance(part, A.CtcOr) else [part])
        return A.CtcOr(tuple(parts))
    if isinstance(ctc, A.CtcAnd):
        parts = []
        for part in (_normalize(p) for p in ctc.parts):
            parts.extend(part.parts if isinstance(part, A.CtcAnd) else [part])
        return A.CtcAnd(tuple(parts))
    if isinstance(ctc, A.CtcFun):
        return A.CtcFun(
            tuple((n, _normalize(c)) for n, c in ctc.params), _normalize(ctc.result)
        )
    if isinstance(ctc, A.CtcForall):
        body = _normalize(ctc.body)
        assert isinstance(body, A.CtcFun)
        return A.CtcForall(ctc.var, ctc.bound, body)
    return ctc


@settings(max_examples=80, deadline=None)
@given(ctc=ctcs())
def test_contract_roundtrip(ctc):
    source = f"provide f : {pprint_ctc(ctc)};\nf = fun(x) {{ x; }}"
    module = parse_source(source, "shill/cap")
    assert _normalize(module.provides[0].contract) == _normalize(ctc)


@settings(max_examples=40, deadline=None)
@given(
    var=st.sampled_from(["X", "Y"]),
    bound=st.lists(privs, min_size=1, max_size=3, unique=True).map(tuple),
    body=ctcs(1),
)
def test_forall_roundtrip(var, bound, body):
    fun_body = A.CtcFun((("cur", A.CtcName(var)),), body)
    ctc = A.CtcForall(var, bound, fun_body)
    source = f"provide f : {pprint_ctc(ctc)};\nf = fun(cur) {{ cur; }}"
    module = parse_source(source, "shill/cap")
    assert _normalize(module.provides[0].contract) == _normalize(ctc)


def test_module_roundtrip_smoke():
    source = (
        "#lang shill/cap\n"
        'require shill/native;\nrequire "other.cap";\n'
        "provide f : {x : is_file && readonly} -> void;\n"
        "f = fun(x) { if is_file(x) then read(x); else path(x); }\n"
    )
    from repro.lang.modules import read_lang

    lang, body = read_lang(source)
    module = parse_source(body, lang)
    printed = pprint_module(module)
    lang2, body2 = read_lang(printed)
    module2 = parse_source(body2, lang2)
    assert module2.requires == module.requires
    assert module2.provides == module.provides
