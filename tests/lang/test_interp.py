"""Interpreter and module-system tests (capability-safe + ambient)."""

from __future__ import annotations

import pytest

from repro.errors import (
    CapabilitySafetyError,
    ContractViolation,
    ShillRuntimeError,
)
from repro.lang.runner import ShillRuntime


@pytest.fixture
def rt(kernel) -> ShillRuntime:
    return ShillRuntime(kernel, user="alice", cwd="/home/alice")


def run_cap(rt: ShillRuntime, body: str, provide: str, name: str = "m.cap"):
    rt.register_script(name, f"#lang shill/cap\n{body}")
    return rt.load_cap_exports(name)[provide]


class TestEvaluation:
    def test_arithmetic(self, rt):
        f = run_cap(rt, "provide f : {x : is_num} -> is_num;\nf = fun(x) { x * 2 + 1; }", "f")
        assert rt.call(f, 20) == 41

    def test_string_concat(self, rt):
        f = run_cap(rt, 'provide f : {s : is_string} -> is_string;\nf = fun(s) { s + "!"; }', "f")
        assert rt.call(f, "hi") == "hi!"

    def test_recursion(self, rt):
        f = run_cap(
            rt,
            "provide fact : {n : is_num} -> is_num;\n"
            "fact = fun(n) { if n <= 1 then 1 else n * fact(n - 1); }",
            "fact",
        )
        assert rt.call(f, 6) == 720

    def test_higher_order(self, rt):
        f = run_cap(
            rt,
            "provide twice : {f : is_num -> is_num, x : is_num} -> is_num;\n"
            "twice = fun(f, x) { f(f(x)); }",
            "twice",
        )
        assert rt.call(f, lambda v: v + 3, 10) == 16

    def test_for_loop_and_lists(self, rt):
        src = (
            "provide sum : {l : is_list} -> is_num;\n"
            "sum = fun(l) {\n"
            "  total = count(l, 0);\n"
            "  total;\n"
            "}\n"
            "count = fun(l, acc) {\n"
            "  if length(l) == 0 then acc else count(rest(l), acc + nth(l, 0));\n"
            "}\n"
            "rest = fun(l) { slice_from(l, 1); }\n"
        )
        # slice helpers aren't builtins; define sum via recursion instead:
        src = (
            "provide sum : {l : is_list} -> is_num;\n"
            "sum = fun(l) { go(l, 0, 0); }\n"
            "go = fun(l, i, acc) {\n"
            "  if i == length(l) then acc else go(l, i + 1, acc + nth(l, i));\n"
            "}\n"
        )
        f = run_cap(rt, src, "sum")
        assert rt.call(f, [1, 2, 3, 4]) == 10

    def test_no_mutable_variables(self, rt):
        with pytest.raises(ShillRuntimeError) as exc:
            run_cap(rt, "provide f : is_num -> is_num;\nx = 1;\nx = 2;\nf = fun(y) { y; }", "f")
        assert "mutable" in str(exc.value) or "duplicate" in str(exc.value)

    def test_condition_must_be_boolean(self, rt):
        f = run_cap(rt, "provide f : {x : is_num} -> is_num;\nf = fun(x) { if x then 1 else 2; }", "f")
        with pytest.raises(ShillRuntimeError):
            rt.call(f, 5)

    def test_unbound_variable(self, rt):
        f = run_cap(rt, "provide f : {x : is_num} -> is_num;\nf = fun(x) { nosuch; }", "f")
        with pytest.raises(ShillRuntimeError) as exc:
            rt.call(f, 1)
        assert "unbound" in str(exc.value)

    def test_division_semantics(self, rt):
        f = run_cap(rt, "provide f : {a : is_num, b : is_num} -> is_num;\nf = fun(a, b) { a / b; }", "f")
        assert rt.call(f, 10, 2) == 5
        with pytest.raises(ShillRuntimeError):
            rt.call(f, 1, 0)


class TestCapabilityBuiltins:
    def test_lookup_and_read(self, rt):
        f = run_cap(
            rt,
            "provide f : {d : is_dir} -> is_string;\nf = fun(d) { read(lookup(d, \"dog.jpg\")); }",
            "f",
        )
        assert rt.call(f, rt.open_dir("/home/alice")) == "JPEGDATA-DOG"

    def test_lookup_missing_gives_syserror_value(self, rt):
        f = run_cap(
            rt,
            "provide f : {d : is_dir} -> is_bool;\n"
            "f = fun(d) { is_syserror(lookup(d, \"missing\")); }",
            "f",
        )
        assert rt.call(f, rt.open_dir("/home/alice")) is True

    def test_lookup_dotdot_rejected(self, rt):
        """Scripts cannot traverse upwards: lookup(cur, '..') fails."""
        f = run_cap(
            rt,
            "provide f : {d : is_dir} -> void;\nf = fun(d) { lookup(d, \"..\"); }",
            "f",
        )
        with pytest.raises(CapabilitySafetyError):
            rt.call(f, rt.open_dir("/home/alice"))

    def test_multicomponent_lookup_rejected(self, rt):
        f = run_cap(
            rt,
            "provide f : {d : is_dir} -> void;\nf = fun(d) { lookup(d, \"a/b\"); }",
            "f",
        )
        with pytest.raises(CapabilitySafetyError):
            rt.call(f, rt.open_dir("/"))

    def test_create_and_write(self, rt):
        f = run_cap(
            rt,
            "provide f : {d : is_dir} -> void;\n"
            "f = fun(d) { write(create_file(d, \"new.txt\"), \"content\"); }",
            "f",
        )
        rt.call(f, rt.open_dir("/home/alice"))
        assert rt.sys.read_whole("/home/alice/new.txt") == b"content"

    def test_contract_attenuation_enforced_in_script(self, rt):
        """A script whose contract says readonly cannot write."""
        f = run_cap(
            rt,
            "provide f : {x : readonly} -> void;\nf = fun(x) { write(x, \"evil\"); }",
            "f",
        )
        with pytest.raises(ContractViolation) as exc:
            rt.call(f, rt.open_file("/home/alice/dog.jpg"))
        assert exc.value.blame == "m.cap"

    def test_ambient_minting_respects_dac(self, kernel):
        """Bob's runtime minting a cap for alice's private file gets no
        read privilege (ambient authority = what DAC allows)."""
        rt = ShillRuntime(kernel, user="bob", cwd="/home/bob")
        cap = rt.open_file("/home/alice/notes.txt")
        from repro.sandbox.privileges import Priv

        assert not cap.privs.has(Priv.READ)
        assert cap.privs.has(Priv.STAT)


class TestModules:
    def test_provide_without_definition(self, rt):
        rt.register_script("bad.cap", "#lang shill/cap\nprovide ghost : is_num -> is_num;\n")
        with pytest.raises(ShillRuntimeError):
            rt.load_cap_exports("bad.cap")

    def test_cap_cannot_require_ambient(self, rt):
        rt.register_script("amb", "#lang shill/ambient\nx = open_dir(\"/\");\n")
        rt.register_script(
            "m.cap",
            '#lang shill/cap\nrequire "amb";\nprovide f : is_num -> is_num;\nf = fun(x) { x; }')
        with pytest.raises(CapabilitySafetyError):
            rt.load_cap_exports("m.cap")

    def test_require_cycle_detected(self, rt):
        rt.register_script("a.cap", '#lang shill/cap\nrequire "b.cap";\n')
        rt.register_script("b.cap", '#lang shill/cap\nrequire "a.cap";\n')
        with pytest.raises(ShillRuntimeError) as exc:
            rt.load_cap_exports("a.cap")
        assert "cycle" in str(exc.value)

    def test_cross_module_contract_blame(self, rt):
        """Module B imports f from A; B supplying a bad argument blames B."""
        rt.register_script(
            "a.cap",
            "#lang shill/cap\nprovide f : {x : is_num} -> is_num;\nf = fun(x) { x; }",
        )
        rt.register_script(
            "b.cap",
            '#lang shill/cap\nrequire "a.cap";\n'
            "provide g : {s : is_string} -> is_num;\ng = fun(s) { f(s); }",
        )
        g = rt.load_cap_exports("b.cap")["g"]
        with pytest.raises(ContractViolation) as exc:
            rt.call(g, "oops")
        assert exc.value.blame == "b.cap"

    def test_missing_script(self, rt):
        with pytest.raises(ShillRuntimeError):
            rt.load_cap_exports("nope.cap")

    def test_user_defined_predicate_contract(self, rt):
        source = (
            "#lang shill/cap\n"
            "is_small = fun(n) { is_num(n) && n < 10; }\n"
            "provide f : {x : is_small} -> is_num;\n"
            "f = fun(x) { x + 1; }\n"
        )
        rt.register_script("pred.cap", source)
        f = rt.load_cap_exports("pred.cap")["f"]
        assert rt.call(f, 3) == 4
        with pytest.raises(ContractViolation):
            rt.call(f, 50)


class TestAmbient:
    def test_ambient_script_runs(self, rt):
        rt.register_script(
            "show.cap",
            "#lang shill/cap\nprovide show : {f : readonly, out : writeable} -> void;\n"
            "show = fun(f, out) { append(out, read(f)); }",
        )
        rt.run_ambient(
            '#lang shill/ambient\nrequire "show.cap";\n'
            'f = open_file("~/dog.jpg");\nshow(f, stdout);\n'
        )
        assert rt.tty.text == "JPEGDATA-DOG"

    def test_ambient_tilde_expansion(self, rt):
        env = rt.run_ambient('#lang shill/ambient\nd = open_dir("~");\n')
        assert env.lookup("d").try_path() == "/home/alice"

    def test_ambient_minted_cap_full_owner_privs(self, rt):
        from repro.sandbox.privileges import Priv

        env = rt.run_ambient('#lang shill/ambient\nf = open_file("~/notes.txt");\n')
        cap = env.lookup("f")
        assert cap.privs.has(Priv.READ) and cap.privs.has(Priv.WRITE)

    def test_profile_counters_exist(self, rt):
        rt.run_ambient('#lang shill/ambient\nd = open_dir("/");\n')
        assert rt.profile["total"] > 0
        assert rt.profile["sandbox_count"] == 0
