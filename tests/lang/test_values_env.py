"""Values, environments, errors, and audit-log unit tests."""

from __future__ import annotations

import pytest

from repro.errors import (
    CapabilitySafetyError,
    ContractViolation,
    ShillRuntimeError,
    ShillSyntaxError,
    SysError,
)
from repro.kernel import errno_
from repro.lang.env import Env
from repro.lang.values import VOID, SysErrorVal, Void, shill_repr, truthy
from repro.sandbox.audit import AuditLog
from repro.sandbox.privileges import Priv, PrivSet


class TestVoid:
    def test_singleton(self):
        assert Void() is VOID

    def test_falsy(self):
        assert not VOID

    def test_repr(self):
        assert repr(VOID) == "void"


class TestSysErrorVal:
    def test_equality_by_name(self):
        assert SysErrorVal("ENOENT") == SysErrorVal("ENOENT", "different msg")
        assert SysErrorVal("ENOENT") != SysErrorVal("EACCES")

    def test_hashable(self):
        assert len({SysErrorVal("ENOENT"), SysErrorVal("ENOENT")}) == 1


class TestTruthy:
    def test_bools_pass(self):
        assert truthy(True) is True and truthy(False) is False

    @pytest.mark.parametrize("value", [0, 1, "", "x", [], VOID])
    def test_non_bools_rejected(self, value):
        with pytest.raises(ShillRuntimeError):
            truthy(value)


class TestShillRepr:
    def test_forms(self):
        assert shill_repr(True) == "true"
        assert shill_repr(False) == "false"
        assert shill_repr("s") == "s"
        assert shill_repr([1, "a", True]) == "[1, a, true]"
        assert shill_repr(VOID) == "void"


class TestEnv:
    def test_define_lookup(self):
        env = Env()
        env.define("x", 1)
        assert env.lookup("x") == 1

    def test_shadowing_in_child(self):
        env = Env()
        env.define("x", 1)
        child = env.child()
        child.define("x", 2)
        assert child.lookup("x") == 2
        assert env.lookup("x") == 1

    def test_no_redefinition(self):
        env = Env()
        env.define("x", 1)
        with pytest.raises(ShillRuntimeError):
            env.define("x", 2)

    def test_unbound(self):
        with pytest.raises(ShillRuntimeError):
            Env().lookup("ghost")

    def test_bound_and_names(self):
        env = Env()
        env.define("a", 1)
        child = env.child()
        child.define("b", 2)
        assert child.bound("a") and child.bound("b") and not child.bound("c")
        assert child.names() == ["a", "b"]


class TestErrors:
    def test_syserror_carries_errno_and_name(self):
        err = SysError(errno_.EACCES, "nope")
        assert err.errno == errno_.EACCES and err.name == "EACCES"
        assert "EACCES" in str(err)

    def test_contract_violation_fields(self):
        err = ContractViolation("who", "ctc", "why")
        assert err.blame == "who" and "why" in str(err)

    def test_syntax_error_location(self):
        err = ShillSyntaxError("bad", 3, 7, "f.cap")
        assert "f.cap:3:7" in str(err)

    def test_hierarchy(self):
        from repro.errors import ReproError

        for cls in (SysError, ContractViolation, ShillSyntaxError,
                    ShillRuntimeError, CapabilitySafetyError):
            assert issubclass(cls, ReproError)


class TestAuditLog:
    def test_grant_deny_autogrant(self):
        log = AuditLog()
        log.grant(1, "/x", PrivSet.of(Priv.READ))
        log.deny(1, "open", "/y", Priv.READ)
        log.auto_grant(1, "open", "/y", Priv.READ)
        assert len(log.entries) == 3
        assert len(log.denials()) == 1
        assert len(log.auto_grants()) == 1
        formatted = log.format()
        assert "+read" in formatted and "/y" in formatted

    def test_string_priv_accepted(self):
        log = AuditLog()
        log.deny(2, "pipe-create", "<pipe>", "pipe-factory")
        assert "pipe-factory" in log.denials()[0].detail
