"""Lexer and parser tests for the SHILL concrete syntax."""

from __future__ import annotations

import pytest

from repro.errors import ShillSyntaxError
from repro.lang import ast_ as A
from repro.lang.lexer import lex
from repro.lang.parser import check_ambient_restrictions, parse_source
from repro.lang.tokens import T


class TestLexer:
    def test_idents_and_keywords(self):
        toks = lex("fun if then foo_bar")
        assert [t.value for t in toks[:-1]] == ["fun", "if", "then", "foo_bar"]
        assert all(t.type is T.IDENT for t in toks[:-1])

    def test_privilege_literals(self):
        toks = lex("+read +create-file +read-symlink")
        assert [t.type for t in toks[:-1]] == [T.PRIV] * 3
        assert [t.value for t in toks[:-1]] == ["read", "create-file", "read-symlink"]

    def test_plus_with_space_is_addition(self):
        toks = lex("a + b")
        assert [t.type for t in toks[:-1]] == [T.IDENT, T.PLUS, T.IDENT]

    def test_contract_operators(self):
        toks = lex("\\/ /\\ -> && ||")
        assert [t.type for t in toks[:-1]] == [T.OR_CTC, T.AND_CTC, T.ARROW, T.AND, T.OR]

    def test_string_escapes(self):
        (tok, _eof) = lex(r'"a\nb\t\"q\""')
        assert tok.value == 'a\nb\t"q"'

    def test_paper_style_double_quote_strings(self):
        (tok, _eof) = lex("''jpeginfo''")
        assert tok.type is T.STRING and tok.value == "jpeginfo"

    def test_comments_skipped(self):
        toks = lex("x # comment with , tokens ;\ny")
        assert [t.value for t in toks[:-1]] == ["x", "y"]

    def test_numbers(self):
        toks = lex("42 3.5")
        assert [t.value for t in toks[:-1]] == ["42", "3.5"]

    def test_unterminated_string(self):
        with pytest.raises(ShillSyntaxError):
            lex('"unclosed')

    def test_unexpected_char(self):
        with pytest.raises(ShillSyntaxError):
            lex("a @ b")

    def test_position_tracking(self):
        toks = lex("a\n  b")
        assert toks[1].line == 2


class TestParserExpressions:
    def _expr(self, source: str) -> A.Expr:
        module = parse_source(f"x = {source};", "shill/cap")
        stmt = module.body[0]
        assert isinstance(stmt, A.Def)
        return stmt.expr

    def test_literals(self):
        assert self._expr("42") == A.Lit(42)
        assert self._expr("true") == A.Lit(True)
        assert self._expr('"hi"') == A.Lit("hi")

    def test_call_with_kwargs(self):
        expr = self._expr('exec(prog, ["a"], stdout = out)')
        assert isinstance(expr, A.Call)
        assert expr.kwargs[0][0] == "stdout"

    def test_precedence(self):
        expr = self._expr("1 + 2 * 3")
        assert isinstance(expr, A.BinOp) and expr.op == "+"
        assert isinstance(expr.right, A.BinOp) and expr.right.op == "*"

    def test_and_or_precedence(self):
        expr = self._expr("a && b || c")
        assert isinstance(expr, A.BinOp) and expr.op == "||"

    def test_unary_not(self):
        expr = self._expr("!is_syserror(x)")
        assert isinstance(expr, A.UnOp) and expr.op == "!"

    def test_comparison(self):
        expr = self._expr("n <= 10")
        assert isinstance(expr, A.BinOp) and expr.op == "<="

    def test_list_literal(self):
        expr = self._expr('["a", "b"]')
        assert isinstance(expr, A.ListLit) and len(expr.items) == 2

    def test_nested_call(self):
        expr = self._expr("f(g(x))(y)")
        assert isinstance(expr, A.Call) and isinstance(expr.fn, A.Call)


class TestParserStatements:
    def test_if_then(self):
        module = parse_source("if is_file(c) then append(out, path(c));", "shill/cap")
        stmt = module.body[0]
        assert isinstance(stmt, A.If) and stmt.otherwise is None

    def test_if_then_else(self):
        module = parse_source("if b then f(); else g();", "shill/cap")
        stmt = module.body[0]
        assert isinstance(stmt, A.If) and stmt.otherwise is not None

    def test_for_in(self):
        module = parse_source("for name in contents(cur) { f(name); }", "shill/cap")
        stmt = module.body[0]
        assert isinstance(stmt, A.For) and stmt.var == "name"

    def test_fun_def_without_trailing_semi(self):
        module = parse_source("f = fun(x) { x; }", "shill/cap")
        stmt = module.body[0]
        assert isinstance(stmt, A.Def) and isinstance(stmt.expr, A.Fun)

    def test_missing_semi_is_error(self):
        with pytest.raises(ShillSyntaxError):
            parse_source("x = 1\ny = 2;", "shill/cap")

    def test_requires_and_provides(self):
        source = """
        require shill/native;
        require "other.cap";
        provide f : {x : is_num} -> is_num;
        f = fun(x) { x; }
        """
        module = parse_source(source, "shill/cap")
        assert module.requires[0] == A.Require("shill/native", is_path=False)
        assert module.requires[1] == A.Require("other.cap", is_path=True)
        assert module.provides[0].name == "f"


class TestContractSyntax:
    def _ctc(self, text: str) -> A.Ctc:
        module = parse_source(f"provide f : {text};", "shill/cap")
        return module.provides[0].contract

    def test_simple_name(self):
        assert self._ctc("is_file -> void") == A.CtcFun(
            (("arg", A.CtcName("is_file")),), A.CtcName("void")
        )

    def test_named_params(self):
        ctc = self._ctc("{cur : is_dir, out : is_file} -> void")
        assert isinstance(ctc, A.CtcFun)
        assert [name for name, _ in ctc.params] == ["cur", "out"]

    def test_or_contract(self):
        ctc = self._ctc("{cur : is_dir \\/ is_file} -> void")
        assert isinstance(ctc.params[0][1], A.CtcOr)

    def test_and_contract(self):
        ctc = self._ctc("{submission : is_file && readonly} -> void")
        assert isinstance(ctc.params[0][1], A.CtcAnd)

    def test_cap_contract_with_privs(self):
        ctc = self._ctc("{cur : dir(+contents, +lookup, +path)} -> void")
        cap = ctc.params[0][1]
        assert isinstance(cap, A.CtcCap) and cap.kind == "dir"
        assert [i.priv for i in cap.items] == ["contents", "lookup", "path"]

    def test_priv_modifier(self):
        ctc = self._ctc("{d : dir(+lookup with {+path, +stat})} -> void")
        item = ctc.params[0][1].items[0]
        assert item.priv == "lookup" and item.modifier == ("path", "stat")

    def test_priv_modifier_full(self):
        ctc = self._ctc("{w : dir(+create-dir with full_privs)} -> void")
        item = ctc.params[0][1].items[0]
        assert item.modifier_full

    def test_forall(self):
        ctc = self._ctc(
            "forall X with {+lookup, +contents} . "
            "{cur : X, filter : X -> is_bool, cmd : X -> void} -> void"
        )
        assert isinstance(ctc, A.CtcForall)
        assert ctc.var == "X" and ctc.bound == ("lookup", "contents")
        assert isinstance(ctc.body.params[1][1], A.CtcFun)

    def test_wallet_kinds(self):
        ctc = self._ctc("{wallet : native_wallet} -> void")
        assert ctc.params[0][1] == A.CtcName("native_wallet")

    def test_figure1_grade_contract_parses(self):
        """The paper's Figure 1, in ASCII spelling."""
        source = """
        provide grade :
          {submission : is_file && readonly,
           tests : is_dir && readonly,
           working : dir(+create-dir with full_privs),
           grade_log : is_file && writeable,
           wallet : ocaml_wallet} -> void;
        grade = fun(submission, tests, working, grade_log, wallet) { void_v(); }
        """
        module = parse_source(source, "shill/cap")
        assert module.provides[0].name == "grade"


class TestAmbientRestrictions:
    def test_straight_line_ok(self):
        module = parse_source('x = open_dir("/"); f(x);', "shill/ambient")
        check_ambient_restrictions(module)

    def test_no_functions(self):
        module = parse_source("f = fun(x) { x; }", "shill/ambient")
        with pytest.raises(ShillSyntaxError):
            check_ambient_restrictions(module)

    def test_no_conditionals(self):
        module = parse_source("if b then f();", "shill/ambient")
        with pytest.raises(ShillSyntaxError):
            check_ambient_restrictions(module)

    def test_no_loops(self):
        module = parse_source("for x in l { f(x); }", "shill/ambient")
        with pytest.raises(ShillSyntaxError):
            check_ambient_restrictions(module)

    def test_no_provides(self):
        module = parse_source("provide f : is_num -> is_num;", "shill/ambient")
        with pytest.raises(ShillSyntaxError):
            check_ambient_restrictions(module)
