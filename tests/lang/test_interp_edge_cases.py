"""Interpreter edge cases: scoping, arity, builtins-in-scripts."""

from __future__ import annotations

import pytest

from repro.errors import ShillRuntimeError
from repro.lang.runner import ShillRuntime


@pytest.fixture
def rt(kernel) -> ShillRuntime:
    return ShillRuntime(kernel, user="alice", cwd="/home/alice")


def run_fn(rt, body: str, export: str = "f"):
    rt.register_script("edge.cap", "#lang shill/cap\n" + body)
    return rt.load_cap_exports("edge.cap")[export]


class TestScoping:
    def test_block_shadowing_does_not_leak(self, rt):
        f = run_fn(
            rt,
            "provide f : {x : is_num} -> is_num;\n"
            "f = fun(x) {\n"
            "  inner = { x = 99; x; };\n"
            "  inner + x;\n"
            "}\n",
        )
        # Hmm: blocks introduce a child scope; defining x again inside is
        # shadowing, not redefinition.
        assert rt.call(f, 1) == 100

    def test_for_variable_scoped_to_body(self, rt):
        f = run_fn(
            rt,
            "provide f : {l : is_list} -> is_bool;\n"
            "f = fun(l) {\n"
            "  for item in l { item; }\n"
            "  true;\n"
            "}\n",
        )
        assert rt.call(f, [1, 2]) is True

    def test_closure_captures_definition_env(self, rt):
        f = run_fn(
            rt,
            "provide f : {x : is_num} -> is_num;\n"
            "base = 100;\n"
            "adder = fun(n) { n + base; }\n"
            "f = fun(x) { adder(x); }\n",
        )
        assert rt.call(f, 5) == 105

    def test_mutual_recursion(self, rt):
        f = run_fn(
            rt,
            "provide f : {n : is_num} -> is_bool;\n"
            "f = fun(n) { is_even(n); }\n"
            "is_even = fun(n) { if n == 0 then true else is_odd(n - 1); }\n"
            "is_odd = fun(n) { if n == 0 then false else is_even(n - 1); }\n",
        )
        # Note: is_even is defined *after* f but before f is called.
        assert rt.call(f, 10) is True
        assert rt.call(f, 7) is False


class TestArityAndErrors:
    def test_closure_wrong_arity(self, rt):
        f = run_fn(
            rt,
            "provide f : {x : is_num} -> is_num;\n"
            "g = fun(a, b) { a + b; }\n"
            "f = fun(x) { g(x); }\n",
        )
        with pytest.raises(ShillRuntimeError) as exc:
            rt.call(f, 1)
        assert "expects 2" in str(exc.value)

    def test_closure_rejects_kwargs(self, rt):
        f = run_fn(
            rt,
            "provide f : {x : is_num} -> is_num;\n"
            "g = fun(a) { a; }\n"
            "f = fun(x) { g(a = x); }\n",
        )
        with pytest.raises(ShillRuntimeError) as exc:
            rt.call(f, 1)
        assert "keyword" in str(exc.value)

    def test_calling_non_function(self, rt):
        f = run_fn(rt, "provide f : {x : is_num} -> is_num;\nf = fun(x) { x(1); }")
        with pytest.raises(ShillRuntimeError) as exc:
            rt.call(f, 42)
        assert "not a function" in str(exc.value)

    def test_for_over_non_list(self, rt):
        f = run_fn(
            rt, "provide f : {x : is_num} -> void;\nf = fun(x) { for i in x { i; } }"
        )
        with pytest.raises(ShillRuntimeError):
            rt.call(f, 42)

    def test_use_before_definition_completes(self, rt):
        rt.register_script(
            "selfref.cap", "#lang shill/cap\nx = x + 1;\nprovide f : is_num -> is_num;\nf = fun(y){y;}"
        )
        with pytest.raises(ShillRuntimeError):
            rt.load_cap_exports("selfref.cap")


class TestPureBuiltinsInScripts:
    def test_string_helpers(self, rt):
        f = run_fn(
            rt,
            "provide f : {s : is_string} -> is_list;\n"
            "f = fun(s) {\n"
            "  [strcat(s, \"!\"), to_string(length(s)), contains(s, \"ell\"),\n"
            "   starts_with(s, \"he\"), ends_with(s, \"lo\"), split(s, \"l\")];\n"
            "}\n",
        )
        out = rt.call(f, "hello")
        assert out[0] == "hello!"
        assert out[1] == "5"
        assert out[2] is True and out[3] is True and out[4] is True
        assert out[5] == ["he", "", "o"]

    def test_list_helpers(self, rt):
        f = run_fn(
            rt,
            "provide f : {l : is_list} -> is_list;\n"
            "f = fun(l) { push(concat(l, range(2)), nth(l, 0)); }\n",
        )
        assert rt.call(f, [7, 8]) == [7, 8, 0, 1, 7]

    def test_lines(self, rt):
        f = run_fn(
            rt,
            "provide f : {s : is_string} -> is_num;\nf = fun(s) { length(lines(s)); }",
        )
        assert rt.call(f, "a\nb\nc") == 3

    def test_nth_out_of_range(self, rt):
        f = run_fn(
            rt, "provide f : {l : is_list} -> is_num;\nf = fun(l) { nth(l, 10); }"
        )
        with pytest.raises(ShillRuntimeError):
            rt.call(f, [1])


class TestComparisonSemantics:
    def test_equality_across_types(self, rt):
        f = run_fn(
            rt,
            "provide f : {a : any, b : any} -> is_bool;\nf = fun(a, b) { a == b; }",
        )
        assert rt.call(f, 1, 1) is True
        assert rt.call(f, "x", "x") is True
        assert rt.call(f, 1, "1") is False

    def test_ordering_requires_numbers(self, rt):
        f = run_fn(
            rt, "provide f : {a : any, b : any} -> is_bool;\nf = fun(a, b) { a < b; }"
        )
        with pytest.raises(ShillRuntimeError):
            rt.call(f, "a", "b")

    def test_boolean_ops_require_booleans(self, rt):
        f = run_fn(
            rt, "provide f : {a : any} -> is_bool;\nf = fun(a) { a && true; }"
        )
        with pytest.raises(ShillRuntimeError):
            rt.call(f, 1)
