"""End-to-end contract behaviour driven from SHILL scripts."""

from __future__ import annotations

import pytest

from repro.errors import ContractViolation
from repro.lang.runner import ShillRuntime


@pytest.fixture
def rt(kernel) -> ShillRuntime:
    return ShillRuntime(kernel, user="alice", cwd="/home/alice")


def load(rt, source: str, name: str, export: str):
    rt.register_script(name, "#lang shill/cap\n" + source)
    return rt.load_cap_exports(name)[export]


class TestNamedContracts:
    def test_readonly_in_script(self, rt):
        f = load(
            rt,
            "provide peek : {x : readonly} -> is_string;\npeek = fun(x) { read(x); }",
            "m.cap", "peek",
        )
        assert rt.call(f, rt.open_file("/home/alice/dog.jpg")) == "JPEGDATA-DOG"

    def test_readonly_accepts_dirs_too(self, rt):
        f = load(
            rt,
            "provide ls : {x : readonly} -> is_list;\nls = fun(x) { contents(x); }",
            "m.cap", "ls",
        )
        assert "dog.jpg" in rt.call(f, rt.open_dir("/home/alice"))

    def test_writeable_blocks_read(self, rt):
        f = load(
            rt,
            "provide sneak : {x : writeable} -> is_string;\nsneak = fun(x) { read(x); }",
            "m.cap", "sneak",
        )
        with pytest.raises(ContractViolation) as exc:
            rt.call(f, rt.open_file("/home/alice/dog.jpg"))
        assert exc.value.blame == "m.cap"

    def test_executable_contract(self, rt, kernel):
        from repro.world.image import WorldBuilder

        WorldBuilder(kernel).install_binary("/home/alice/tool", "echo", [])
        kernel.vfs.lookup(
            kernel.vfs.lookup(kernel.vfs.lookup(kernel.vfs.root, "home"), "alice"), "tool"
        ).uid = 1001
        f = load(
            rt,
            "provide check : {x : executable} -> is_bool;\ncheck = fun(x) { is_file(x); }",
            "m.cap", "check",
        )
        assert rt.call(f, rt.open_file("/home/alice/tool")) is True


class TestFactoriesInContracts:
    def test_pipe_factory_param(self, rt):
        from repro.capability.caps import PipeFactoryCap

        f = load(
            rt,
            "provide mk : {pf : pipe_factory} -> is_list;\nmk = fun(pf) { create_pipe(pf); }",
            "m.cap", "mk",
        )
        ends = rt.call(f, PipeFactoryCap(rt.sys))
        assert len(ends) == 2

    def test_pipe_factory_rejects_other_values(self, rt):
        f = load(
            rt,
            "provide mk : {pf : pipe_factory} -> void;\nmk = fun(pf) { pf; }",
            "m.cap", "mk",
        )
        with pytest.raises(ContractViolation):
            rt.call(f, "nope")

    def test_socket_factory_with_privs_attenuates(self, rt):
        from repro.capability.caps import SocketFactoryCap
        from repro.sandbox.privileges import SockPriv

        source = (
            "provide probe : {net : socket_factory(+create, +connect, +send, +receive)}"
            " -> is_bool;\n"
            "probe = fun(net) { true; }\n"
        )
        f = load(rt, source, "m.cap", "probe")
        assert rt.call(f, SocketFactoryCap()) is True
        # Supplying a factory lacking +connect violates the contract:
        from repro.sandbox.privileges import SocketPerms

        weak = SocketFactoryCap(SocketPerms({SockPriv.CREATE}))
        with pytest.raises(ContractViolation):
            rt.call(f, weak)


class TestWalletKinds:
    def test_figure1_ocaml_wallet_kind(self, rt):
        """The grade contract's `ocaml_wallet`: an open-ended wallet kind."""
        from repro.stdlib.wallet import Wallet

        f = load(
            rt,
            "provide use : {w : ocaml_wallet} -> is_list;\nuse = fun(w) { [true]; }",
            "m.cap", "use",
        )
        assert rt.call(f, Wallet("ocaml")) == [True]
        with pytest.raises(ContractViolation):
            rt.call(f, Wallet("native"))


class TestPolymorphicInScripts:
    FIND = """\
provide find :
  forall X with {+lookup, +contents} .
  {cur : X, filter : X -> is_bool, cmd : X -> void} -> void;

find = fun(cur, filter, cmd) {
  if is_file(cur) && filter(cur) then
    cmd(cur);
  if is_dir(cur) then
    for name in contents(cur) {
      child = lookup(cur, name);
      if !is_syserror(child) then
        find(child, filter, cmd);
    }
}
"""

    EVIL_FIND = FIND.replace("cmd(cur);", "cmd(cur);\n  if is_file(cur) then read(cur);")

    def test_find_clients_with_different_privileges(self, rt):
        """Two clients of the same polymorphic contract: one filter needs
        +stat, the other +path — both served, as in section 2.4.2."""
        find = load(rt, self.FIND, "find.cap", "find")
        home = rt.open_dir("/home/alice")

        sizes: list[int] = []
        rt.call(find, home, lambda c: c.stat().size > 0, lambda c: sizes.append(c.stat().size))
        names: list[str] = []
        rt.call(find, home, lambda c: c.path().endswith(".jpg"), lambda c: names.append(c.path()))
        assert sizes and names == ["/home/alice/dog.jpg"]

    def test_find_body_cannot_use_filter_privileges(self, rt):
        """The body reading through X is a violation blamed on find.cap —
        even though the *caller's* capability allows reading."""
        find = load(rt, self.EVIL_FIND, "evil_find.cap", "find")
        home = rt.open_dir("/home/alice")
        with pytest.raises(ContractViolation) as exc:
            rt.call(find, home, lambda c: True, lambda c: None)
        assert exc.value.blame == "evil_find.cap"
        assert "+read" in exc.value.detail


class TestResultContracts:
    def test_result_cap_contract_attenuates(self, rt):
        """A capability returned through a contract is attenuated for the
        *caller*."""
        source = (
            "provide pick : {d : is_dir && readonly} -> file(+stat, +path);\n"
            "pick = fun(d) { lookup(d, \"dog.jpg\"); }\n"
        )
        f = load(rt, source, "m.cap", "pick")
        result = rt.call(f, rt.open_dir("/home/alice"))
        from repro.sandbox.privileges import Priv

        assert result.privs.privs() == {Priv.STAT, Priv.PATH}
        with pytest.raises(ContractViolation) as exc:
            result.read()
        # The *caller* (host) is the consumer of the result.
        assert exc.value.blame == "host"

    def test_result_predicate_failure_blames_provider(self, rt):
        source = (
            "provide lie : {x : is_num} -> is_string;\nlie = fun(x) { x; }\n"
        )
        f = load(rt, source, "m.cap", "lie")
        with pytest.raises(ContractViolation) as exc:
            rt.call(f, 5)
        assert exc.value.blame == "m.cap"
