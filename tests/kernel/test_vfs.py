"""Unit tests for the VFS: tree operations, hard links, the name cache."""

from __future__ import annotations

import pytest

from repro.errors import SysError
from repro.kernel import errno_
from repro.kernel.vfs import VFS, VType


@pytest.fixture
def vfs() -> VFS:
    return VFS()


def test_root_is_directory(vfs: VFS):
    assert vfs.root.is_dir
    assert vfs.path_of(vfs.root) == "/"


def test_create_and_lookup_file(vfs: VFS):
    f = vfs.create(vfs.root, "a.txt", VType.VREG, 0o644, 0, 0)
    assert vfs.lookup(vfs.root, "a.txt") is f
    assert f.is_reg and not f.is_dir


def test_create_duplicate_fails(vfs: VFS):
    vfs.create(vfs.root, "a", VType.VREG, 0o644, 0, 0)
    with pytest.raises(SysError) as exc:
        vfs.create(vfs.root, "a", VType.VDIR, 0o755, 0, 0)
    assert exc.value.errno == errno_.EEXIST


def test_lookup_missing_is_enoent(vfs: VFS):
    with pytest.raises(SysError) as exc:
        vfs.lookup(vfs.root, "nope")
    assert exc.value.errno == errno_.ENOENT


def test_lookup_in_file_is_enotdir(vfs: VFS):
    f = vfs.create(vfs.root, "f", VType.VREG, 0o644, 0, 0)
    with pytest.raises(SysError) as exc:
        vfs.lookup(f, "x")
    assert exc.value.errno == errno_.ENOTDIR


def test_dot_and_dotdot(vfs: VFS):
    d = vfs.create(vfs.root, "d", VType.VDIR, 0o755, 0, 0)
    assert vfs.lookup(d, ".") is d
    assert vfs.lookup(d, "..") is vfs.root
    assert vfs.lookup(vfs.root, "..") is vfs.root


def test_component_validation(vfs: VFS):
    with pytest.raises(SysError):
        vfs.lookup(vfs.root, "")
    with pytest.raises(SysError):
        vfs.create(vfs.root, "a/b", VType.VREG, 0o644, 0, 0)
    with pytest.raises(SysError) as exc:
        vfs.create(vfs.root, "x" * 300, VType.VREG, 0o644, 0, 0)
    assert exc.value.errno == errno_.ENAMETOOLONG


def test_contents_sorted(vfs: VFS):
    for name in ("zz", "aa", "mm"):
        vfs.create(vfs.root, name, VType.VREG, 0o644, 0, 0)
    assert vfs.contents(vfs.root) == ["aa", "mm", "zz"]


def test_hard_link_shares_vnode(vfs: VFS):
    f = vfs.create(vfs.root, "orig", VType.VREG, 0o644, 0, 0)
    d = vfs.create(vfs.root, "d", VType.VDIR, 0o755, 0, 0)
    vfs.link(f, d, "alias")
    assert vfs.lookup(d, "alias") is f
    assert f.nlink == 2


def test_hard_link_to_directory_refused(vfs: VFS):
    d = vfs.create(vfs.root, "d", VType.VDIR, 0o755, 0, 0)
    with pytest.raises(SysError) as exc:
        vfs.link(d, vfs.root, "alias")
    assert exc.value.errno == errno_.EPERM


def test_unlink_removes_entry_and_decrements_nlink(vfs: VFS):
    f = vfs.create(vfs.root, "f", VType.VREG, 0o644, 0, 0)
    vfs.unlink(vfs.root, "f")
    assert not vfs.exists(vfs.root, "f")
    assert f.nlink == 0


def test_unlink_expect_mismatch_is_race_detected(vfs: VFS):
    """funlinkat semantics: entry must still refer to the expected vnode."""
    f1 = vfs.create(vfs.root, "f", VType.VREG, 0o644, 0, 0)
    vfs.unlink(vfs.root, "f")
    f2 = vfs.create(vfs.root, "f", VType.VREG, 0o644, 0, 0)
    assert f2 is not f1
    with pytest.raises(SysError) as exc:
        vfs.unlink(vfs.root, "f", expect=f1)
    assert exc.value.errno == errno_.EDEADLK
    # And the entry survives the refused unlink.
    assert vfs.lookup(vfs.root, "f") is f2


def test_unlink_nonempty_directory_refused(vfs: VFS):
    d = vfs.create(vfs.root, "d", VType.VDIR, 0o755, 0, 0)
    vfs.create(d, "child", VType.VREG, 0o644, 0, 0)
    with pytest.raises(SysError) as exc:
        vfs.unlink(vfs.root, "d")
    assert exc.value.errno == errno_.ENOTEMPTY


def test_rename_moves_vnode(vfs: VFS):
    f = vfs.create(vfs.root, "old", VType.VREG, 0o644, 0, 0)
    d = vfs.create(vfs.root, "d", VType.VDIR, 0o755, 0, 0)
    vfs.rename(vfs.root, "old", d, "new")
    assert not vfs.exists(vfs.root, "old")
    assert vfs.lookup(d, "new") is f


def test_rename_replaces_existing_file(vfs: VFS):
    f = vfs.create(vfs.root, "src", VType.VREG, 0o644, 0, 0)
    old = vfs.create(vfs.root, "dst", VType.VREG, 0o644, 0, 0)
    vfs.rename(vfs.root, "src", vfs.root, "dst")
    assert vfs.lookup(vfs.root, "dst") is f
    assert old.nlink == 0


def test_rename_into_own_subtree_refused(vfs: VFS):
    """Regression (found by the property suite): moving a directory into
    itself or a descendant must fail with EINVAL, not create a cycle."""
    outer = vfs.create(vfs.root, "outer", VType.VDIR, 0o755, 0, 0)
    inner = vfs.create(outer, "inner", VType.VDIR, 0o755, 0, 0)
    with pytest.raises(SysError) as exc:
        vfs.rename(vfs.root, "outer", inner, "loop")
    assert exc.value.errno == errno_.EINVAL
    with pytest.raises(SysError) as exc:
        vfs.rename(vfs.root, "outer", outer, "self")
    assert exc.value.errno == errno_.EINVAL


def test_create_in_removed_directory_refused(vfs: VFS):
    """Regression (found by the property suite): an unlinked directory
    cannot gain new entries."""
    d = vfs.create(vfs.root, "d", VType.VDIR, 0o755, 0, 0)
    vfs.unlink(vfs.root, "d")
    with pytest.raises(SysError) as exc:
        vfs.create(d, "orphan", VType.VREG, 0o644, 0, 0)
    assert exc.value.errno == errno_.ENOENT
    f = vfs.create(vfs.root, "f", VType.VREG, 0o644, 0, 0)
    with pytest.raises(SysError):
        vfs.link(f, d, "alias")


def test_path_of_reconstructs_from_name_cache(vfs: VFS):
    a = vfs.create(vfs.root, "a", VType.VDIR, 0o755, 0, 0)
    b = vfs.create(a, "b", VType.VDIR, 0o755, 0, 0)
    f = vfs.create(b, "f.txt", VType.VREG, 0o644, 0, 0)
    assert vfs.path_of(f) == "/a/b/f.txt"


def test_path_of_fails_after_unlink(vfs: VFS):
    f = vfs.create(vfs.root, "f", VType.VREG, 0o644, 0, 0)
    vfs.unlink(vfs.root, "f")
    with pytest.raises(SysError) as exc:
        vfs.path_of(f)
    assert exc.value.errno == errno_.ENOENT


def test_path_of_follows_rename(vfs: VFS):
    f = vfs.create(vfs.root, "f", VType.VREG, 0o644, 0, 0)
    d = vfs.create(vfs.root, "d", VType.VDIR, 0o755, 0, 0)
    vfs.rename(vfs.root, "f", d, "g")
    assert vfs.path_of(f) == "/d/g"


def test_read_write_roundtrip(vfs: VFS):
    f = vfs.create(vfs.root, "f", VType.VREG, 0o644, 0, 0)
    assert vfs.write_file(f, 0, b"hello") == 5
    assert vfs.read_file(f, 0, 100) == b"hello"
    assert vfs.read_file(f, 2, 2) == b"ll"


def test_write_past_end_zero_fills(vfs: VFS):
    f = vfs.create(vfs.root, "f", VType.VREG, 0o644, 0, 0)
    vfs.write_file(f, 4, b"x")
    assert vfs.read_file(f, 0, 10) == b"\x00\x00\x00\x00x"


def test_truncate_shrinks_and_grows(vfs: VFS):
    f = vfs.create(vfs.root, "f", VType.VREG, 0o644, 0, 0)
    vfs.write_file(f, 0, b"abcdef")
    vfs.truncate_file(f, 3)
    assert vfs.read_file(f, 0, 10) == b"abc"
    vfs.truncate_file(f, 5)
    assert vfs.read_file(f, 0, 10) == b"abc\x00\x00"


def test_symlink_nodes(vfs: VFS):
    link = vfs.symlink(vfs.root, "l", "/target", 0, 0)
    assert link.is_symlink
    assert link.linktarget == "/target"


# ---------------------------------------------------------------------------
# lazy (copy-on-access) forking
# ---------------------------------------------------------------------------


def _tree(vfs: VFS):
    """/dir/{a.txt,b.txt} plus /other/hard — a hard link to a.txt."""
    d = vfs.create(vfs.root, "dir", VType.VDIR, 0o755, 0, 0)
    a = vfs.create(d, "a.txt", VType.VREG, 0o644, 0, 0)
    vfs.write_file(a, 0, b"alpha")
    b = vfs.create(d, "b.txt", VType.VREG, 0o644, 0, 0)
    vfs.write_file(b, 0, b"beta")
    other = vfs.create(vfs.root, "other", VType.VDIR, 0o755, 0, 0)
    vfs.link(a, other, "hard")
    return d, a, b, other


class TestLazyFork:
    def test_subtrees_stay_shared_until_accessed(self, vfs: VFS):
        d, a, _b, _other = _tree(vfs)
        fork = vfs.fork()
        # The fork's root entries still point into the template tree...
        assert fork.root.entries_lazy
        assert fork.root.entries["dir"] is d
        # ...until a lookup materializes a private clone on demand.
        fd = fork.lookup(fork.root, "dir")
        assert fd is not d and fd.vid == d.vid
        assert fork.root.entries["dir"] is fd
        # One level down is again shared until touched.
        assert fd.entries["a.txt"] is a

    def test_fork_write_never_reaches_the_template(self, vfs: VFS):
        d, a, _b, _other = _tree(vfs)
        fork = vfs.fork()
        fa = fork.lookup(fork.lookup(fork.root, "dir"), "a.txt")
        fork.write_file(fa, 0, b"ALPHA")
        assert vfs.read_file(a, 0, 10) == b"alpha"
        assert fork.read_file(fa, 0, 10) == b"ALPHA"

    def test_template_mutation_unshares_live_forks_first(self, vfs: VFS):
        d, a, _b, _other = _tree(vfs)
        fork = vfs.fork()
        # Mutate the template while the fork has touched nothing.
        vfs.write_file(a, 0, b"MUTATED")
        vfs.unlink(d, "b.txt")
        # The fork saw none of it: laziness is unobservable.
        fd = fork.lookup(fork.root, "dir")
        assert fork.read_file(fork.lookup(fd, "a.txt"), 0, 10) == b"alpha"
        assert fork.contents(fd) == ["a.txt", "b.txt"]

    def test_fork_of_fork_is_isolated_from_both_ancestors(self, vfs: VFS):
        _tree(vfs)
        child = vfs.fork()
        grandchild = child.fork()
        gdir = grandchild.lookup(grandchild.root, "dir")
        grandchild.write_file(grandchild.lookup(gdir, "a.txt"), 0, b"GRAND")
        cdir = child.lookup(child.root, "dir")
        assert child.read_file(child.lookup(cdir, "a.txt"), 0, 10) == b"alpha"
        tdir = vfs.lookup(vfs.root, "dir")
        assert vfs.read_file(vfs.lookup(tdir, "a.txt"), 0, 10) == b"alpha"

    def test_hard_links_converge_on_one_clone(self, vfs: VFS):
        _tree(vfs)
        fork = vfs.fork()
        via_dir = fork.lookup(fork.lookup(fork.root, "dir"), "a.txt")
        via_link = fork.lookup(fork.lookup(fork.root, "other"), "hard")
        assert via_dir is via_link
        assert via_dir.nlink == 2
        fork.write_file(via_link, 0, b"LINKED")
        assert fork.read_file(via_dir, 0, 10) == b"LINKED"

    def test_materialize_all_cuts_every_template_reference(self, vfs: VFS):
        d, a, b, other = _tree(vfs)
        fork = vfs.fork()
        fork._materialize_all()
        template_ids = {id(v) for v in (d, a, b, other, vfs.root)}
        stack = [fork.root]
        while stack:
            node = stack.pop()
            assert id(node) not in template_ids
            assert not node.entries_lazy
            if node.entries:
                stack.extend(node.entries.values())
