"""Syscall-layer tests: resolution, DAC, I/O, and the paper's new syscalls."""

from __future__ import annotations

import pytest

from repro.errors import SysError
from repro.kernel import (
    O_APPEND,
    O_CREAT,
    O_EXCL,
    O_RDONLY,
    O_TRUNC,
    O_WRONLY,
)
from repro.kernel import errno_
from repro.kernel.sockets import AddressFamily, SocketType
from repro.kernel.vfs import VType


class TestOpenReadWrite:
    def test_open_read(self, alice_sys):
        fd = alice_sys.open("/home/alice/dog.jpg", O_RDONLY)
        assert alice_sys.read(fd, 8) == b"JPEGDATA"
        assert alice_sys.read(fd, 8) == b"-DOG"
        alice_sys.close(fd)

    def test_relative_path_from_cwd(self, alice_sys):
        fd = alice_sys.open("dog.jpg", O_RDONLY)
        assert alice_sys.read(fd, 4) == b"JPEG"
        alice_sys.close(fd)

    def test_dotdot_traversal(self, bob_sys):
        fd = bob_sys.open("../alice/dog.jpg", O_RDONLY)
        assert bob_sys.read(fd, 4) == b"JPEG"

    def test_open_missing_enoent(self, alice_sys):
        with pytest.raises(SysError) as exc:
            alice_sys.open("/home/alice/nope", O_RDONLY)
        assert exc.value.errno == errno_.ENOENT

    def test_o_creat_creates(self, alice_sys):
        fd = alice_sys.open("new.txt", O_WRONLY | O_CREAT)
        alice_sys.write(fd, b"data")
        alice_sys.close(fd)
        assert alice_sys.read_whole("/home/alice/new.txt") == b"data"

    def test_o_excl_on_existing(self, alice_sys):
        with pytest.raises(SysError) as exc:
            alice_sys.open("dog.jpg", O_WRONLY | O_CREAT | O_EXCL)
        assert exc.value.errno == errno_.EEXIST

    def test_o_trunc(self, alice_sys):
        alice_sys.write_whole("f.txt", b"0123456789")
        fd = alice_sys.open("f.txt", O_WRONLY | O_TRUNC)
        alice_sys.write(fd, b"x")
        alice_sys.close(fd)
        assert alice_sys.read_whole("f.txt") == b"x"

    def test_o_append_writes_at_end(self, alice_sys):
        alice_sys.write_whole("log", b"one\n")
        fd = alice_sys.open("log", O_WRONLY | O_APPEND)
        alice_sys.write(fd, b"two\n")
        alice_sys.close(fd)
        assert alice_sys.read_whole("log") == b"one\ntwo\n"

    def test_write_on_readonly_fd_ebadf(self, alice_sys):
        fd = alice_sys.open("dog.jpg", O_RDONLY)
        with pytest.raises(SysError) as exc:
            alice_sys.write(fd, b"x")
        assert exc.value.errno == errno_.EBADF

    def test_read_on_writeonly_fd_ebadf(self, alice_sys):
        fd = alice_sys.open("w", O_WRONLY | O_CREAT)
        with pytest.raises(SysError) as exc:
            alice_sys.read(fd, 1)
        assert exc.value.errno == errno_.EBADF

    def test_pread_does_not_move_offset(self, alice_sys):
        fd = alice_sys.open("dog.jpg", O_RDONLY)
        assert alice_sys.pread(fd, 4, 8) == b"-DOG"
        assert alice_sys.read(fd, 4) == b"JPEG"

    def test_lseek(self, alice_sys):
        fd = alice_sys.open("dog.jpg", O_RDONLY)
        alice_sys.lseek(fd, 8)
        assert alice_sys.read(fd, 4) == b"-DOG"

    def test_bad_fd(self, alice_sys):
        with pytest.raises(SysError) as exc:
            alice_sys.read(42, 1)
        assert exc.value.errno == errno_.EBADF


class TestDAC:
    def test_bob_cannot_read_alices_private_file(self, bob_sys):
        with pytest.raises(SysError) as exc:
            bob_sys.open("/home/alice/notes.txt", O_RDONLY)
        assert exc.value.errno == errno_.EACCES

    def test_bob_can_read_alices_public_file(self, bob_sys):
        assert bob_sys.read_whole("/home/alice/dog.jpg") == b"JPEGDATA-DOG"

    def test_bob_cannot_write_in_alices_home(self, bob_sys):
        with pytest.raises(SysError) as exc:
            bob_sys.open("/home/alice/evil", O_WRONLY | O_CREAT)
        assert exc.value.errno == errno_.EACCES

    def test_root_bypasses_dac(self, root_sys):
        assert root_sys.read_whole("/home/alice/notes.txt") == b"alice's secrets"

    def test_chmod_only_owner(self, bob_sys):
        with pytest.raises(SysError) as exc:
            bob_sys.chmod("/home/alice/dog.jpg", 0o777)
        assert exc.value.errno == errno_.EPERM

    def test_chmod_owner_works(self, alice_sys):
        alice_sys.chmod("notes.txt", 0o644)
        assert alice_sys.stat("notes.txt").mode == 0o644

    def test_chown_requires_root(self, alice_sys, root_sys):
        with pytest.raises(SysError):
            alice_sys.chown("notes.txt", 1002, 1002)
        root_sys.chown("/home/alice/notes.txt", 1002, 1002)
        assert root_sys.stat("/home/alice/notes.txt").uid == 1002


class TestDirectories:
    def test_mkdir_and_getdents(self, alice_sys):
        alice_sys.mkdir("sub")
        fd = alice_sys.open("sub", O_RDONLY)
        assert alice_sys.getdents(fd) == []
        assert "sub" in alice_sys.contents("/home/alice")

    def test_mkdirat_returns_usable_fd(self, alice_sys):
        """The paper's mkdirat variant returns an fd for the new directory."""
        home = alice_sys.open("/home/alice", O_RDONLY)
        sub = alice_sys.mkdirat(home, "work")
        assert alice_sys.getdents(sub) == []
        # The fd designates the new directory: create a child through it.
        inner = alice_sys.mkdirat(sub, "inner")
        assert alice_sys.getdents(sub) == ["inner"]
        assert alice_sys.getdents(inner) == []

    def test_unlinkat(self, alice_sys):
        alice_sys.write_whole("junk", b"x")
        home = alice_sys.open("/home/alice", O_RDONLY)
        alice_sys.unlinkat(home, "junk")
        assert "junk" not in alice_sys.contents("/home/alice")

    def test_chdir_getcwd(self, alice_sys):
        alice_sys.mkdir("deep")
        alice_sys.chdir("deep")
        assert alice_sys.getcwd() == "/home/alice/deep"

    def test_fchdir(self, alice_sys):
        fd = alice_sys.open("/tmp", O_RDONLY)
        alice_sys.fchdir(fd)
        assert alice_sys.getcwd() == "/tmp"


class TestNewSyscalls:
    """flinkat / funlinkat / frenameat / path — section 3.1.3."""

    def test_flinkat(self, alice_sys):
        alice_sys.write_whole("orig", b"data")
        ffd = alice_sys.open("orig", O_RDONLY)
        dfd = alice_sys.open("/tmp", O_RDONLY)
        alice_sys.flinkat(ffd, dfd, "alias")
        assert alice_sys.read_whole("/tmp/alias") == b"data"

    def test_funlinkat_happy_path(self, alice_sys):
        alice_sys.write_whole("victim", b"x")
        ffd = alice_sys.open("victim", O_RDONLY)
        dfd = alice_sys.open("/home/alice", O_RDONLY)
        alice_sys.funlinkat(dfd, "victim", ffd)
        assert "victim" not in alice_sys.contents("/home/alice")

    def test_funlinkat_detects_swap(self, alice_sys):
        """The TOCTTOU case the syscall exists for: the name was rebound
        to a different file between open and unlink."""
        alice_sys.write_whole("victim", b"old")
        ffd = alice_sys.open("victim", O_RDONLY)
        alice_sys.unlink("victim")
        alice_sys.write_whole("victim", b"new")
        dfd = alice_sys.open("/home/alice", O_RDONLY)
        with pytest.raises(SysError) as exc:
            alice_sys.funlinkat(dfd, "victim", ffd)
        assert exc.value.errno == errno_.EDEADLK
        assert alice_sys.read_whole("victim") == b"new"

    def test_frenameat(self, alice_sys):
        alice_sys.write_whole("src", b"payload")
        ffd = alice_sys.open("src", O_RDONLY)
        home = alice_sys.open("/home/alice", O_RDONLY)
        tmp = alice_sys.open("/tmp", O_RDONLY)
        alice_sys.frenameat(ffd, home, "src", tmp, "dst")
        assert alice_sys.read_whole("/tmp/dst") == b"payload"
        assert "src" not in alice_sys.contents("/home/alice")

    def test_frenameat_detects_swap(self, alice_sys):
        alice_sys.write_whole("src", b"old")
        ffd = alice_sys.open("src", O_RDONLY)
        alice_sys.unlink("src")
        alice_sys.write_whole("src", b"new")
        home = alice_sys.open("/home/alice", O_RDONLY)
        tmp = alice_sys.open("/tmp", O_RDONLY)
        with pytest.raises(SysError) as exc:
            alice_sys.frenameat(ffd, home, "src", tmp, "dst")
        assert exc.value.errno == errno_.EDEADLK

    def test_path_syscall(self, alice_sys):
        fd = alice_sys.open("dog.jpg", O_RDONLY)
        assert alice_sys.path(fd) == "/home/alice/dog.jpg"

    def test_path_fails_after_unlink(self, alice_sys):
        alice_sys.write_whole("gone", b"x")
        fd = alice_sys.open("gone", O_RDONLY)
        alice_sys.unlink("gone")
        with pytest.raises(SysError) as exc:
            alice_sys.path(fd)
        assert exc.value.errno == errno_.ENOENT


class TestSymlinks:
    def test_follow_symlink(self, alice_sys):
        alice_sys.symlink("/home/alice/dog.jpg", "link")
        assert alice_sys.read_whole("link") == b"JPEGDATA-DOG"

    def test_relative_symlink(self, alice_sys):
        alice_sys.symlink("dog.jpg", "rel")
        assert alice_sys.read_whole("rel") == b"JPEGDATA-DOG"

    def test_readlink(self, alice_sys):
        alice_sys.symlink("/x/y", "l")
        assert alice_sys.readlink("l") == "/x/y"

    def test_symlink_loop_eloop(self, alice_sys):
        alice_sys.symlink("b", "a")
        alice_sys.symlink("a", "b")
        with pytest.raises(SysError) as exc:
            alice_sys.open("a", O_RDONLY)
        assert exc.value.errno == errno_.ELOOP

    def test_symlink_through_directory(self, alice_sys):
        alice_sys.mkdir("d")
        alice_sys.write_whole("d/f", b"inner")
        alice_sys.symlink("d", "dlink")
        assert alice_sys.read_whole("dlink/f") == b"inner"


class TestPipes:
    def test_pipe_roundtrip(self, alice_sys):
        rfd, wfd = alice_sys.pipe()
        alice_sys.write(wfd, b"through the pipe")
        assert alice_sys.read(rfd, 100) == b"through the pipe"

    def test_pipe_epipe_after_reader_close(self, alice_sys):
        rfd, wfd = alice_sys.pipe()
        alice_sys.close(rfd)
        with pytest.raises(SysError) as exc:
            alice_sys.write(wfd, b"x")
        assert exc.value.errno == errno_.EPIPE

    def test_pipe_no_seek(self, alice_sys):
        rfd, wfd = alice_sys.pipe()
        with pytest.raises(SysError) as exc:
            alice_sys.lseek(rfd, 1)
        assert exc.value.errno == errno_.ESPIPE


class TestSockets:
    def test_client_server_over_loopback(self, kernel, alice_sys, bob_sys):
        srv = bob_sys.socket(AddressFamily.AF_INET, SocketType.SOCK_STREAM)
        bob_sys.bind(srv, ("127.0.0.1", 8080))
        bob_sys.listen(srv)

        cli = alice_sys.socket(AddressFamily.AF_INET, SocketType.SOCK_STREAM)
        alice_sys.connect(cli, ("127.0.0.1", 8080))
        alice_sys.send(cli, b"GET /")

        conn = bob_sys.accept(srv)
        assert bob_sys.recv(conn, 100) == b"GET /"
        bob_sys.send(conn, b"200 OK")
        assert alice_sys.recv(cli, 100) == b"200 OK"

    def test_connect_refused_without_listener(self, alice_sys):
        cli = alice_sys.socket(AddressFamily.AF_INET, SocketType.SOCK_STREAM)
        with pytest.raises(SysError) as exc:
            alice_sys.connect(cli, ("127.0.0.1", 9999))
        assert exc.value.errno == errno_.ECONNREFUSED

    def test_bind_conflict(self, alice_sys, bob_sys):
        s1 = bob_sys.socket(AddressFamily.AF_INET, SocketType.SOCK_STREAM)
        bob_sys.bind(s1, ("0.0.0.0", 80))
        bob_sys.listen(s1)
        s2 = alice_sys.socket(AddressFamily.AF_INET, SocketType.SOCK_STREAM)
        with pytest.raises(SysError) as exc:
            alice_sys.bind(s2, ("0.0.0.0", 80))
        assert exc.value.errno == errno_.EADDRINUSE


class TestStat:
    def test_stat_file(self, alice_sys):
        st = alice_sys.stat("dog.jpg")
        assert st.is_file and st.size == 12 and st.mode == 0o644 and st.uid == 1001

    def test_stat_dir_size_is_entry_count(self, alice_sys):
        st = alice_sys.stat("/home/alice")
        assert st.is_dir and st.size == 2

    def test_lstat_does_not_follow(self, alice_sys):
        alice_sys.symlink("dog.jpg", "l")
        assert alice_sys.lstat("l").vtype is VType.VLNK
        assert alice_sys.stat("l").is_file

    def test_fstatat(self, alice_sys):
        home = alice_sys.open("/home/alice", O_RDONLY)
        st = alice_sys.fstatat(home, "dog.jpg")
        assert st.is_file and st.size == 12


class TestUlimits:
    def test_file_size_limit(self, kernel):
        proc = kernel.spawn_process("alice", "/home/alice")
        proc.ulimits = proc.ulimits.merged_with({"file_size": 10})
        sys = kernel.syscalls(proc)
        fd = sys.open("f", O_WRONLY | O_CREAT)
        sys.write(fd, b"123456789")
        with pytest.raises(SysError) as exc:
            sys.write(fd, b"ab")
        assert exc.value.errno == errno_.EFBIG

    def test_open_files_limit(self, kernel):
        proc = kernel.spawn_process("alice", "/home/alice")
        proc.ulimits = proc.ulimits.merged_with({"open_files": 2})
        sys = kernel.syscalls(proc)
        sys.open("dog.jpg", O_RDONLY)
        sys.open("dog.jpg", O_RDONLY)
        with pytest.raises(SysError) as exc:
            sys.open("dog.jpg", O_RDONLY)
        assert exc.value.errno == errno_.EMFILE

    def test_unknown_ulimit_rejected(self, kernel):
        proc = kernel.spawn_process("alice", "/home/alice")
        with pytest.raises(SysError) as exc:
            proc.ulimits.merged_with({"bogus": 1})
        assert exc.value.errno == errno_.EINVAL


class TestSysctlKenvIpc:
    def test_sysctl_read(self, alice_sys):
        assert alice_sys.sysctl_get("kern.ostype") == "FreeBSD"

    def test_sysctl_write_unsandboxed_ok(self, root_sys):
        root_sys.sysctl_set("kern.hostname", "newname")
        assert root_sys.sysctl_get("kern.hostname") == "newname"

    def test_kenv(self, root_sys):
        root_sys.kenv_set("test.key", "v")
        assert root_sys.kenv_get("test.key") == "v"

    def test_shm(self, alice_sys):
        seg = alice_sys.shm_open("/seg1")
        seg.extend(b"shared")
        assert alice_sys.shm_open("/seg1") == bytearray(b"shared")

    def test_msgq(self, kernel, alice_sys):
        key = alice_sys.msgget(42)
        kernel.ipc.msgsnd(alice_sys.proc, key, b"msg")
        assert kernel.ipc.msgrcv(alice_sys.proc, key) == b"msg"


class TestStatsCounters:
    def test_syscalls_counted(self, kernel, alice_sys):
        before = kernel.stats.total_syscalls
        alice_sys.read_whole("dog.jpg")
        assert kernel.stats.total_syscalls > before
        assert kernel.stats.syscalls["open"] >= 1
