"""Property-based VFS invariants (hypothesis state machine).

After any sequence of create/mkdir/link/unlink/rename operations:

1. every vnode reachable from the root resolves back to itself through
   ``path_of`` (name-cache consistency);
2. every regular file's ``nlink`` equals the number of directory entries
   referencing it;
3. directories never contain dangling entries;
4. ``contents`` is always sorted.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
from hypothesis import strategies as st

from repro.errors import SysError
from repro.kernel.vfs import VFS, Vnode, VType

NAMES = ["a", "b", "c", "d"]


class VfsMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.vfs = VFS()
        self.dirs: list[Vnode] = [self.vfs.root]
        self.files: list[Vnode] = []

    # -- operations -------------------------------------------------------

    @rule(name=st.sampled_from(NAMES), data=st.data())
    def create_file(self, name, data):
        parent = data.draw(st.sampled_from(self.dirs))
        try:
            vp = self.vfs.create(parent, name, VType.VREG, 0o644, 0, 0)
            self.files.append(vp)
        except SysError:
            pass

    @rule(name=st.sampled_from(NAMES), data=st.data())
    def create_dir(self, name, data):
        parent = data.draw(st.sampled_from(self.dirs))
        try:
            vp = self.vfs.create(parent, name, VType.VDIR, 0o755, 0, 0)
            self.dirs.append(vp)
        except SysError:
            pass

    @precondition(lambda self: self.files)
    @rule(name=st.sampled_from(NAMES), data=st.data())
    def hard_link(self, name, data):
        target = data.draw(st.sampled_from(self.files))
        parent = data.draw(st.sampled_from(self.dirs))
        try:
            self.vfs.link(target, parent, name)
        except SysError:
            pass

    @rule(name=st.sampled_from(NAMES), data=st.data())
    def unlink(self, name, data):
        parent = data.draw(st.sampled_from(self.dirs))
        try:
            self.vfs.unlink(parent, name)
        except SysError:
            pass

    @rule(src=st.sampled_from(NAMES), dst=st.sampled_from(NAMES), data=st.data())
    def rename(self, src, dst, data):
        src_dir = data.draw(st.sampled_from(self.dirs))
        dst_dir = data.draw(st.sampled_from(self.dirs))
        try:
            self.vfs.rename(src_dir, src, dst_dir, dst)
        except SysError:
            pass

    # -- invariants ------------------------------------------------------------

    def _reachable(self) -> dict[int, int]:
        """vid -> number of directory entries referencing it."""
        counts: dict[int, int] = {}
        stack = [self.vfs.root]
        seen = set()
        while stack:
            node = stack.pop()
            if node.vid in seen:
                continue
            seen.add(node.vid)
            if node.entries is None:
                continue
            for child in node.entries.values():
                counts[child.vid] = counts.get(child.vid, 0) + 1
                if child.is_dir:
                    stack.append(child)
        return counts

    @invariant()
    def nlink_matches_reference_counts(self):
        counts = self._reachable()
        stack = [self.vfs.root]
        seen = set()
        while stack:
            node = stack.pop()
            if node.vid in seen or node.entries is None:
                continue
            seen.add(node.vid)
            for child in node.entries.values():
                if child.is_reg:
                    assert child.nlink == counts[child.vid], (
                        f"vnode {child.vid}: nlink={child.nlink}, refs={counts[child.vid]}"
                    )
                if child.is_dir:
                    stack.append(child)

    @invariant()
    def reachable_vnodes_resolve_through_path_of(self):
        stack = [(self.vfs.root, "/")]
        seen = set()
        while stack:
            node, path = stack.pop()
            if node.vid in seen or node.entries is None:
                continue
            seen.add(node.vid)
            for name, child in node.entries.items():
                child_path = (path.rstrip("/") + "/" + name)
                # path_of may legitimately return a *different* valid path
                # for multi-linked files; it must resolve to the vnode.
                try:
                    reported = self.vfs.path_of(child)
                except SysError:
                    continue  # stale cache is repaired on next lookup
                node2 = self.vfs.root
                ok = True
                for comp in [c for c in reported.split("/") if c]:
                    try:
                        node2 = self.vfs.lookup(node2, comp)
                    except SysError:
                        ok = False
                        break
                assert ok and node2 is child, (reported, child_path)
                if child.is_dir:
                    stack.append((child, child_path))

    @invariant()
    def contents_sorted(self):
        for directory in self.dirs:
            if directory.entries is not None and directory.nlink > 0:
                listed = self.vfs.contents(directory)
                assert listed == sorted(listed)


TestVfsProperties = VfsMachine.TestCase
TestVfsProperties.settings = settings(max_examples=25, stateful_step_count=30, deadline=None)
