"""The VFS dcache and resolved-path cache: hits must be invisible.

The caching contract is purely observational: with the dcache enabled,
every resolution returns the same vnode (or raises the same errno) and
every MAC decision — denials above all — is identical to the uncached
walk.  The hypothesis machine drives two forks of one booted world, one
cached and one not, through random mkdir/write/unlink/rename/symlink/
label-mutation interleavings and compares every probe; the unit tests
pin the three invalidation edges (unlink, rename, label change) the
machine would only hit probabilistically.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, rule
from hypothesis import strategies as st

from repro.api import World
from repro.errors import SysError
from repro.kernel import O_WRONLY, O_CREAT
from repro.sandbox.privileges import Priv, PrivSet
from repro.sandbox.privmap import ensure_privmap

PATHS = [
    "/", "/a", "/b", "/c", "/a/b", "/a/c", "/a/b/c", "/b/a",
    "a", "a/b", "./a", "../a", "/a/../b", "/a/./b",
]


def _twin_kernels():
    """Two forks of one booted world — identical machines, same vids —
    one with the dcache enabled, one without."""
    on = World().boot().kernel
    off = World().boot().kernel
    off.vfs.dcache_enabled = False
    return on, off


def _observe(kernel, sys, path, *, follow=True, want_parent=False):
    """One resolution as a comparable outcome: (vid-of-vnode, vid-of-
    parent, final name) on success, the errno on failure — plus the
    machine's MAC denial count, which a cache hit must never change."""
    try:
        dvp, name, vp = sys._resolve(path, follow=follow,
                                     want_parent=want_parent)
        outcome = (dvp.vid if dvp is not None else None, name,
                   vp.vid if vp is not None else None)
    except SysError as err:
        outcome = ("errno", err.errno)
    return outcome, kernel.stats.mac_denials


class DcacheEquivalence(RuleBasedStateMachine):
    """dcache-on and dcache-off resolution are observationally identical."""

    def __init__(self) -> None:
        super().__init__()
        self.k_on, self.k_off = _twin_kernels()
        self.pairs = [(k, k.syscalls(k.spawn_process("root", "/root")))
                      for k in (self.k_on, self.k_off)]

    def _apply(self, op):
        """Run one mutation on both machines; outcomes must agree."""
        outcomes = []
        for _kernel, sys in self.pairs:
            try:
                op(sys)
                outcomes.append(None)
            except SysError as err:
                outcomes.append(err.errno)
        assert outcomes[0] == outcomes[1]

    @rule(path=st.sampled_from(PATHS))
    def mkdir(self, path):
        self._apply(lambda sys: sys.mkdir(path))

    @rule(path=st.sampled_from(PATHS), data=st.binary(max_size=8))
    def write_file(self, path, data):
        def op(sys):
            fd = sys.open(path, O_WRONLY | O_CREAT)
            try:
                sys.write(fd, data)
            finally:
                sys.close(fd)
        self._apply(op)

    @rule(path=st.sampled_from(PATHS))
    def unlink(self, path):
        self._apply(lambda sys: sys.unlink(path))

    @rule(src=st.sampled_from(PATHS), dst=st.sampled_from(PATHS))
    def rename(self, src, dst):
        self._apply(lambda sys: sys.rename(src, dst))

    @rule(dest=st.sampled_from(PATHS), link=st.sampled_from(PATHS))
    def symlink(self, dest, link):
        self._apply(lambda sys: sys.symlink(dest, link))

    @rule(path=st.sampled_from(PATHS))
    def mutate_label(self, path):
        """Grant-shaped label mutation on both machines (the epoch bump a
        real session grant performs)."""
        for kernel, sys in self.pairs:
            try:
                _dvp, _name, vp = sys._resolve(path)
            except SysError:
                return
            if vp is None:
                return
            ensure_privmap(vp).merge(1, PrivSet.of(Priv.READ))
            kernel.label_mutation()

    @rule(path=st.sampled_from(PATHS),
          follow=st.booleans(), want_parent=st.booleans())
    def probe(self, path, follow, want_parent):
        """The property: identical outcome and identical denial count,
        whatever the caches currently hold."""
        seen = [_observe(kernel, sys, path, follow=follow,
                         want_parent=want_parent)
                for kernel, sys in self.pairs]
        assert seen[0] == seen[1], (path, follow, want_parent)


TestDcacheEquivalence = DcacheEquivalence.TestCase
TestDcacheEquivalence.settings = settings(
    max_examples=20, stateful_step_count=40, deadline=None)


# ---------------------------------------------------------------------------
# the invalidation edges, pinned
# ---------------------------------------------------------------------------


@pytest.fixture
def kernel():
    return World().boot().kernel


@pytest.fixture
def sys(kernel):
    return kernel.syscalls(kernel.spawn_process("root", "/root"))


def _warm(sys, path):
    """Resolve twice so the second walk is served from cache."""
    sys._resolve(path)
    before = sys.kernel.stats.dcache_hits
    sys._resolve(path)
    assert sys.kernel.stats.dcache_hits > before, "cache never warmed"


class TestInvalidation:
    def test_unlink_invalidates(self, kernel, sys):
        fd = sys.open("/tmp/x", O_WRONLY | O_CREAT)
        sys.close(fd)
        _warm(sys, "/tmp/x")
        sys.unlink("/tmp/x")
        with pytest.raises(SysError):
            sys._resolve("/tmp/x")

    def test_rename_invalidates_both_names(self, kernel, sys):
        fd = sys.open("/tmp/old", O_WRONLY | O_CREAT)
        sys.close(fd)
        _warm(sys, "/tmp/old")
        sys.rename("/tmp/old", "/tmp/new")
        with pytest.raises(SysError):
            sys._resolve("/tmp/old")
        _dvp, _name, vp = sys._resolve("/tmp/new")
        assert vp is not None and vp.is_reg

    def test_label_change_invalidates(self, kernel, sys):
        """A label mutation must flush resolved-path state: the next
        walk re-runs its MAC checks against the new label."""
        fd = sys.open("/tmp/guarded", O_WRONLY | O_CREAT)
        sys.close(fd)
        _warm(sys, "/tmp/guarded")
        checks_before = kernel.stats.mac_checks
        sys._resolve("/tmp/guarded")  # cached: no fresh component checks
        cached_cost = kernel.stats.mac_checks - checks_before

        _dvp, _name, vp = sys._resolve("/tmp/guarded")
        ensure_privmap(vp).merge(1, PrivSet.of(Priv.READ))
        kernel.label_mutation()

        checks_before = kernel.stats.mac_checks
        sys._resolve("/tmp/guarded")
        post_mutation_cost = kernel.stats.mac_checks - checks_before
        assert post_mutation_cost > cached_cost, (
            "label mutation did not force a fresh checked walk")

    def test_disabled_dcache_counts_nothing(self):
        """Boot itself resolves through the cache; after disabling, the
        counters must stand still however often we resolve."""
        kernel = World().boot().kernel
        kernel.vfs.dcache_enabled = False
        sys = kernel.syscalls(kernel.spawn_process("root", "/root"))
        hits, misses = kernel.stats.dcache_hits, kernel.stats.dcache_misses
        sys._resolve("/etc/passwd")
        sys._resolve("/etc/passwd")
        assert kernel.stats.dcache_hits == hits
        assert kernel.stats.dcache_misses == misses
