"""Process-layer and MAC-framework unit tests."""

from __future__ import annotations

import pytest

from repro.errors import SysError
from repro.kernel import errno_
from repro.kernel.mac import MacFramework, MacPolicy
from repro.kernel.proc import SIGKILL, SIGTERM


class TestProcesses:
    def test_fork_inherits_cred_cwd_fds(self, kernel, alice_sys):
        fd = alice_sys.open("dog.jpg")
        child = kernel.procs.fork(alice_sys.proc)
        assert child.cred == alice_sys.proc.cred
        assert child.cwd is alice_sys.proc.cwd
        child_sys = kernel.syscalls(child)
        assert child_sys.read(fd, 4) == b"JPEG"  # shared open file

    def test_shared_offset_after_fork(self, kernel, alice_sys):
        fd = alice_sys.open("dog.jpg")
        child = kernel.procs.fork(alice_sys.proc)
        alice_sys.read(fd, 8)
        assert kernel.syscalls(child).read(fd, 4) == b"-DOG"

    def test_wait_requires_child(self, kernel, alice_sys, bob_sys):
        with pytest.raises(SysError) as exc:
            alice_sys.wait(bob_sys.proc.pid)
        assert exc.value.errno == errno_.ECHILD

    def test_wait_returns_status(self, kernel, alice_sys):
        child = alice_sys.fork()
        child.exited = True
        child.exit_status = 7
        assert alice_sys.wait(child.pid) == 7

    def test_kill_sigkill_terminates(self, kernel, alice_sys):
        child = alice_sys.fork()
        alice_sys.kill(child.pid, SIGKILL)
        assert child.exited and child.killed_by == SIGKILL

    def test_kill_other_signal_queues(self, kernel, alice_sys):
        child = alice_sys.fork()
        alice_sys.kill(child.pid, SIGTERM)
        assert not child.exited and SIGTERM in child.pending_signals

    def test_kill_cross_user_denied(self, kernel, alice_sys, bob_sys):
        with pytest.raises(SysError) as exc:
            alice_sys.kill(bob_sys.proc.pid, SIGTERM)
        assert exc.value.errno == errno_.EPERM

    def test_kill_missing_pid(self, alice_sys):
        with pytest.raises(SysError) as exc:
            alice_sys.kill(424242, SIGTERM)
        assert exc.value.errno == errno_.ESRCH

    def test_reap_closes_fds(self, kernel, alice_sys):
        child = kernel.procs.fork(alice_sys.proc)
        fd = kernel.syscalls(child).open("/home/alice/dog.jpg")
        kernel.procs.reap(child)
        with pytest.raises(SysError):
            kernel.syscalls(child).read(fd, 1)


class TestMacFramework:
    def test_register_and_find(self):
        mac = MacFramework()

        class P(MacPolicy):
            name = "testpol"

        policy = P()
        mac.register(policy)
        assert mac.find("testpol") is policy
        assert mac.find("absent") is None

    def test_duplicate_registration_refused(self):
        mac = MacFramework()

        class P(MacPolicy):
            name = "dup"

        mac.register(P())
        with pytest.raises(ValueError):
            mac.register(P())

    def test_restrictive_composition(self):
        """All policies must allow: one denier denies."""
        mac = MacFramework()

        class Allow(MacPolicy):
            name = "allow"

        class Deny(MacPolicy):
            name = "deny"

            def vnode_check_read(self, proc, vp):
                return errno_.EACCES

        mac.register(Allow())
        mac.register(Deny())
        with pytest.raises(SysError) as exc:
            mac.check("vnode_check_read", None, None)
        assert exc.value.errno == errno_.EACCES

    def test_unregister(self):
        mac = MacFramework()

        class P(MacPolicy):
            name = "gone"

        mac.register(P())
        mac.unregister("gone")
        assert mac.find("gone") is None

    def test_kldload_requires_root(self, kernel, alice_sys, root_sys):
        class P(MacPolicy):
            name = "third-party"

        with pytest.raises(SysError) as exc:
            kernel.kld.kldload(alice_sys.proc, "third-party", P())
        assert exc.value.errno == errno_.EPERM
        kernel.kld.kldload(root_sys.proc, "third-party", P())
        assert kernel.mac.find("third-party") is not None

    def test_kldunload_root_outside_sandbox_allowed(self, kernel, root_sys):
        kernel.install_shill_module()
        root_sys.kldunload("shill")
        assert not kernel.shill_installed


class TestExecStatuses:
    def test_missing_program_image(self, kernel):
        """A file without a program image fails ENOEXEC -> 126."""
        from repro.kernel.vfs import VType

        vp = kernel.vfs.create(kernel.vfs.root, "junk", VType.VREG, 0o755, 0, 0)
        assert vp.data is not None
        vp.data.extend(b"just bytes")
        proc = kernel.spawn_process("root", "/")
        child = kernel.procs.fork(proc)
        assert kernel.exec_file(child, vp, ["junk"]) == 126

    def test_exec_non_executable_mode(self, kernel):
        from repro.kernel.vfs import VType
        from repro.programs.base import elf_image

        vp = kernel.vfs.create(kernel.vfs.root, "noexec", VType.VREG, 0o644, 0, 0)
        assert vp.data is not None
        vp.data.extend(elf_image("echo", []))
        proc = kernel.spawn_process("alice", "/")
        child = kernel.procs.fork(proc)
        assert kernel.exec_file(child, vp, ["noexec"]) == 126

    def test_exec_reaps_child(self, kernel):
        from repro.world import build_world

        world = build_world()
        proc = world.spawn_process("root", "/")
        sys = world.syscalls(proc)
        status = sys.spawn("/bin/echo", ["echo", "hi"])
        assert status == 0
        live = [p.pid for p in world.procs.live_processes()]
        assert len(live) == 1  # only the launcher remains
