"""The persistent snapshot store: blobs, the world index, LRU, stats."""

from __future__ import annotations

import hashlib
import os
import pickle

import pytest

from repro.kernel.store import SnapshotStore, default_store_root


@pytest.fixture()
def store(tmp_path) -> SnapshotStore:
    return SnapshotStore(tmp_path / "store", max_blobs=4)


def _age(store: SnapshotStore, digest: str, seconds: float) -> None:
    """Backdate a blob's mtime (filesystem timestamps are too coarse for
    LRU tests to rely on write order alone)."""
    path = store.blob_path(digest)
    stat = path.stat()
    os.utime(path, (stat.st_atime - seconds, stat.st_mtime - seconds))


class TestBlobs:
    def test_put_is_content_addressed(self, store):
        payload = b"snapshot-bytes"
        digest = store.put(payload)
        assert digest == hashlib.sha256(payload).hexdigest()
        assert store.get(digest) == payload
        assert store.has(digest)

    def test_put_is_idempotent(self, store):
        digest = store.put(b"x")
        assert store.put(b"x") == digest
        assert len(store) == 1
        assert store.stats["writes"] == 1

    def test_get_miss_returns_none_and_counts(self, store):
        assert store.get("0" * 64) is None
        assert store.stats == {"hits": 0, "misses": 1, "writes": 0, "evictions": 0}
        digest = store.put(b"x")
        store.get(digest)
        assert store.stats["hits"] == 1

    def test_load_raises_on_missing_blob(self, store):
        from repro.kernel.serialize import SnapshotError

        with pytest.raises(SnapshotError, match="not in the store"):
            store.load("f" * 64)

    def test_no_temp_files_left_behind(self, store):
        store.put(b"a")
        store.put(b"b")
        leftovers = [p for p in store.root.rglob("*.tmp")]
        assert leftovers == []

    def test_reopening_sees_existing_blobs(self, store):
        digest = store.put(b"persisted")
        reopened = SnapshotStore(store.root, max_blobs=4)
        assert reopened.get(digest) == b"persisted"


class TestEviction:
    def test_cap_evicts_stalest_first(self, store):
        digests = [store.put(bytes([i])) for i in range(4)]
        for offset, digest in enumerate(digests):
            _age(store, digest, 100 - offset * 10)  # digests[0] is stalest
        store.put(b"one-too-many")
        assert len(store) == 4
        assert not store.has(digests[0])
        assert all(store.has(d) for d in digests[1:])
        assert store.stats["evictions"] == 1

    def test_get_refreshes_lru_position(self, store):
        digests = [store.put(bytes([i])) for i in range(4)]
        for offset, digest in enumerate(digests):
            _age(store, digest, 100 - offset * 10)
        store.get(digests[0])  # refresh the stalest
        store.put(b"one-too-many")
        assert store.has(digests[0])
        assert not store.has(digests[1])

    def test_gc_keep(self, store):
        for i in range(4):
            digest = store.put(bytes([i]))
            _age(store, digest, 100 - i * 10)
        evicted = store.gc(keep=1)
        assert len(evicted) == 3
        assert len(store) == 1

    def test_max_blobs_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotStore(tmp_path, max_blobs=0)


def _fake_delta(base_digest: str, payload: bytes = b"body") -> bytes:
    """A frame that *parses* as a delta (GC only reads the 72-byte header,
    so the body never has to decode)."""
    from repro.kernel.serialize import SNAPSHOT_VERSION, _KIND_DELTA, _MAGIC

    return _MAGIC + bytes([SNAPSHOT_VERSION]) + _KIND_DELTA \
        + base_digest.encode("ascii") + payload


class TestDeltaChainPinning:
    """Eviction must never orphan a delta by dropping the base it was
    encoded against — a live delta pins its base blob."""

    def test_lru_skips_a_pinned_base(self, store):
        base = store.put(b"\xffbase-full-frame")
        delta = store.put(_fake_delta(base))
        fillers = [store.put(bytes([i])) for i in range(2)]
        _age(store, base, 100)  # base is by far the stalest...
        for offset, digest in enumerate(fillers):
            _age(store, digest, 50 - offset * 10)
        store.put(b"one-too-many")
        # ...yet the delta keeps it alive; the stalest *unpinned* blob goes.
        assert store.has(base) and store.has(delta)
        assert not store.has(fillers[0])

    def test_gc_keep_skips_pinned_bases(self, store):
        base = store.put(b"\xffbase-full-frame")
        delta = store.put(_fake_delta(base))
        _age(store, base, 100)
        _age(store, delta, 10)
        evicted = store.gc(keep=1)
        # The stalest blob is the base, but it is pinned; the delta (its
        # only dependant) is the one that goes.
        assert store.has(base)
        assert evicted == [delta]

    def test_gc_drains_a_chain_leaf_first(self, store):
        """The pin set is recomputed after each eviction: draining to
        zero evicts the delta first, *then* its newly-unpinned base —
        never the base while the delta is still live."""
        base = store.put(b"\xffbase-full-frame")
        delta = store.put(_fake_delta(base))
        _age(store, base, 100)  # stalest, yet pinned until the delta goes
        evicted = store.gc(keep=0)
        assert evicted == [delta, base]
        assert len(store) == 0

    def test_base_becomes_evictable_once_the_delta_is_gone(self, store):
        base = store.put(b"\xffbase-full-frame")
        delta = store.put(_fake_delta(base))
        store.blob_path(delta).unlink()
        _age(store, base, 100)
        for i in range(3):
            digest = store.put(bytes([i]))
            _age(store, digest, 10 - i)
        store.put(b"one-too-many")
        assert not store.has(base)

    def test_chain_middle_links_are_pinned_transitively(self, store):
        """full ← delta1 ← delta2: delta1 is both a delta and a base; as
        long as delta2 lives, both earlier links must survive."""
        base = store.put(b"\xffbase-full-frame")
        delta1 = store.put(_fake_delta(base, b"level one"))
        delta2 = store.put(_fake_delta(delta1, b"level two"))
        _age(store, base, 100)
        _age(store, delta1, 90)
        filler = store.put(b"victim")
        _age(store, filler, 70)
        store.put(b"one-too-many")
        assert store.has(base) and store.has(delta1) and store.has(delta2)
        assert not store.has(filler)

    def test_restore_survives_eviction_pressure(self, tmp_path):
        """Regression: with naive LRU the aged-out base was evicted and
        ``restore`` of the still-live delta raised ``SnapshotError``."""
        from repro.api import World
        from repro.kernel.serialize import (restore_kernel, snapshot_kernel,
                                            snapshot_kernel_delta)

        store = SnapshotStore(tmp_path / "store", max_blobs=4)
        kernel = World().boot().kernel
        payload = snapshot_kernel(kernel)
        base = store.put(payload)
        mutant = kernel.fork()
        sys = mutant.syscalls(mutant.spawn_process("root", "/"))
        sys.write_whole("/tmp/notes.txt", b"delta payload")
        delta = store.put(
            snapshot_kernel_delta(mutant, restore_kernel(payload), base))
        fillers = [store.put(bytes([i])) for i in range(2)]
        _age(store, base, 100)  # the base would be LRU's first victim
        for offset, digest in enumerate(fillers):
            _age(store, digest, 50 - offset * 10)
        store.put(b"eviction pressure")
        restored = store.restore(delta)
        check = restored.syscalls(restored.spawn_process("root", "/"))
        assert check.read_whole("/tmp/notes.txt") == b"delta payload"


class TestWorldIndex:
    def test_link_and_resolve(self, store):
        snapshot = store.put(b"machine")
        store.link_world("w" * 64, snapshot, meta={"fixtures": {"jpeg": 2}})
        resolved = store.resolve_world("w" * 64)
        assert resolved is not None
        digest, meta = resolved
        assert digest == snapshot
        assert meta == {"fixtures": {"jpeg": 2}}

    def test_unlinked_world_is_a_miss(self, store):
        assert store.resolve_world("nope") is None
        assert store.stats["misses"] == 1

    def test_dangling_link_is_a_miss_and_gc_prunes_it(self, store):
        snapshot = store.put(b"machine")
        store.link_world("w" * 64, snapshot)
        store.blob_path(snapshot).unlink()
        assert store.resolve_world("w" * 64) is None
        store.gc()
        assert store.world_links() == {}

    def test_corrupt_link_is_a_miss(self, store):
        snapshot = store.put(b"machine")
        store.link_world("w" * 64, snapshot)
        (store.root / "worlds" / ("w" * 64 + ".link")).write_bytes(b"garbage")
        assert store.resolve_world("w" * 64) is None

    def test_relink_overwrites(self, store):
        first = store.put(b"one")
        second = store.put(b"two")
        store.link_world("w", first)
        store.link_world("w", second)
        resolved = store.resolve_world("w")
        assert resolved is not None and resolved[0] == second

    def test_link_meta_round_trips_plain_data(self, store):
        snapshot = store.put(b"machine")
        meta = {"stats": {"vnode_ops": 123}, "default_user": "alice",
                "fixtures": {"blob": b"\x00\x01"}}
        store.link_world("w", snapshot, meta=meta)
        _digest, loaded = store.resolve_world("w")
        assert loaded == meta
        assert pickle.dumps(loaded)  # stays plain data


class TestInspection:
    def test_entries_report_size_and_worlds(self, store):
        snapshot = store.put(b"machine-bytes")
        store.link_world("wd1", snapshot)
        store.link_world("wd2", snapshot)
        [entry] = store.entries()
        assert entry.digest == snapshot
        assert entry.size == len(b"machine-bytes")
        assert entry.worlds == ("wd1", "wd2")

    def test_default_root_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "envstore"))
        assert default_store_root() == tmp_path / "envstore"
        store = SnapshotStore()
        assert store.root == tmp_path / "envstore"
