"""Kernel snapshot round-trips: the contract behind the process backend.

A snapshot must be a *perfect fork*: restoring ``pickle.dumps(kernel)``
(or the versioned :mod:`repro.kernel.serialize` codec) has to preserve
everything a :meth:`Kernel.fork` preserves — vnode tree, users, MAC
policies, op counters, audit history, and every allocation watermark —
because the process backend's byte-identical-results guarantee reduces
to exactly that.  Each case-study world (grading / usr_src / web /
emacs) is round-tripped, and property tests sweep ad-hoc worlds.
"""

from __future__ import annotations

import pickle

import pytest

from repro.api import World
from repro.api.sessions import Session
from repro.casestudies.apache import web_world
from repro.casestudies.findgrep import usr_src_world
from repro.casestudies.grading import grading_world
from repro.casestudies.package_mgmt import emacs_world
from repro.kernel.serialize import (
    SnapshotError,
    apply_kernel_delta,
    delta_base_digest,
    is_delta,
    restore_any,
    restore_kernel,
    snapshot_digest,
    snapshot_kernel,
    snapshot_kernel_delta,
)

#: name -> (world builder, a path that must survive the round trip)
CASE_STUDY_WORLDS = {
    "grading": (lambda: grading_world(True, students=3, tests=2),
                "/home/tester/submissions/student02/main.ml"),
    "usr_src": (lambda: usr_src_world(True, subsystems=2, files_per_dir=4),
                "/usr/src/sys00/dir0/file0.c"),
    "web": (lambda: web_world(True, file_kb=16, small_files=2),
            "/var/www/page0.html"),
    "emacs": (lambda: emacs_world(True), "/etc/passwd"),
}

PROBE_AMBIENT = """\
#lang shill/ambient
root = open_dir("/");
entries = contents(root);
append(stdout, path(root) + "\\n");
"""

DENIED_AMBIENT = """\
#lang shill/ambient
secret = open_file("/etc/passwd");
entries = contents(open_dir("/etc"));
"""


def _roundtrip(kernel):
    return pickle.loads(pickle.dumps(kernel))


def _watermarks(kernel) -> dict:
    shill = kernel.mac.find("shill")
    return {
        "pids": kernel.procs.allocated,
        "vids": kernel.vfs._next_vid,
        "generation": kernel.vfs.generation,
        "epoch": kernel.state_epoch,
        "last_sid": shill.sessions.last_sid if shill is not None else 0,
    }


@pytest.mark.parametrize("name", sorted(CASE_STUDY_WORLDS))
class TestCaseStudyRoundTrips:
    def test_plain_pickle_preserves_watermarks_and_ops(self, name):
        build, _path = CASE_STUDY_WORLDS[name]
        kernel = build().boot().kernel
        restored = _roundtrip(kernel)
        assert _watermarks(restored) == _watermarks(kernel)
        assert restored.stats.snapshot() == kernel.stats.snapshot()
        assert restored.stats.trace() == kernel.stats.trace()

    def test_runs_on_restored_kernel_fingerprint_identically(self, name):
        build, _path = CASE_STUDY_WORLDS[name]
        kernel = build().boot().kernel
        restored = _roundtrip(kernel)
        original = Session(kernel.fork(), user="root").run_ambient(PROBE_AMBIENT)
        mirrored = Session(restored.fork(), user="root").run_ambient(PROBE_AMBIENT)
        assert mirrored.fingerprint() == original.fingerprint()

    def test_world_content_survives(self, name):
        build, path = CASE_STUDY_WORLDS[name]
        world = build().boot()
        restored = _roundtrip(world.kernel)
        session = Session(restored, user="root")
        assert session.runtime.sys.read_whole(path) == world.read_file(path)

    def test_codec_round_trip_equals_plain_pickle(self, name):
        build, _path = CASE_STUDY_WORLDS[name]
        kernel = build().boot().kernel
        restored = restore_kernel(snapshot_kernel(kernel))
        assert _watermarks(restored) == _watermarks(kernel)


class TestHistoryAndCounters:
    def _kernel_with_history(self):
        """A kernel that has already served runs: op counters advanced,
        audit history (incl. a denial) recorded, watermarks moved."""
        world = World().for_user("alice").with_jpeg_samples().boot()
        session = world.session(user="alice")
        session.run_ambient(PROBE_AMBIENT)
        sandbox = world.sandbox("", user="alice")
        sandbox.exec(["/bin/cat", "/etc/passwd"])
        return world.kernel

    def test_audit_history_survives_the_round_trip(self):
        kernel = self._kernel_with_history()
        restored = _roundtrip(kernel)
        original = kernel.shill_policy().sessions.audit_records()
        mirrored = restored.shill_policy().sessions.audit_records()
        assert [r.sid for r in mirrored] == [r.sid for r in original]
        assert [r.log.format() for r in mirrored] == \
            [r.log.format() for r in original]
        assert any(r.log.denials() for r in mirrored)

    def test_op_counters_keep_counting_after_restore(self):
        kernel = self._kernel_with_history()
        restored = _roundtrip(kernel)
        before = restored.stats.snapshot()
        Session(restored, user="alice").run_ambient(PROBE_AMBIENT)
        after = restored.stats.snapshot()
        assert after["vnode_ops"] > before["vnode_ops"]
        # The restored kernel's stats sinks are re-wired to one object.
        assert restored.vfs.stats is restored.stats
        assert restored.mac.stats is restored.stats

    def test_restored_equals_forked_run_for_run(self):
        """The load-bearing equivalence: fork-of-restored and
        fork-of-original produce identical results for a run that makes
        denials (audit lines embed sids, so watermark drift would show)."""
        kernel = self._kernel_with_history()
        restored = _roundtrip(kernel)
        world_a = Session(kernel.fork(), user="alice")
        world_b = Session(restored.fork(), user="alice")
        result_a = world_a.run_ambient(DENIED_AMBIENT)
        result_b = world_b.run_ambient(DENIED_AMBIENT)
        assert result_b.fingerprint() == result_a.fingerprint()


class TestSnapshotCodec:
    def test_snapshot_is_deterministic_for_equal_worlds(self):
        a = World().with_usr_src(subsystems=1, files_per_dir=3).boot().kernel
        b = World().with_usr_src(subsystems=1, files_per_dir=3).boot().kernel
        assert snapshot_digest(a) == snapshot_digest(b)

    def test_snapshot_differs_for_different_worlds(self):
        a = World().with_file("/tmp/a", b"one").boot().kernel
        b = World().with_file("/tmp/a", b"two").boot().kernel
        assert snapshot_digest(a) != snapshot_digest(b)

    def test_bad_magic_is_rejected(self):
        with pytest.raises(SnapshotError, match="magic"):
            restore_kernel(b"NOTASNAPSHOT")

    def test_truncated_snapshot_is_rejected(self):
        """Even a magic-prefix-only blob must fail inside the codec's
        error contract, never with a raw IndexError."""
        for blob in (b"", b"SHILL", b"SHILLK"):
            with pytest.raises(SnapshotError, match="truncated"):
                restore_kernel(blob)

    def test_corrupt_body_is_rejected_inside_the_contract(self):
        """A valid header over a garbage body (truncated file, bit rot)
        raises SnapshotError, not a raw pickle exception."""
        good = snapshot_kernel(World().boot().kernel)
        # Header is magic + version + kind (8 bytes); everything after
        # is pickle body.
        for blob in (good[:9], good[: len(good) // 2], good[:8] + b"garbage"):
            with pytest.raises(SnapshotError, match="decode"):
                restore_kernel(blob)
        with pytest.raises(SnapshotError, match="truncated"):
            restore_kernel(good[:8])  # header-only: no body at all
        with pytest.raises(SnapshotError, match="kind"):
            restore_kernel(good[:7] + b"garbage")  # clobbered kind byte

    def test_live_state_is_dropped_like_a_fork(self):
        """Live processes and listeners are per-run state: a restored
        kernel starts with none, but keeps the allocation watermarks."""
        world = World().boot()
        kernel = world.kernel
        kernel.spawn_process("root", "/")
        allocated = kernel.procs.allocated
        restored = _roundtrip(kernel)
        assert restored.procs.live_processes() == []
        assert restored.procs.allocated == allocated

    def test_mirror_service_survives(self):
        """Registered network services are world plumbing and must cross
        (the Download workload depends on the GNU mirror)."""
        kernel = emacs_world(True).boot().kernel
        restored = _roundtrip(kernel)
        from repro.world.fixtures import EMACS_HOST

        assert EMACS_HOST in restored.network._services


class TestDeltaCodec:
    """Incremental snapshots: a mutated fork ships as a small delta
    frame that, applied to its base, restores the same machine a full
    snapshot would."""

    @staticmethod
    def _write(kernel, path: str, data: bytes) -> None:
        from repro.kernel import O_CREAT, O_WRONLY

        sys = kernel.syscalls(kernel.spawn_process("root", "/"))
        fd = sys.open(path, O_WRONLY | O_CREAT)
        try:
            sys.write(fd, data)
        finally:
            sys.close(fd)

    def _base_and_mutant(self):
        """(base payload, its digest, a fork that wrote one file)."""
        import hashlib

        kernel = World().with_usr_src(subsystems=1, files_per_dir=3).boot().kernel
        payload = snapshot_kernel(kernel)
        digest = hashlib.sha256(payload).hexdigest()
        mutant = kernel.fork()
        self._write(mutant, "/tmp/notes.txt", b"delta payload")
        return payload, digest, mutant

    def test_delta_restores_the_same_machine_as_a_full_frame(self):
        payload, digest, mutant = self._base_and_mutant()
        delta = snapshot_kernel_delta(mutant, restore_kernel(payload), digest)
        via_delta = restore_any(delta, lambda _d: payload)
        via_full = restore_kernel(snapshot_kernel(mutant))
        assert _watermarks(via_delta) == _watermarks(via_full)
        assert via_delta.stats.snapshot() == via_full.stats.snapshot()
        session = Session(via_delta, user="root")
        assert session.runtime.sys.read_whole("/tmp/notes.txt") == b"delta payload"
        assert session.runtime.sys.read_whole("/usr/src/sys00/dir0/file0.c") \
            == Session(via_full, user="root").runtime.sys.read_whole(
                "/usr/src/sys00/dir0/file0.c")

    def test_delta_is_much_smaller_than_full(self):
        payload, digest, mutant = self._base_and_mutant()
        delta = snapshot_kernel_delta(mutant, restore_kernel(payload), digest)
        full = snapshot_kernel(mutant)
        assert len(delta) < len(full) / 2

    def test_frame_kind_introspection(self):
        payload, digest, mutant = self._base_and_mutant()
        delta = snapshot_kernel_delta(mutant, restore_kernel(payload), digest)
        assert is_delta(delta) and not is_delta(payload)
        assert delta_base_digest(delta) == digest

    def test_kind_mismatches_stay_inside_the_error_contract(self):
        payload, digest, mutant = self._base_and_mutant()
        delta = snapshot_kernel_delta(mutant, restore_kernel(payload), digest)
        with pytest.raises(SnapshotError, match="not a delta"):
            delta_base_digest(payload)
        with pytest.raises(SnapshotError, match="not a delta"):
            apply_kernel_delta(payload, restore_kernel(payload))
        with pytest.raises(SnapshotError, match="base"):
            restore_kernel(delta)  # a delta needs restore_any
        with pytest.raises(SnapshotError, match="no base loader"):
            restore_any(delta)

    def test_bad_base_digest_is_rejected_at_encode_time(self):
        payload, _digest, mutant = self._base_and_mutant()
        with pytest.raises(SnapshotError, match="hex chars"):
            snapshot_kernel_delta(mutant, restore_kernel(payload), "abc123")

    def test_delta_against_the_wrong_base_is_rejected(self):
        """External vnode references must resolve in the supplied base;
        a machine without those vids must make the apply fail loudly.
        (Writing *inside* /usr/src leaves its sibling subtrees unchanged,
        so they externalize at post-boot vids no bare world has.)"""
        payload, digest, mutant = self._base_and_mutant()
        self._write(mutant, "/usr/src/sys00/dir0/extra.c", b"/* new */")
        delta = snapshot_kernel_delta(mutant, restore_kernel(payload), digest)
        stranger = World().boot().kernel
        with pytest.raises(SnapshotError, match="absent from the base"):
            apply_kernel_delta(delta, stranger)

    def test_store_resolves_delta_chains(self, tmp_path):
        """SnapshotStore.restore follows delta → delta → full chains,
        and is_delta reports frame kinds from the store."""
        from repro.kernel.store import SnapshotStore

        payload, digest, mutant = self._base_and_mutant()
        store = SnapshotStore(tmp_path)
        assert store.put(payload) == digest
        delta1 = snapshot_kernel_delta(mutant, restore_kernel(payload), digest)
        d1 = store.put(delta1)

        second = store.restore(d1)
        self._write(second, "/tmp/more.txt", b"second generation")
        delta2 = snapshot_kernel_delta(second, store.restore(d1), d1)
        d2 = store.put(delta2)

        assert store.is_delta(d1) and store.is_delta(d2)
        assert not store.is_delta(digest)
        restored = store.restore(d2)
        session = Session(restored, user="root")
        assert session.runtime.sys.read_whole("/tmp/notes.txt") == b"delta payload"
        assert session.runtime.sys.read_whole("/tmp/more.txt") == b"second generation"


# ---------------------------------------------------------------------------
# property tests: arbitrary worlds round-trip
# ---------------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

_name = st.text(alphabet="abcdefgh", min_size=1, max_size=6)
_tree = st.dictionaries(
    st.tuples(_name, _name),  # (directory, filename) under /srv
    st.binary(min_size=0, max_size=64),
    min_size=1,
    max_size=8,
)


def _world_of(tree: dict) -> World:
    world = World()
    for (directory, filename), data in sorted(tree.items()):
        world.with_file(f"/srv/{directory}/{filename}", data)
    return world.boot()


class TestRoundTripProperties:
    @settings(max_examples=25, deadline=None)
    @given(tree=_tree)
    def test_every_file_survives_the_round_trip(self, tree):
        world = _world_of(tree)
        restored = _roundtrip(world.kernel)
        session = Session(restored, user="root")
        for (directory, filename), data in tree.items():
            assert session.runtime.sys.read_whole(
                f"/srv/{directory}/{filename}") == bytes(data)

    @settings(max_examples=25, deadline=None)
    @given(tree=_tree)
    def test_watermarks_and_digest_are_stable(self, tree):
        kernel = _world_of(tree).kernel
        restored = _roundtrip(kernel)
        assert _watermarks(restored) == _watermarks(kernel)
        # Snapshotting is repeatable (same machine, same bytes) and a
        # restore is a fixed point: re-snapshotting a restored machine
        # reproduces its bytes exactly.  (A source machine and its
        # restore may differ in *bytes* — restoring normalises string
        # sharing — while restoring to behaviourally identical machines;
        # the equal-construction determinism is asserted in
        # TestSnapshotCodec.)
        assert snapshot_digest(kernel) == snapshot_digest(kernel)
        assert snapshot_digest(restored) == snapshot_digest(_roundtrip(restored))

    @settings(max_examples=10, deadline=None)
    @given(tree=_tree, mutation=st.binary(min_size=1, max_size=16))
    def test_restored_kernels_are_isolated_from_the_source(self, tree, mutation):
        world = _world_of(tree)
        restored = _roundtrip(world.kernel)
        (directory, filename), _data = sorted(tree.items())[0]
        path = f"/srv/{directory}/{filename}"
        world.write_file(path, mutation)
        session = Session(restored, user="root")
        assert session.runtime.sys.read_whole(path) == bytes(tree[(directory, filename)])
