"""Tests for the optional extensions (paper §3.1.1 / §3.2.3: "no
fundamental obstacle" items, built as switchable features)."""

from __future__ import annotations

import pytest

from repro.errors import ContractViolation, SysError
from repro.kernel import O_RDONLY, O_WRONLY, errno_
from repro.kernel.devices import TtyDevice
from repro.kernel.fdesc import OpenFile
from repro.kernel.vfs import Vnode, VType
from repro.api import Session, World
from repro.sandbox.privileges import (
    ConnType,
    Priv,
    PrivSet,
    SocketPerms,
    SockPriv,
)


class TestDeviceInterposition:
    """kernel.interpose_devices=True adds the missing MAC entry points
    around character-device read/write, closing the §3.2.3 bypass."""

    def _sandbox_with_tty(self, kernel, grant_tty: bool):
        policy = kernel.shill_policy()
        tty = Vnode(VType.VCHR, 0o666, 0, 0)
        tty.device = TtyDevice(input_data=b"secret")
        launcher = kernel.spawn_process("root", "/")
        child = kernel.procs.fork(launcher)
        session = policy.sessions.shill_init(child)
        if grant_tty:
            policy.sessions.grant(
                session, tty, PrivSet.of(Priv.READ, Priv.WRITE, Priv.APPEND)
            )
        sys = kernel.syscalls(child)
        child.fdtable.install(9, OpenFile(tty, O_WRONLY))
        child.fdtable.install(8, OpenFile(tty, O_RDONLY))
        sys.shill_enter()
        return sys, tty

    def test_bypass_closed_when_enabled(self):
        kernel = World().boot().kernel
        kernel.interpose_devices = True
        sys, tty = self._sandbox_with_tty(kernel, grant_tty=False)
        with pytest.raises(SysError) as exc:
            sys.write(9, b"leak")
        assert exc.value.errno == errno_.EACCES
        with pytest.raises(SysError):
            sys.read(8, 6)
        assert tty.device.text == ""

    def test_granted_device_still_usable(self):
        kernel = World().boot().kernel
        kernel.interpose_devices = True
        sys, tty = self._sandbox_with_tty(kernel, grant_tty=True)
        sys.write(9, b"allowed")
        assert tty.device.text == "allowed"
        assert sys.read(8, 6) == b"secret"

    def test_default_reproduces_the_paper_limitation(self):
        kernel = World().boot().kernel
        assert kernel.interpose_devices is False
        sys, tty = self._sandbox_with_tty(kernel, grant_tty=False)
        sys.write(9, b"bypass")  # not interposed: the documented gap
        assert tty.device.text == "bypass"

    def test_sandboxed_exec_still_works_with_interposition(self):
        """The runtime grants its /dev/null stand-in, so ordinary execs
        keep working when the extension is on."""
        from repro.capability.caps import PipeFactoryCap
        from repro.stdlib.native import create_wallet, make_pkg_native, populate_native_wallet

        kernel = World().boot().kernel
        kernel.interpose_devices = True
        rt = Session(kernel, user="root").runtime
        wallet = create_wallet()
        populate_native_wallet(
            wallet, rt.open_dir("/"), "/bin:/usr/bin:/usr/local/bin",
            "/lib:/usr/lib:/usr/local/lib", PipeFactoryCap(rt.sys),
        )
        echo = make_pkg_native(rt)("echo", wallet)
        assert rt.call(echo, ["ok"]) == 0


class TestLanguageSockets:
    """EXTENSION: socket built-ins in the capability-safe language."""

    @pytest.fixture
    def rt(self):
        kernel = World().boot().kernel
        return Session(kernel, user="root").runtime

    SERVER_CLIENT = """\
#lang shill/cap

provide ping : {net : socket_factory} -> is_string;

ping = fun(net) {
  server = create_socket(net, "inet", "stream");
  socket_bind(server, "0.0.0.0", 9000);
  socket_listen(server);
  client = create_socket(net, "inet", "stream");
  socket_connect(client, "0.0.0.0", 9000);
  socket_send(client, "ping");
  conn = socket_accept(server);
  msg = socket_recv(conn);
  socket_send(conn, msg + "/pong");
  socket_recv(client);
}
"""

    def test_script_drives_sockets(self, rt):
        from repro.capability.caps import SocketFactoryCap

        rt.register_script("ping.cap", self.SERVER_CLIENT)
        ping = rt.load_cap_exports("ping.cap")["ping"]
        assert rt.call(ping, SocketFactoryCap()) == "ping/pong"

    def test_factory_perms_enforced(self, rt):
        """A connect-only factory cannot bind/listen."""
        from repro.capability.caps import SocketFactoryCap

        perms = SocketPerms({SockPriv.CREATE, SockPriv.CONNECT, SockPriv.SEND,
                             SockPriv.RECEIVE})
        factory = SocketFactoryCap(perms)
        sock = factory.create(rt.sys, 2, 1)
        with pytest.raises(ContractViolation) as exc:
            sock.bind("0.0.0.0", 80)
        assert "+bind" in exc.value.detail

    def test_conn_type_refinement_enforced(self, rt):
        from repro.capability.caps import SocketFactoryCap

        perms = SocketPerms({SockPriv.CREATE}, (ConnType(domain=1, stype=1),))
        factory = SocketFactoryCap(perms)
        with pytest.raises(ContractViolation):
            factory.create(rt.sys, 2, 1)  # inet refused, only unix allowed

    def test_create_socket_requires_factory_value(self, rt):
        from repro.errors import ShillRuntimeError

        rt.register_script(
            "bad.cap",
            "#lang shill/cap\nprovide f : {x : is_string} -> void;\n"
            "f = fun(x) { create_socket(x, \"inet\", \"stream\"); }",
        )
        f = rt.load_cap_exports("bad.cap")["f"]
        with pytest.raises(ShillRuntimeError):
            rt.call(f, "not-a-factory")

    def test_reachability_from_script_to_simulated_service(self, rt):
        """A SHILL script with a socket factory can fetch from a network
        service — the download story without spawning curl."""
        from repro.capability.caps import SocketFactoryCap
        from repro.world import add_emacs_mirror

        add_emacs_mirror(rt.kernel)
        rt.register_script(
            "fetch.cap",
            "#lang shill/cap\n"
            "provide fetch : {net : socket_factory} -> is_string;\n"
            "fetch = fun(net) {\n"
            "  s = create_socket(net, \"inet\", \"stream\");\n"
            "  socket_connect(s, \"ftp.gnu.org\", 80);\n"
            "  socket_send(s, \"GET /gnu/emacs/emacs-24.3.tar.gz\");\n"
            "  socket_recv(s);\n"
            "}",
        )
        fetch = rt.load_cap_exports("fetch.cap")["fetch"]
        response = rt.call(fetch, SocketFactoryCap())
        assert response.startswith("HTTP/1.0 200 OK")
