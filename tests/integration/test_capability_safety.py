"""Property-based capability-safety tests (DESIGN.md §5, invariant 1).

The central claim: a sandboxed process (or a capability-safe script) can
observe exactly the objects reachable from its granted capabilities under
the derivation rules — nothing else.  Hypothesis generates random
filesystem trees and random grant sets; the test computes the expected
reachable set from the grant model and compares it with what the sandbox
can actually do.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import SysError
from repro.kernel import Kernel, O_RDONLY
from repro.kernel.vfs import VType
from repro.sandbox.privileges import Priv, PrivSet

# Small deterministic namespace: directories d0..d2 nested up to depth 3,
# each holding files f0..f2.
NAMES = ["d0", "d1", "d2"]
FILES = ["f0", "f1", "f2"]

dir_paths = st.sets(
    st.lists(st.sampled_from(NAMES), min_size=1, max_size=3).map(tuple),
    min_size=1,
    max_size=10,
)


def build_tree(dirs: set[tuple[str, ...]]) -> tuple[Kernel, list[str], list[str]]:
    """Create all listed directories (and ancestors), with files in each
    directory including the root.  Returns (kernel, all_dirs, all_files)."""
    kernel = Kernel()
    kernel.install_shill_module()
    all_dirs = {()}
    for d in dirs:
        for i in range(1, len(d) + 1):
            all_dirs.add(d[:i])
    vnodes = {(): kernel.vfs.root}
    for d in sorted(all_dirs, key=len):
        if d == ():
            continue
        parent = vnodes[d[:-1]]
        vnodes[d] = kernel.vfs.create(parent, d[-1], VType.VDIR, 0o755, 0, 0)
    file_paths = []
    for d in sorted(all_dirs, key=len):
        for f in FILES[: 1 + len(d) % 3]:
            vp = kernel.vfs.create(vnodes[d], f, VType.VREG, 0o644, 0, 0)
            assert vp.data is not None
            vp.data.extend(b"payload")
            file_paths.append("/" + "/".join(d + (f,)))
    dir_strs = ["/" + "/".join(d) if d else "/" for d in sorted(all_dirs, key=len)]
    return kernel, dir_strs, file_paths


def make_session(kernel: Kernel, grant_roots: list[str]):
    """A sandbox granted readonly-with-inherit on each root (so entire
    subtrees are readable) and nothing else."""
    policy = kernel.shill_policy()
    launcher = kernel.spawn_process("root", "/")
    child = kernel.procs.fork(launcher)
    session = policy.sessions.shill_init(child)
    sys = kernel.syscalls(launcher)
    privs = PrivSet.of(Priv.LOOKUP, Priv.READ, Priv.STAT, Priv.CONTENTS, Priv.PATH)
    for root in grant_roots:
        _, _, vp = sys._resolve(root)
        policy.sessions.grant(session, vp, privs)
    child_sys = kernel.syscalls(child)
    child_sys.shill_enter()
    return child_sys


def expected_readable(file_path: str, grant_roots: list[str]) -> bool:
    """A file is readable iff some granted root is a prefix of its path
    AND of the resolution route — since resolution starts at '/', the
    *first* component already requires lookup, so the root grant must
    cover the whole chain: i.e. some granted root r such that the file is
    under r and every directory from '/' down to the file is under r or
    is r itself.  With absolute resolution that means r must be '/' ...
    unless the process resolves relative to a granted directory.  We
    resolve relative to each granted root, so: readable iff under some
    root."""
    for root in grant_roots:
        prefix = root.rstrip("/") + "/"
        if root == "/" or file_path.startswith(prefix):
            return True
    return False


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(dirs=dir_paths, data=st.data())
def test_sandbox_reads_exactly_the_granted_subtrees(dirs, data):
    kernel, all_dirs, files = build_tree(dirs)
    grant_roots = data.draw(
        st.lists(st.sampled_from(all_dirs), min_size=1, max_size=3, unique=True)
    )
    sys = make_session(kernel, grant_roots)

    for file_path in files:
        expected = expected_readable(file_path, grant_roots)
        # Resolve relative to the best (longest) granted root so the
        # lookup chain starts inside granted territory.
        actual = False
        for root in grant_roots:
            rel = None
            if root == "/":
                rel = file_path.lstrip("/")
            elif file_path.startswith(root.rstrip("/") + "/"):
                rel = file_path[len(root.rstrip("/")) + 1 :]
            if rel is None:
                continue
            launcher_sys = kernel.syscalls(kernel.spawn_process("root", root))
            sys.proc.cwd = launcher_sys.proc.cwd
            try:
                fd = sys.open(rel, O_RDONLY)
                assert sys.read(fd, 7) == b"payload"
                sys.close(fd)
                actual = True
                break
            except SysError:
                continue
        assert actual == expected, (file_path, grant_roots)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(dirs=dir_paths, data=st.data())
def test_language_caps_reach_exactly_the_granted_subtrees(dirs, data):
    """Same property one layer up: a capability-safe walk from a directory
    capability can reach exactly the files under it."""
    from repro.capability.caps import FsCap

    kernel, all_dirs, files = build_tree(dirs)
    root_path = data.draw(st.sampled_from(all_dirs))
    sys = kernel.syscalls(kernel.spawn_process("root", "/"))
    _, _, vp = sys._resolve(root_path)
    cap = FsCap(sys, vp, PrivSet.of(Priv.LOOKUP, Priv.READ, Priv.CONTENTS, Priv.PATH),
                root_path)

    reached: set[str] = set()

    def walk(c: FsCap) -> None:
        if c.is_dir_cap:
            for name in c.contents():
                try:
                    walk(c.lookup(name))
                except SysError:
                    pass
        else:
            reached.add(c.try_path())

    if cap.is_dir_cap:
        walk(cap)
    expected = {
        f for f in files
        if root_path == "/" or f.startswith(root_path.rstrip("/") + "/")
    }
    assert reached == expected


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(dirs=dir_paths)
def test_ungranted_session_reads_nothing(dirs):
    kernel, _, files = build_tree(dirs)
    sys = make_session(kernel, [])
    for file_path in files:
        with pytest.raises(SysError):
            sys.open(file_path, O_RDONLY)
