"""CLI tests for `python -m repro`."""

from __future__ import annotations


from repro.__main__ import main


def test_demo(capsys):
    assert main(["demo"]) == 0
    assert "/home/alice/Documents/dog.jpg" in capsys.readouterr().out


def test_run_with_host_scripts(tmp_path, capsys):
    cap = tmp_path / "hello.cap"
    cap.write_text(
        "#lang shill/cap\n"
        "provide hello : {out : file(+write, +append)} -> void;\n"
        "hello = fun(out) { append(out, \"hello from shill\\n\"); }\n"
    )
    ambient = tmp_path / "main.ambient"
    ambient.write_text(
        "#lang shill/ambient\nrequire \"hello.cap\";\nhello(stdout);\n"
    )
    assert main(["run", str(ambient), "--cap", str(cap)]) == 0
    assert "hello from shill" in capsys.readouterr().out


def test_shill_run_allowed(tmp_path, capsys):
    policy = tmp_path / "cat.policy"
    policy.write_text(
        "/ : +lookup with {}\n"
        "/etc : +lookup with {}\n"
        "/lib : +lookup, +read, +stat, +path\n"
        "/libexec : +lookup, +read, +stat, +path\n"
        "/etc/passwd : +read, +stat, +path\n"
        "/etc/locale.conf : +read, +stat, +path\n"
    )
    assert main(["shill-run", str(policy), "/bin/cat", "/etc/passwd"]) == 0
    assert "alice:1001" in capsys.readouterr().out


def test_shill_run_denied_reports(tmp_path, capsys):
    policy = tmp_path / "empty.policy"
    policy.write_text("")
    status = main(["shill-run", str(policy), "/bin/cat", "/etc/passwd"])
    assert status != 0
    assert "denied operations" in capsys.readouterr().out


def test_shill_run_debug_reports_grants(tmp_path, capsys):
    policy = tmp_path / "empty.policy"
    policy.write_text("")
    assert main(["shill-run", str(policy), "--debug", "/bin/cat", "/etc/passwd"]) == 0
    out = capsys.readouterr().out
    assert "auto-grant" in out and "+read" in out
