"""CLI tests for `python -m repro`."""

from __future__ import annotations

import sys as _sys

import pytest

from repro.__main__ import main


def test_demo(capsys):
    assert main(["demo"]) == 0
    assert "/home/alice/Documents/dog.jpg" in capsys.readouterr().out


def test_run_with_host_scripts(tmp_path, capsys):
    cap = tmp_path / "hello.cap"
    cap.write_text(
        "#lang shill/cap\n"
        "provide hello : {out : file(+write, +append)} -> void;\n"
        "hello = fun(out) { append(out, \"hello from shill\\n\"); }\n"
    )
    ambient = tmp_path / "main.ambient"
    ambient.write_text(
        "#lang shill/ambient\nrequire \"hello.cap\";\nhello(stdout);\n"
    )
    assert main(["run", str(ambient), "--cap", str(cap)]) == 0
    assert "hello from shill" in capsys.readouterr().out


def test_shill_run_allowed(tmp_path, capsys):
    policy = tmp_path / "cat.policy"
    policy.write_text(
        "/ : +lookup with {}\n"
        "/etc : +lookup with {}\n"
        "/lib : +lookup, +read, +stat, +path\n"
        "/libexec : +lookup, +read, +stat, +path\n"
        "/etc/passwd : +read, +stat, +path\n"
        "/etc/locale.conf : +read, +stat, +path\n"
    )
    assert main(["shill-run", str(policy), "/bin/cat", "/etc/passwd"]) == 0
    assert "alice:1001" in capsys.readouterr().out


def test_shill_run_denied_reports(tmp_path, capsys):
    policy = tmp_path / "empty.policy"
    policy.write_text("")
    status = main(["shill-run", str(policy), "/bin/cat", "/etc/passwd"])
    assert status != 0
    assert "denied operations" in capsys.readouterr().out


def test_shill_run_debug_reports_grants(tmp_path, capsys):
    policy = tmp_path / "empty.policy"
    policy.write_text("")
    assert main(["shill-run", str(policy), "--debug", "/bin/cat", "/etc/passwd"]) == 0
    out = capsys.readouterr().out
    assert "auto-grant" in out and "+read" in out


WALK_AMBIENT = (
    '#lang shill/ambient\n'
    'docs = open_dir("~/Documents");\n'
    'append(stdout, path(docs) + "\\n");\n'
)


def _walk_script(tmp_path):
    script = tmp_path / "walk.ambient"
    script.write_text(WALK_AMBIENT)
    return str(script)


def test_batch_executor_flag(tmp_path, capsys):
    script = _walk_script(tmp_path)
    assert main(["batch", script, script, "--executor", "thread", "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert out.count("/home/alice/Documents") == 2
    assert "2 jobs" in out


def test_batch_verbose_reports_cache_verdicts(tmp_path, capsys):
    from repro.api import clear_result_cache

    clear_result_cache()
    script = _walk_script(tmp_path)
    assert main(["batch", script, script, "--verbose"]) == 0
    err = capsys.readouterr().err
    assert "walk.ambient: cache miss" in err
    assert "walk.ambient: cache hit" in err
    assert "cache report: 1 hits, 1 misses, 0 invalidated, 0 uncacheable" in err


def test_batch_store_executor_populates_and_reuses_the_store(tmp_path, capsys):
    from repro.api import SnapshotStore, clear_boot_cache

    script = _walk_script(tmp_path)
    store_dir = tmp_path / "snapstore"
    argv = ["batch", script, "--executor", "store", "--store", str(store_dir),
            "--workers", "2"]
    assert main(argv) == 0
    store = SnapshotStore(store_dir)
    assert len(store) == 1
    assert len(store.world_links()) == 1
    clear_boot_cache()  # a new process would start cold: boot from disk
    assert main(argv) == 0
    assert "/home/alice/Documents" in capsys.readouterr().out
    assert len(SnapshotStore(store_dir)) == 1


def test_batch_engine_error_exits_3_with_job_on_stderr(tmp_path, capsys, monkeypatch):
    """Satellite: BatchExecutionError through the CLI — exit code and a
    stderr line naming the failing job."""
    from repro.api import sessions

    def explode(self, source, name="<ambient>"):
        raise RuntimeError("engine bug")

    monkeypatch.setattr(sessions.Session, "run_ambient", explode)
    script = _walk_script(tmp_path)
    status = main(["batch", script, "--no-cache"])
    assert status == 3
    err = capsys.readouterr().err
    assert "repro batch:" in err
    assert "walk.ambient" in err
    assert "RuntimeError: engine bug" in err


@pytest.mark.skipif(_sys.platform != "linux",
                    reason="relies on fork-start workers inheriting the patch")
def test_batch_worker_error_exits_3_through_process_executor(tmp_path, capsys, monkeypatch):
    from repro.api import sessions

    def explode(self, source, name="<ambient>"):
        raise RuntimeError("engine bug in worker")

    monkeypatch.setattr(sessions.Session, "run_ambient", explode)
    script = _walk_script(tmp_path)
    status = main(["batch", script, "--no-cache", "--executor", "process",
                   "--workers", "2"])
    assert status == 3
    err = capsys.readouterr().err
    assert "walk.ambient" in err
    assert "RuntimeError: engine bug in worker" in err


def test_store_ls_and_gc(tmp_path, capsys):
    from repro.api import SnapshotStore

    store_dir = tmp_path / "snapstore"
    store = SnapshotStore(store_dir)
    digest = store.put(b"machine-bytes")
    store.link_world("wdigest", digest)

    assert main(["store", "ls", "--store", str(store_dir)]) == 0
    out = capsys.readouterr().out
    assert digest[:16] in out
    assert "worlds=1" in out
    assert "total: 1 blob(s)" in out

    assert main(["store", "gc", "--keep", "0", "--store", str(store_dir)]) == 0
    out = capsys.readouterr().out
    assert "evicted 1 blob(s)" in out
    assert len(SnapshotStore(store_dir)) == 0
    assert SnapshotStore(store_dir).world_links() == {}
