"""Deeper session-hierarchy and lifecycle tests."""

from __future__ import annotations

import pytest

from repro.errors import SandboxError, SysError
from repro.kernel import O_RDONLY, errno_
from repro.sandbox.privileges import Priv, PrivSet, SocketPerms, SockPriv
from repro.api import World


@pytest.fixture
def world():
    return World().boot().kernel


def new_session(kernel, parent_proc=None, grants=()):
    policy = kernel.shill_policy()
    base = parent_proc or kernel.spawn_process("root", "/")
    child = kernel.procs.fork(base)
    session = policy.sessions.shill_init(child)
    sys = kernel.syscalls(kernel.spawn_process("root", "/"))
    for path, privs in grants:
        _, _, vp = sys._resolve(path)
        policy.sessions.grant(session, vp, privs)
    return child, session


class TestNesting:
    def test_three_levels(self, world):
        policy = world.shill_policy()
        p1, s1 = new_session(world, grants=[
            ("/", PrivSet.of(Priv.LOOKUP)),
            ("/etc", PrivSet.of(Priv.LOOKUP, Priv.READ, Priv.STAT)),
        ])
        world.syscalls(p1).shill_enter()

        p2 = world.procs.fork(p1)
        s2 = policy.sessions.shill_init(p2)
        etc = world.vfs.lookup(world.vfs.root, "etc")
        rootv = world.vfs.root
        policy.sessions.grant(s2, rootv, PrivSet.of(Priv.LOOKUP))
        policy.sessions.grant(s2, etc, PrivSet.of(Priv.LOOKUP, Priv.READ))
        world.syscalls(p2).shill_enter()

        p3 = world.procs.fork(p2)
        s3 = policy.sessions.shill_init(p3)
        policy.sessions.grant(s3, rootv, PrivSet.of(Priv.LOOKUP))
        policy.sessions.grant(s3, etc, PrivSet.of(Priv.LOOKUP))
        world.syscalls(p3).shill_enter()

        assert s3.is_descendant_of(s1) and s3.is_descendant_of(s2)
        assert not s1.is_descendant_of(s3)
        # Innermost can traverse but not read:
        sys3 = world.syscalls(p3)
        with pytest.raises(SysError) as exc:
            sys3.open("/etc/passwd", O_RDONLY)
        assert exc.value.errno == errno_.EACCES

    def test_middle_session_attenuation_bounds_grandchild(self, world):
        """s2 dropped +read, so s3 cannot get it back even though s1 had it."""
        policy = world.shill_policy()
        p1, s1 = new_session(world, grants=[("/etc", PrivSet.of(Priv.LOOKUP, Priv.READ))])
        world.syscalls(p1).shill_enter()
        etc = world.vfs.lookup(world.vfs.root, "etc")

        p2 = world.procs.fork(p1)
        s2 = policy.sessions.shill_init(p2)
        policy.sessions.grant(s2, etc, PrivSet.of(Priv.LOOKUP))  # drop +read
        world.syscalls(p2).shill_enter()

        p3 = world.procs.fork(p2)
        s3 = policy.sessions.shill_init(p3)
        with pytest.raises(SandboxError):
            policy.sessions.grant(s3, etc, PrivSet.of(Priv.READ))

    def test_socket_factory_attenuation_in_children(self, world):
        policy = world.shill_policy()
        p1, s1 = new_session(world)
        policy.sessions.grant_socket_factory(
            s1, SocketPerms({SockPriv.CREATE, SockPriv.CONNECT})
        )
        world.syscalls(p1).shill_enter()
        p2 = world.procs.fork(p1)
        s2 = policy.sessions.shill_init(p2)
        policy.sessions.grant_socket_factory(s2, SocketPerms({SockPriv.CONNECT}))
        with pytest.raises(SandboxError):
            policy.sessions.grant_socket_factory(s2, SocketPerms({SockPriv.BIND}))

    def test_pipe_factory_needs_parent_factory(self, world):
        policy = world.shill_policy()
        p1, s1 = new_session(world)
        world.syscalls(p1).shill_enter()  # no pipe factory
        p2 = world.procs.fork(p1)
        s2 = policy.sessions.shill_init(p2)
        with pytest.raises(SandboxError):
            policy.sessions.grant_pipe_factory(s2)


class TestLifecycle:
    def test_session_survives_while_children_live(self, world):
        p1, s1 = new_session(world)
        world.syscalls(p1).shill_enter()
        p2 = world.procs.fork(p1)  # same session
        world.procs.reap(p1)
        assert not s1.dead  # p2 still inside
        world.procs.reap(p2)
        assert s1.dead

    def test_parent_session_waits_for_child_sessions(self, world):
        policy = world.shill_policy()
        p1, s1 = new_session(world)
        world.syscalls(p1).shill_enter()
        p2 = world.procs.fork(p1)
        s2 = policy.sessions.shill_init(p2)
        world.syscalls(p2).shill_enter()
        world.procs.reap(p1)
        assert not s1.dead  # child session s2 still alive
        world.procs.reap(p2)
        assert s2.dead and s1.dead

    def test_dead_session_grants_refused(self, world):
        policy = world.shill_policy()
        p1, s1 = new_session(world)
        world.syscalls(p1).shill_enter()
        world.procs.reap(p1)
        assert s1.dead
        with pytest.raises(SandboxError):
            policy.sessions.grant(s1, world.vfs.root, PrivSet.of(Priv.LOOKUP))

    def test_cleanup_removes_propagated_grants_too(self, world):
        """Privileges minted by lookup propagation are dropped at session
        end, not just the explicit ones."""
        from repro.sandbox.privmap import privmap_of

        p1, s1 = new_session(world, grants=[
            ("/etc", PrivSet.of(Priv.LOOKUP, Priv.READ, Priv.STAT)),
        ])
        sys1 = world.syscalls(p1)
        sys1.shill_enter()
        p1.cwd = world.vfs.lookup(world.vfs.root, "etc")
        sys1.open("passwd", O_RDONLY)
        passwd = world.vfs.lookup(world.vfs.lookup(world.vfs.root, "etc"), "passwd")
        assert privmap_of(passwd).privs_for(s1.sid).has(Priv.READ)
        world.procs.reap(p1)
        # Teardown drops the grant — and, with no surviving grants, the
        # label slot itself, restoring the unlabelled state.
        assert privmap_of(passwd) is None
