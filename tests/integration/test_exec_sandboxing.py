"""Integration tests for the `exec` builtin: the language ↔ sandbox seam."""

from __future__ import annotations

import pytest

from repro.api import Session, World
from repro.errors import ContractViolation, ShillRuntimeError
from repro.capability.caps import PipeFactoryCap
from repro.sandbox.privileges import Priv, PrivSet


@pytest.fixture
def world():
    return World().boot().kernel


@pytest.fixture
def session(world):
    return Session(world, user="root")


@pytest.fixture
def rt(session):
    # The engine, for assertions on the language <-> sandbox seam.
    return session.runtime


def wallet_for(rt):
    from repro.stdlib.native import create_wallet, populate_native_wallet

    wallet = create_wallet()
    populate_native_wallet(
        wallet, rt.open_dir("/"), "/bin:/usr/bin:/usr/local/bin",
        "/lib:/usr/lib:/usr/local/lib", PipeFactoryCap(rt.sys),
    )
    return wallet


class TestExecBasics:
    def test_exec_requires_exec_privilege(self, rt):
        cat = rt.open_file("/bin/cat").attenuated(
            PrivSet.of(Priv.READ, Priv.PATH), blame="t"
        )
        with pytest.raises(ContractViolation) as exc:
            rt.exec_builtin(cat, ["cat"])
        assert "+exec" in exc.value.detail

    def test_exec_rejects_non_capability(self, rt):
        with pytest.raises(ShillRuntimeError):
            rt.exec_builtin("/bin/cat", ["cat"])

    def test_stdio_wiring(self, rt):
        wallet = wallet_for(rt)
        rt.sys.write_whole("/root/input.txt", b"flows through")
        rend, wend = PipeFactoryCap(rt.sys).create()
        from repro.stdlib.native import make_pkg_native

        cat = make_pkg_native(rt)("cat", wallet)
        status = rt.call(cat, [], stdin=rt.open_file("/root/input.txt"), stdout=wend)
        assert status == 0
        assert rend.read() == b"flows through"

    def test_argv_caps_become_paths_and_grants(self, rt):
        wallet = wallet_for(rt)
        rt.sys.write_whole("/root/arg.txt", b"via argv")
        rend, wend = PipeFactoryCap(rt.sys).create()
        from repro.stdlib.native import make_pkg_native

        cat = make_pkg_native(rt)("cat", wallet)
        arg = rt.open_file("/root/arg.txt")
        status = rt.call(cat, [arg], stdout=wend)
        assert status == 0
        assert rend.read() == b"via argv"

    def test_argv_cap_without_path_priv_is_violation(self, rt):
        wallet = wallet_for(rt)
        rt.sys.write_whole("/root/arg.txt", b"x")
        from repro.stdlib.native import make_pkg_native

        cat = make_pkg_native(rt)("cat", wallet)
        arg = rt.open_file("/root/arg.txt").attenuated(PrivSet.of(Priv.READ), blame="t")
        with pytest.raises(ContractViolation):
            rt.call(cat, [arg])

    def test_ulimits_passed_to_child(self, rt):
        """Figure 7 note ‡: exec can specify ulimit parameters."""
        wallet = wallet_for(rt)
        from repro.stdlib.native import make_pkg_native

        cat = make_pkg_native(rt)("cat", wallet)
        status = rt.call(cat, ["/etc/locale.conf"], ulimits={"open_files": 0})
        assert status != 0

    def test_cwd_capability(self, rt):
        wallet = wallet_for(rt)
        rt.sys.mkdir("/root/wd")
        rt.sys.write_whole("/root/wd/here.txt", b"relative works")
        from repro.stdlib.native import make_pkg_native

        rend, wend = PipeFactoryCap(rt.sys).create()
        cat = make_pkg_native(rt)("cat", wallet)
        status = rt.call(cat, ["here.txt"], stdout=wend, cwd=rt.open_dir("/root/wd"))
        assert status == 0
        assert rend.read() == b"relative works"

    def test_exit_status_propagates(self, rt):
        wallet = wallet_for(rt)
        from repro.stdlib.native import make_pkg_native

        grep = make_pkg_native(rt)("grep", wallet)
        rt.sys.write_whole("/root/hay.txt", b"nothing here")
        arg = rt.open_file("/root/hay.txt")
        assert rt.call(grep, ["needle", arg]) == 1  # no match


class TestTransitivity:
    """Goal 3: guarantees apply transitively to programs a program runs."""

    def test_spawned_children_share_the_session(self, rt):
        """find -exec grep: grep runs in find's session, so grep is
        confined by find's sandbox even though the script never saw it."""
        from repro.stdlib.native import make_pkg_native
        from repro.world import add_usr_src

        add_usr_src(rt.kernel, subsystems=1, files_per_dir=4)
        wallet = wallet_for(rt)
        findp = make_pkg_native(rt)("find", wallet)
        src = rt.open_dir("/usr/src")
        rend, wend = PipeFactoryCap(rt.sys).create()
        status = rt.call(
            findp,
            [src, "-name", "*.c", "-exec", "grep", "-H", "mac_", "{}", ";"],
            stdout=wend, extras=[wallet, src],
        )
        assert status == 0
        # grep could read the granted tree...
        assert rt.last_session is not None
        # ...but nothing outside it: no denial-free access to /etc.
        rt.call(
            findp, [src, "-name", "*.c", "-exec", "grep", "-H", "x", "/etc/passwd", ";"],
            extras=[wallet, src],
        )
        denials = [e for e in rt.last_session.log.denials() if "passwd" in e.target]
        assert denials, "grep's attempt on /etc/passwd must be denied"

    def test_nested_session_attenuation(self, rt, world):
        """A SHILL-aware executable can shill_init a child session with
        fewer capabilities — and the child grant cannot exceed the
        parent's (section 3.2.1)."""
        from repro.errors import SandboxError
        from repro.programs.base import Program

        probe_result = {}

        class SelfAttenuating(Program):
            name = "self-attenuate"
            needed = []

            def main(self, sys, argv, env):
                session = sys.shill_init()
                policy = sys.kernel.shill_policy()
                _, _, target = sys._resolve(argv[1])
                try:
                    policy.sessions.grant(
                        session, target, PrivSet.of(Priv.READ, Priv.WRITE, Priv.APPEND)
                    )
                    probe_result["over-grant"] = "allowed"
                except SandboxError:
                    probe_result["over-grant"] = "refused"
                return 0

        world.register_program(SelfAttenuating())
        from repro.world.image import WorldBuilder

        builder = WorldBuilder(world)
        builder.install_binary("/usr/local/bin/self-attenuate", "self-attenuate", [])
        rt.sys.write_whole("/root/data.txt", b"d")
        prog = rt.open_file("/usr/local/bin/self-attenuate")
        data = rt.open_file("/root/data.txt").attenuated(
            PrivSet.of(Priv.READ, Priv.STAT, Priv.PATH), blame="t"
        )
        status = rt.exec_builtin(prog, ["self-attenuate", data], extras=[data])
        assert status == 0
        # Parent session held only +read on the file, so granting
        # +read+write to the child session must be refused.
        assert probe_result["over-grant"] == "refused"


class TestDebugExec:
    def test_debug_mode_records_needed_privileges(self, rt):
        cat = rt.open_file("/bin/cat")
        status = rt.exec_builtin(cat, ["cat", "/etc/passwd"], debug=True)
        assert status == 0
        grants = rt.last_session.log.auto_grants()
        text = "\n".join(e.format() for e in grants)
        assert "/lib/libc.so.7" in text and "/etc/passwd" in text
