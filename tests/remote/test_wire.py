"""The wire codec: frames, handshakes, and blob export/import framing."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.kernel.serialize import SnapshotError
from repro.kernel.store import BLOB_EXPORT_MAGIC, SnapshotStore
from repro.remote.wire import (
    WIRE_VERSION,
    Connection,
    WireClosed,
    WireError,
    client_handshake,
)


def _pipe() -> tuple[Connection, Connection]:
    """Two connected in-process Connections (loopback socketpair)."""
    a, b = socket.socketpair()
    return Connection(a), Connection(b)


class TestFrames:
    def test_round_trip_fields_and_blob(self):
        left, right = _pipe()
        left.send("SUBMIT", {"index": 3, "name": "j3", "user": None},
                  blob=b"\x00binary\xff")
        msg = right.recv()
        assert msg.type == "SUBMIT"
        assert msg.fields == {"index": 3, "name": "j3", "user": None}
        assert msg.blob == b"\x00binary\xff"

    def test_empty_blob_and_fields(self):
        left, right = _pipe()
        left.send("GOODBYE")
        msg = right.recv()
        assert msg.type == "GOODBYE" and msg.fields == {} and msg.blob == b""

    def test_many_frames_in_order(self):
        left, right = _pipe()
        for i in range(10):
            left.send("PING", {"i": i})
        assert [right.recv().fields["i"] for _ in range(10)] == list(range(10))

    def test_eof_between_frames_is_wire_closed(self):
        left, right = _pipe()
        left.close()
        with pytest.raises(WireClosed, match="closed"):
            right.recv()

    def test_eof_mid_frame_is_an_error_not_a_short_read(self):
        a, b = socket.socketpair()
        right = Connection(b)
        # A length prefix promising more bytes than ever arrive.
        a.sendall(b"\x00\x00\x00\xff\x00\x00\x00\x00")
        a.close()
        with pytest.raises(WireClosed, match="mid-frame"):
            right.recv()

    def test_corrupt_length_prefix_fails_fast(self):
        a, b = socket.socketpair()
        right = Connection(b)
        a.sendall(b"\xff\xff\xff\xff\xff\xff\xff\xff")
        with pytest.raises(WireError, match="too large"):
            right.recv()

    def test_expect_rejects_wrong_type(self):
        left, right = _pipe()
        left.send("HELLO", {"version": WIRE_VERSION})
        with pytest.raises(WireError, match="expected READY"):
            right.recv().expect("READY")

    def test_expect_surfaces_peer_error(self):
        left, right = _pipe()
        left.send("ERROR", {"error": "agent exploded"})
        with pytest.raises(WireError, match="agent exploded"):
            right.recv().expect("READY")


class TestHandshake:
    def _serve(self, reply_version):
        a, b = socket.socketpair()
        server = Connection(b)

        def srv():
            hello = server.recv()
            assert hello.fields["version"] == WIRE_VERSION
            server.send("HELLO", {"version": reply_version, "pid": 1234})

        thread = threading.Thread(target=srv)
        thread.start()
        return Connection(a), thread

    def test_matching_versions_succeed(self):
        client, thread = self._serve(WIRE_VERSION)
        hello = client_handshake(client)
        thread.join()
        assert hello.fields["pid"] == 1234

    def test_version_mismatch_is_typed(self):
        from repro.remote.wire import WireVersionError

        client, thread = self._serve(WIRE_VERSION + 1)
        with pytest.raises(WireVersionError, match="wire version"):
            client_handshake(client)
        thread.join()


class TestBlobExport:
    """The store's wire framing: digest travels with the bytes."""

    def test_export_import_round_trip(self, tmp_path):
        src = SnapshotStore(tmp_path / "src")
        dst = SnapshotStore(tmp_path / "dst")
        digest = src.put(b"machine image bytes")
        frame = src.export_blob(digest)
        assert frame.startswith(BLOB_EXPORT_MAGIC)
        assert dst.import_blob(frame) == digest
        assert dst.get(digest) == b"machine image bytes"

    def test_import_rejects_tampered_payload(self, tmp_path):
        src = SnapshotStore(tmp_path / "src")
        digest = src.put(b"genuine")
        frame = bytearray(src.export_blob(digest))
        frame[-1] ^= 0xFF
        with pytest.raises(SnapshotError, match="corrupt"):
            SnapshotStore(tmp_path / "dst").import_blob(bytes(frame))

    def test_import_rejects_garbage(self, tmp_path):
        with pytest.raises(SnapshotError, match="magic"):
            SnapshotStore(tmp_path / "dst").import_blob(b"not a frame")

    def test_export_missing_blob_is_an_error(self, tmp_path):
        with pytest.raises(SnapshotError, match="not in the store"):
            SnapshotStore(tmp_path / "s").export_blob("0" * 64)
