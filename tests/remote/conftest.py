"""Shared fixtures for the remote subsystem: real agent subprocesses.

Every test that talks to an agent spawns a genuine ``python -m repro
agent`` process over a tmp-dir store — the wire, the store, and the
process boundary are all real; only the network is loopback.
"""

from __future__ import annotations

import pytest

from repro.api import clear_result_cache
from repro.remote.agent import spawn_local_agent

#: The fault-injection marker the host-death tests plant in scripts.
CHAOS_MARKER = "CHAOS-DIE-HERE"


@pytest.fixture(autouse=True)
def _fresh_result_cache():
    clear_result_cache()
    yield
    clear_result_cache()


@pytest.fixture
def agent_factory(tmp_path):
    """Spawn agents that are reliably killed at test end; yields
    ``spawn(name, chaos_exit_on=None) -> (proc, "host:port")``."""
    procs = []

    def spawn(name: str, chaos_exit_on: "str | None" = None):
        proc, addr = spawn_local_agent(tmp_path / f"store-{name}",
                                       chaos_exit_on=chaos_exit_on)
        procs.append(proc)
        return proc, addr

    yield spawn
    for proc in procs:
        proc.kill()
    for proc in procs:
        proc.wait(timeout=10)
