"""Wire v2 channels: multiplexed exchanges, negotiation, retirement.

The mux contracts: N threads share one connection, replies route by
channel id even arriving out of order; a conversation (PREPARE's
NEED/BLOB loop) gates new sends without stalling in-flight replies; a
v1 peer negotiates down to a lock-step link; an unsolicited GOODBYE is
a clean retirement, not a crash.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.remote.wire import (
    MIN_WIRE_VERSION,
    WIRE_VERSION,
    ChannelMux,
    Connection,
    LockstepLink,
    WireClosed,
    WireVersionError,
    open_link,
)


def _pipe() -> tuple[Connection, Connection]:
    a, b = socket.socketpair()
    return Connection(a), Connection(b)


def _mux_pair(on_goodbye=None) -> tuple[ChannelMux, Connection]:
    """A client-side mux talking to a raw server-side connection the
    test scripts by hand."""
    client, server = _pipe()
    return ChannelMux(client, on_goodbye=on_goodbye), server


class TestChannelMux:
    def test_interleaved_submits_replies_out_of_order(self):
        """Two SUBMITs in flight at once on one connection; the peer
        answers them in *reverse* order and each waiter still gets its
        own reply — the whole point of channel tags."""
        mux, server = _mux_pair()
        first_sent = threading.Event()
        second_sent = threading.Event()
        results: dict[str, object] = {}

        def peer():
            # Collect both requests before answering either, then reply
            # newest-first: routing must come from the channel id, not
            # arrival order.
            a = server.recv()
            first_sent.set()
            b = server.recv()
            second_sent.set()
            for msg in (b, a):
                server.send("RESULT", {"channel": msg.fields["channel"],
                                       "index": msg.fields["index"]},
                            blob=b"r%d" % msg.fields["index"])

        thread = threading.Thread(target=peer)
        thread.start()

        def submit(i):
            reply = mux.request("SUBMIT", {"index": i})
            results[i] = (reply.fields["index"], reply.blob)

        t1 = threading.Thread(target=submit, args=(1,))
        t1.start()
        assert first_sent.wait(timeout=5)
        t2 = threading.Thread(target=submit, args=(2,))
        t2.start()
        for t in (thread, t1, t2):
            t.join(timeout=5)
        assert results == {1: (1, b"r1"), 2: (2, b"r2")}

    def test_channels_are_distinct_per_request(self):
        mux, server = _mux_pair()
        seen = []

        def peer():
            for _ in range(3):
                msg = server.recv()
                seen.append(msg.fields["channel"])
                server.send("PONG", {"channel": msg.fields["channel"]})

        thread = threading.Thread(target=peer)
        thread.start()
        for _ in range(3):
            mux.request("PING")
        thread.join(timeout=5)
        assert len(set(seen)) == 3

    def test_converse_multi_frame_exchange_stays_on_one_channel(self):
        """A NEED/BLOB-shaped exchange: every frame of the conversation
        carries the same channel, and the peer's multi-frame replies all
        land on the conversation's waiter."""
        mux, server = _mux_pair()

        def peer():
            prepare = server.recv()
            ch = prepare.fields["channel"]
            server.send("NEED", {"channel": ch, "snapshot": "abc"})
            blob = server.recv()
            assert blob.fields["channel"] == ch  # same exchange
            server.send("READY", {"channel": ch, "source": "wire"})

        thread = threading.Thread(target=peer)
        thread.start()
        with mux.converse() as conv:
            reply = conv.request("PREPARE", {"snapshot": "abc"})
            assert reply.type == "NEED"
            reply = conv.request("BLOB", {"snapshot": "abc"}, b"bytes")
        assert reply.type == "READY" and reply.fields["source"] == "wire"
        thread.join(timeout=5)

    def test_unsolicited_goodbye_is_clean_retirement(self):
        retired = threading.Event()
        mux, server = _mux_pair(on_goodbye=retired.set)
        server.send("GOODBYE", {"reason": "retiring"})
        server.close()
        assert retired.wait(timeout=5)
        assert mux.retired
        with pytest.raises(WireClosed, match="retired"):
            mux.request("SUBMIT", {"index": 0})

    def test_peer_death_fails_all_waiters(self):
        mux, server = _mux_pair()
        failures = []

        def submit():
            try:
                mux.request("SUBMIT", {"index": 0})
            except WireClosed as err:
                failures.append(err)

        threads = [threading.Thread(target=submit) for _ in range(2)]
        for t in threads:
            t.start()
        # Let both requests reach the peer, then die without replying.
        server.recv()
        server.recv()
        server.close()
        for t in threads:
            t.join(timeout=5)
        assert len(failures) == 2


class _MiniAgent:
    """A scriptable server speaking just enough HELLO to negotiate."""

    def __init__(self, version: int):
        self.version = version
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(1)
        self.port = self._listener.getsockname()[1]
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        sock, _ = self._listener.accept()
        conn = Connection(sock)
        hello = conn.recv()
        assert hello.type == "HELLO"
        advertised = hello.fields["version"]
        conn.send("HELLO", {"version": min(self.version, advertised),
                            "pid": 1})


class TestNegotiation:
    def test_v1_peer_negotiates_down_to_lockstep(self):
        agent = _MiniAgent(version=1)
        link, hello = open_link("127.0.0.1", agent.port)
        assert isinstance(link, LockstepLink)
        assert link.version == 1
        assert link.concurrency == 1
        link.close()

    def test_v2_peer_gets_a_mux(self):
        agent = _MiniAgent(version=WIRE_VERSION)
        link, hello = open_link("127.0.0.1", agent.port)
        assert isinstance(link, ChannelMux)
        assert link.version == WIRE_VERSION
        link.close()

    def test_peer_replying_above_our_version_is_refused(self):
        class Overeager(_MiniAgent):
            def _serve(self):
                sock, _ = self._listener.accept()
                conn = Connection(sock)
                conn.recv()
                conn.send("HELLO", {"version": WIRE_VERSION + 1})

        agent = Overeager(version=WIRE_VERSION + 1)
        with pytest.raises(WireVersionError, match="wire version"):
            open_link("127.0.0.1", agent.port)

    def test_version_floor_is_advertised(self):
        """The HELLO carries both ends of our range, so a future v3
        server can negotiate down to us instead of refusing."""
        mux, server = _mux_pair()  # not used; direct connection check
        client, peer = _pipe()
        got = {}

        def record():
            got.update(peer.recv().fields)
            peer.send("HELLO", {"version": WIRE_VERSION})

        thread = threading.Thread(target=record)
        thread.start()
        from repro.remote.wire import client_handshake

        client_handshake(client)
        thread.join(timeout=5)
        assert got["version"] == WIRE_VERSION
        assert got["min_version"] == MIN_WIRE_VERSION


class TestAgentRetirement:
    """SIGTERM = drain + GOODBYE + exit 0; SIGKILL = none of that.
    The distinction is what lets pools retire cleanly-shutdown agents
    without a health strike while striking crashed ones."""

    def test_sigterm_sends_goodbye_and_exits_zero(self, agent_factory):
        proc, addr = agent_factory("retiree")
        host, port = addr.rsplit(":", 1)
        retired = threading.Event()
        link, _hello = open_link(host, int(port), on_goodbye=retired.set)
        proc.terminate()  # SIGTERM: the clean path
        assert proc.wait(timeout=15) == 0
        assert retired.wait(timeout=10)
        assert isinstance(link, ChannelMux) and link.retired
        link.close()

    def test_pool_marks_sigtermed_host_retired_not_dead(self, agent_factory):
        from repro.remote.hostpool import HostPool

        proc, addr = agent_factory("retiree2")
        pool = HostPool([addr])
        [host] = pool.hosts
        pool.link_for(host)  # opens the link; GOODBYE routes to the pool
        proc.terminate()
        assert proc.wait(timeout=15) == 0
        # The mux reader delivers the GOODBYE asynchronously.
        deadline = threading.Event()
        for _ in range(100):
            if host.retired:
                break
            deadline.wait(0.05)
        assert host.retired and not host.alive
        assert host.strikes == 0  # a clean shutdown is not a strike
        pool.close_all(farewell=False)

    def test_sigkill_still_counts_as_a_crash(self, agent_factory):
        """The contrast case: a kill leaves no GOODBYE, so the next wire
        operation strikes the host."""
        from repro.remote.hostpool import HostPool
        from repro.remote.wire import WireError

        proc, addr = agent_factory("victim")
        pool = HostPool([addr])
        [host] = pool.hosts
        link = pool.link_for(host)
        proc.kill()
        proc.wait(timeout=15)
        with pytest.raises((WireError, OSError)):
            link.request("SUBMIT", {"index": 0})
        pool.mark_dead(host, "boom")
        assert not host.retired and host.strikes == 1
        pool.close_all(farewell=False)
