"""HostPool: parsing, scheduling policies, health, and exclusion."""

from __future__ import annotations

import pytest

from repro.api.scheduling import LeastLoaded, RoundRobin, StoreWarmth
from repro.remote.hostpool import SHARDING_POLICIES, HostPool, HostSpec


class TestHostSpec:
    def test_parse_string(self):
        assert HostSpec.parse("10.0.0.7:7001") == HostSpec("10.0.0.7", 7001)

    def test_parse_tuple_and_identity(self):
        spec = HostSpec.parse(("localhost", 9))
        assert spec == HostSpec("localhost", 9)
        assert HostSpec.parse(spec) is spec

    @pytest.mark.parametrize("bad", ["nocolon", "host:", "host:abc", ":70"])
    def test_parse_rejects_malformed(self, bad):
        if bad == ":70":
            # an empty host parses (it means "all interfaces" to bind);
            # the executor will simply fail to connect — not a parse error
            assert HostSpec.parse(bad).port == 70
            return
        with pytest.raises(ValueError, match="host spec"):
            HostSpec.parse(bad)


def _pool(n=3, policy=None):
    return HostPool([f"127.0.0.1:{7000 + i}" for i in range(n)], policy=policy)


class TestPolicies:
    def test_round_robin_rotates(self):
        pool = _pool(3)  # RoundRobin is the default policy
        picks = [pool.pick().spec.port for _ in range(6)]
        assert picks == [7000, 7001, 7002, 7000, 7001, 7002]

    def test_least_loaded_prefers_idle_host(self):
        pool = _pool(2, policy=LeastLoaded())
        first = pool.pick()
        with pool.lease(first):
            assert pool.pick() is not first
        # lease released: registration order breaks the tie again
        assert pool.pick() is first

    def test_store_warmth_prefers_prepared_host(self):
        pool = _pool(2, policy=StoreWarmth())
        pool.hosts[1].prepared.add("key-1")
        # warmth only counts for the template the job actually needs
        assert pool.pick(wire_key="key-1").spec.port == 7001
        assert pool.pick(wire_key="other").spec.port == 7000

    def test_policy_strings_resolve_with_one_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="policy strings") as seen:
            pool = _pool(2, policy="least-loaded")
        assert len(seen) == 1
        assert isinstance(pool.policy, LeastLoaded)

    def test_custom_policy_object_is_consulted(self):
        class Pinned:
            def score(self, host, job, telemetry):
                return 1.0 if host.spec.port == 7002 else 0.0

        pool = _pool(3, policy=Pinned())
        assert {pool.pick().spec.port for _ in range(4)} == {7002}

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown sharding policy"):
            _pool(policy="random")
        assert set(SHARDING_POLICIES) == {"round-robin", "least-loaded",
                                          "store-warmth"}

    def test_policy_without_score_rejected(self):
        with pytest.raises(TypeError, match="SchedulingPolicy"):
            _pool(policy=object())

    def test_empty_and_duplicate_pools_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            HostPool([])
        with pytest.raises(ValueError, match="duplicate"):
            HostPool(["h:1", "h:1"])

    def test_allow_empty_pools_admit_hosts_later(self):
        pool = HostPool([], allow_empty=True)
        with pytest.raises(LookupError):
            pool.pick()
        pool.add_host("127.0.0.1:7009")
        assert pool.pick().spec.port == 7009


class TestHealth:
    def test_dead_hosts_leave_rotation(self):
        pool = _pool(3)
        victim = pool.hosts[1]
        pool.mark_dead(victim, RuntimeError("socket reset"))
        assert victim.last_error == "socket reset"
        picks = {pool.pick().spec.port for _ in range(6)}
        assert picks == {7000, 7002}
        assert len(pool.live()) == 2

    def test_exclusion_is_per_call(self):
        pool = _pool(2)
        only = pool.pick(excluded=[HostSpec("127.0.0.1", 7000)])
        assert only.spec.port == 7001
        # a later call without the exclusion sees both again
        assert {pool.pick().spec.port for _ in range(4)} == {7000, 7001}

    def test_all_dead_or_excluded_raises_lookup_error(self):
        pool = _pool(2)
        pool.mark_dead(pool.hosts[0], "gone")
        with pytest.raises(LookupError, match="no live hosts"):
            pool.pick(excluded=[pool.hosts[1].spec])

    def test_lease_counts_inflight_and_done(self):
        pool = _pool(1)
        host = pool.pick()
        with pool.lease(host):
            assert host.inflight == 1
        assert host.inflight == 0
        assert host.jobs_done == 1

    def test_dead_strikes_but_retired_does_not(self):
        pool = _pool(2)
        crashed, polite = pool.hosts
        pool.mark_dead(crashed, "socket reset")
        pool.mark_retired(polite)
        assert crashed.strikes == 1 and not crashed.retired
        assert polite.strikes == 0 and polite.retired
        assert pool.live() == []

    def test_revive_rejoins_and_forgets_prepared_templates(self):
        pool = _pool(2)
        victim = pool.hosts[0]
        victim.prepared.add("tmpl")
        pool.mark_dead(victim, "crash")
        pool.revive(victim.spec)
        assert victim.alive and not victim.retired
        assert victim.prepared == set()       # restarted agents re-PREPARE
        assert victim.strikes == 1            # history survives the revival
        assert victim in [pool.pick() for _ in range(2)]

    def test_add_host_admits_new_and_revives_known(self):
        pool = _pool(1)
        joined = pool.add_host("127.0.0.1:7050")
        assert len(pool) == 2 and joined.alive
        pool.mark_dead(joined, "gone")
        assert pool.add_host("127.0.0.1:7050") is joined
        assert joined.alive
