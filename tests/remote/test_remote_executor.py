"""RemoteExecutor end-to-end against real agent subprocesses.

The acceptance contracts: byte-identical fingerprints vs sequential,
warm-agent-store boots with zero build ops and no wire transfer,
host death mid-batch re-shards to survivors (same bytes), and a fully
dead pool fails typed, naming the job and the hosts tried.
"""

from __future__ import annotations

import operator

import pytest

from repro.api import (
    Batch,
    BatchExecutionError,
    RemoteExecutor,
    ScriptRegistry,
    SequentialExecutor,
    World,
    clear_result_cache,
    resolve_executor,
)

WALK_AMBIENT = """\
#lang shill/ambient
docs = open_dir("~/Documents");
entries = contents(docs);
append(stdout, path(docs) + "\\n");
"""

HELLO_AMBIENT = '#lang shill/ambient\nappend(stdout, "hello\\n");\n'

FIND_JPG_CAP = """\
#lang shill/cap
provide find_jpg :
  {cur : dir(+contents, +lookup, +path) \\/ file(+path),
   out : file(+append)} -> void;
find_jpg = fun(cur, out) {
  if is_file(cur) && has_ext(cur, "jpg") then
    append(out, path(cur) + "\\n");
  if is_dir(cur) then
    for name in contents(cur) {
      child = lookup(cur, name);
      if !is_syserror(child) then find_jpg(child, out);
    }
}
"""

FIND_JPG_AMBIENT = """\
#lang shill/ambient
require "find_jpg.cap";
docs = open_dir("~/Documents");
find_jpg(docs, stdout);
"""

#: Must match tests/remote/conftest.py (not imported: conftest modules
#: are pytest's, and the `conftest` name is ambiguous across test dirs).
CHAOS_MARKER = "CHAOS-DIE-HERE"

#: A normal job whose source carries the chaos marker (as a comment):
#: agents started with ``chaos_exit_on=CHAOS_MARKER`` die on receiving
#: it; everyone else just runs the script.
CHAOS_AMBIENT = f"#lang shill/ambient\n# {CHAOS_MARKER}\n" + WALK_AMBIENT


def _jpeg_world() -> World:
    return World().for_user("alice").with_jpeg_samples()


def _batch(n=6, scripts=None):
    batch = Batch(_jpeg_world(), scripts=scripts, cache=False)
    for i in range(n):
        batch.add(FIND_JPG_AMBIENT if scripts and i % 2 else WALK_AMBIENT,
                  name=f"j{i}")
    return batch


class TestEndToEnd:
    def test_fingerprints_match_sequential(self, agent_factory, tmp_path):
        registry = ScriptRegistry().add("find_jpg.cap", FIND_JPG_CAP)
        hosts = [agent_factory(f"a{i}")[1] for i in range(2)]
        with RemoteExecutor(hosts, store=tmp_path / "coord") as executor:
            remote = _batch(scripts=registry).run(executor=executor)
        clear_result_cache()
        sequential = _batch(scripts=registry).run(executor=SequentialExecutor())
        assert [r.fingerprint() for r in remote] == \
            [r.fingerprint() for r in sequential]
        assert "dog.jpg" in remote[1].stdout

    def test_jobs_are_actually_sharded_across_hosts(self, agent_factory, tmp_path):
        hosts = [agent_factory(f"a{i}")[1] for i in range(2)]
        with RemoteExecutor(hosts, store=tmp_path / "coord") as executor:
            _batch(6).run(executor=executor)
            done = {str(h.spec): h.jobs_done for h in executor.hosts}
        assert sum(done.values()) == 6
        assert all(count > 0 for count in done.values()), done

    def test_executor_reuse_across_different_worlds(self, agent_factory,
                                                    tmp_path):
        """Regression: SUBMIT names its template.  Rebinding one
        executor across *different* worlds (w1, w2, then w1 again) must
        run each batch against its own machine — before the fix, the
        third batch's PREPARE was skipped (signature already prepared)
        and the agent ran it against whichever template this connection
        prepared last (w2's), returning silently wrong results."""
        _proc, addr = agent_factory("a0")
        read = ('#lang shill/ambient\n'
                'f = open_file("/tmp/data.txt");\n'
                'append(stdout, read(f));\n')
        w1 = World().for_user("alice").with_file("/tmp/data.txt", "WORLD-ONE\n")
        w2 = World().for_user("alice").with_file("/tmp/data.txt", "WORLD-TWO\n")
        with RemoteExecutor([addr], store=tmp_path / "coord") as executor:
            def run(world):
                return Batch(world, cache=False).add(read, name="read") \
                                                .run(executor=executor)
            assert run(w1)[0].stdout == "WORLD-ONE\n"
            assert run(w2)[0].stdout == "WORLD-TWO\n"
            assert run(w1)[0].stdout == "WORLD-ONE\n"

    def test_executor_reuse_across_batches_prepares_once(self, agent_factory, tmp_path):
        _proc, addr = agent_factory("a0")
        with RemoteExecutor([addr], store=tmp_path / "coord") as executor:
            first = _batch(2).run(executor=executor)
            boot_after_first = executor.host_boots[addr].source
            second = _batch(2).run(executor=executor)
        assert [r.fingerprint() for r in first] == [r.fingerprint() for r in second]
        # The second batch reused the prepared template (the host_boots
        # record still describes the one real PREPARE).
        assert boot_after_first == executor.host_boots[addr].source

    def test_fn_jobs_cross_the_wire(self, agent_factory, tmp_path):
        """Mapped callables ride the SUBMIT blob — they must be picklable
        *and importable on the agent* (operator.attrgetter is both; a
        test-local function would not be)."""
        _proc, addr = agent_factory("a0")
        world = _jpeg_world()
        with RemoteExecutor([addr], store=tmp_path / "coord") as executor:
            results = world.pool(workers=2).map(
                operator.attrgetter("default_user"), executor=executor)
        assert results == ["alice", "alice"]

    def test_resolve_executor_remote_needs_hosts(self):
        with pytest.raises(ValueError, match="needs hosts"):
            resolve_executor("remote")

    def test_resolve_executor_remote_with_hosts(self, agent_factory, tmp_path):
        _proc, addr = agent_factory("a0")
        executor = resolve_executor("remote", hosts=[addr],
                                    store=tmp_path / "coord")
        with executor:
            [result] = Batch(_jpeg_world(), cache=False) \
                .add(HELLO_AMBIENT).run(executor=executor)
        assert result.stdout == "hello\n"


class TestAgentStore:
    def test_warm_agent_store_boots_with_zero_build_ops(self, agent_factory,
                                                        tmp_path):
        """The acceptance criterion: an agent restarted over its own
        store restores the template from disk — no blob transfer, no
        world-build kernel ops."""
        proc, addr = agent_factory("warm")
        with RemoteExecutor([addr], store=tmp_path / "coord") as executor:
            _batch(2).run(executor=executor)
            assert executor.host_boots[addr].source == "wire"  # cold: shipped
        proc.kill()
        proc.wait(timeout=10)

        # Same store dir, new agent process ("the next day").
        _proc2, addr2 = agent_factory("warm")
        clear_result_cache()
        with RemoteExecutor([addr2], store=tmp_path / "coord") as executor:
            warm = _batch(2).run(executor=executor)
            info = executor.host_boots[addr2]
        assert info.source == "store"
        assert info.build_ops == {key: 0 for key in info.build_ops}
        clear_result_cache()
        sequential = _batch(2).run(executor=SequentialExecutor())
        assert [r.fingerprint() for r in warm] == \
            [r.fingerprint() for r in sequential]

    def test_same_prepare_twice_on_one_agent_serves_from_memory(
            self, agent_factory, tmp_path):
        """A second executor against a *live* agent finds the template
        already restored in agent memory."""
        _proc, addr = agent_factory("a0")
        with RemoteExecutor([addr], store=tmp_path / "c1") as executor:
            _batch(1).run(executor=executor)
        clear_result_cache()
        with RemoteExecutor([addr], store=tmp_path / "c1") as executor:
            _batch(1).run(executor=executor)
            assert executor.host_boots[addr].source == "memory"
            assert executor.host_boots[addr].build_ops in ({}, {
                key: 0 for key in executor.host_boots[addr].build_ops})


class TestHostDeath:
    def test_death_between_submit_and_result_reshards(self, agent_factory,
                                                      tmp_path):
        """Kill one agent in the SUBMIT→RESULT window (chaos hook) and
        the in-flight job must land on the surviving host — with results
        byte-identical to a run that never saw a death."""
        from repro.remote.agent import CHAOS_EXIT_STATUS

        chaos_proc, chaos_addr = agent_factory("chaos",
                                               chaos_exit_on=CHAOS_MARKER)
        _good_proc, good_addr = agent_factory("good")
        batch = Batch(_jpeg_world(), cache=False)
        for i in range(4):
            batch.add(CHAOS_AMBIENT, name=f"c{i}")
        with RemoteExecutor([chaos_addr, good_addr],
                            store=tmp_path / "coord") as executor:
            results = batch.run(executor=executor)
            dead = [h for h in executor.hosts if not h.alive]
        assert chaos_proc.wait(timeout=10) == CHAOS_EXIT_STATUS
        assert [str(h.spec) for h in dead] == [chaos_addr]
        assert all(r.ok for r in results)

        clear_result_cache()
        quiet = Batch(_jpeg_world(), cache=False)
        for i in range(4):
            quiet.add(CHAOS_AMBIENT, name=f"c{i}")
        baseline = quiet.run(executor=SequentialExecutor())
        assert [r.fingerprint() for r in results] == \
            [r.fingerprint() for r in baseline]

    def test_no_surviving_hosts_raises_typed_error_naming_host_and_job(
            self, agent_factory, tmp_path):
        _p1, addr1 = agent_factory("c1", chaos_exit_on=CHAOS_MARKER)
        _p2, addr2 = agent_factory("c2", chaos_exit_on=CHAOS_MARKER)
        batch = Batch(_jpeg_world(), cache=False).add(CHAOS_AMBIENT,
                                                      name="doomed")
        with RemoteExecutor([addr1, addr2], store=tmp_path / "coord") as ex:
            with pytest.raises(BatchExecutionError) as excinfo:
                batch.run(executor=ex)
        assert excinfo.value.job_name == "doomed"
        message = str(excinfo.value)
        assert addr1 in message and addr2 in message
        assert "no live hosts" in message

    def test_host_dead_before_batch_is_survived(self, agent_factory, tmp_path):
        """A host that died after registration (before any SUBMIT) is
        discovered at first use and excluded — the batch still runs."""
        proc, dead_addr = agent_factory("dies-early")
        _good, good_addr = agent_factory("lives")
        proc.kill()
        proc.wait(timeout=10)
        with RemoteExecutor([dead_addr, good_addr],
                            store=tmp_path / "coord") as executor:
            results = _batch(3).run(executor=executor)
        assert all(r.ok for r in results)

    def test_script_failures_are_results_not_retries(self, agent_factory,
                                                     tmp_path):
        """A deterministic script error must come back as a failed
        RunResult from the first host — not poison the host, not retry."""
        _proc, addr = agent_factory("a0")
        bad = "#lang shill/ambient\nopen_dir(\"/does/not/exist\");\n"
        with RemoteExecutor([addr], store=tmp_path / "coord") as executor:
            [result] = Batch(_jpeg_world(), cache=False) \
                .add(bad, name="bad").run(executor=executor)
            assert all(h.alive for h in executor.hosts)
        assert result.status == 1
        assert result.stderr


class TestCli:
    def test_batch_executor_remote_requires_hosts(self, capsys):
        from repro.__main__ import main

        status = main(["batch", "/dev/null", "--executor", "remote"])
        assert status == 2
        assert "--hosts" in capsys.readouterr().err

    def test_hosts_without_remote_rejected(self, capsys):
        from repro.__main__ import main

        status = main(["batch", "/dev/null", "--hosts", "h:1"])
        assert status == 2
        assert "--executor remote" in capsys.readouterr().err

    def test_policy_without_remote_rejected(self, capsys):
        from repro.__main__ import main

        status = main(["batch", "/dev/null", "--policy", "least-loaded"])
        assert status == 2
        assert "--executor remote" in capsys.readouterr().err

    def test_cli_least_loaded_policy(self, agent_factory, tmp_path, capsys):
        from repro.__main__ import main

        _proc, addr = agent_factory("policy")
        script = tmp_path / "walk.ambient"
        script.write_text(WALK_AMBIENT)
        status = main(["batch", str(script), "--executor", "remote",
                       "--hosts", addr, "--policy", "least-loaded",
                       "--store", str(tmp_path / "coord")])
        assert status == 0
        assert "/home/alice/Documents" in capsys.readouterr().out

    def test_cli_remote_end_to_end(self, agent_factory, tmp_path, capsys):
        from repro.__main__ import main

        _proc, addr = agent_factory("cli")
        script = tmp_path / "walk.ambient"
        script.write_text(WALK_AMBIENT)
        status = main(["batch", str(script), str(script), "--executor",
                       "remote", "--hosts", addr,
                       "--store", str(tmp_path / "coord")])
        assert status == 0
        out = capsys.readouterr().out
        assert "/home/alice/Documents" in out
