"""Property-based blame-assignment tests (DESIGN.md §5, invariant 4).

For arbitrary capability/contract privilege combinations:

* a capability *lacking* a contract-required privilege is rejected with
  blame on the **provider**;
* a capability satisfying the contract is attenuated, and any use outside
  the contracted set raises with blame on the **consumer**;
* a use inside both sets never raises.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ContractViolation
from repro.capability.caps import FsCap
from repro.contracts.blame import Blame
from repro.contracts.capctc import CapContract
from repro.sandbox.privileges import Priv, PrivSet

B = Blame("the-provider", "the-consumer")

# Privileges exercisable on a plain file capability without side inputs.
FILE_OPS = {
    Priv.READ: lambda cap: cap.read(),
    Priv.STAT: lambda cap: cap.stat(),
    Priv.PATH: lambda cap: cap.path(),
    Priv.APPEND: lambda cap: cap.append(b"+"),
    Priv.WRITE: lambda cap: cap.write(b"w"),
}

priv_sets = st.sets(st.sampled_from(sorted(FILE_OPS, key=lambda p: p.value)), max_size=5)


def make_cap(kernel, privs: PrivSet) -> FsCap:
    sys = kernel.syscalls(kernel.spawn_process("alice", "/home/alice"))
    _, _, vp = sys._resolve("/home/alice/dog.jpg")
    return FsCap(sys, vp, privs, "/home/alice/dog.jpg")


@settings(max_examples=40, deadline=None)
@given(cap_privs=priv_sets, ctc_privs=priv_sets)
def test_blame_assignment_property(cap_privs, ctc_privs):
    from repro.kernel import Kernel
    from repro.kernel.vfs import VType

    kernel = Kernel()
    kernel.users.add_user("alice", 1001, 1001)
    home = kernel.vfs.create(kernel.vfs.root, "home", VType.VDIR, 0o755, 0, 0)
    alice = kernel.vfs.create(home, "alice", VType.VDIR, 0o755, 1001, 1001)
    dog = kernel.vfs.create(alice, "dog.jpg", VType.VREG, 0o644, 1001, 1001)
    dog.data.extend(b"JPEG")

    cap = make_cap(kernel, PrivSet.of(*cap_privs))
    contract = CapContract("file", PrivSet.of(*ctc_privs))

    if not ctc_privs <= cap_privs:
        # Provider obligation unmet -> provider blamed at check time.
        with pytest.raises(ContractViolation) as exc:
            contract.check(cap, B)
        assert exc.value.blame == "the-provider"
        return

    wrapped = contract.check(cap, B)
    for priv, op in FILE_OPS.items():
        if priv in ctc_privs:
            op(wrapped)  # inside the contract: must succeed
        else:
            with pytest.raises(ContractViolation) as exc:
                op(wrapped)
            assert exc.value.blame == "the-consumer", priv
