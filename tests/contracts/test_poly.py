"""Bounded polymorphic contracts: sealing, unsealing, bound enforcement.

Reproduces the semantics of Figure 5's ``find`` contract:

    forall X with {+lookup, +contents} .
    {cur : X, filter : X -> is_bool, cmd : X -> void} -> void
"""

from __future__ import annotations

import pytest

from repro.errors import ContractViolation
from repro.capability.caps import FsCap
from repro.contracts.blame import Blame
from repro.contracts.functionctc import FunctionContract
from repro.contracts.library import is_bool, void
from repro.contracts.polyctc import ContractVar, PolyContract, SealedCap
from repro.sandbox.privileges import Priv, PrivSet

B = Blame("find.cap", "user")

BOUND = PrivSet.of(Priv.LOOKUP, Priv.CONTENTS)


def make_poly() -> PolyContract:
    X = ContractVar("X")
    body = FunctionContract(
        [
            ("cur", X),
            ("filter", FunctionContract([("arg", X)], is_bool)),
            ("cmd", FunctionContract([("arg", X)], void)),
        ],
        void,
    )
    return PolyContract("X", BOUND, body)


@pytest.fixture
def caps(kernel):
    proc = kernel.spawn_process("alice", "/home/alice")
    sys = kernel.syscalls(proc)
    _, _, vp = sys._resolve("/home/alice")
    return FsCap(sys, vp, PrivSet.full(), "/home/alice")


def _apply(fn, args, kwargs):
    if hasattr(fn, "invoke"):
        return fn.invoke(_apply, args, kwargs)
    return fn(*args, **kwargs)


class TestSealing:
    def test_body_receives_sealed_cap_with_bound_privs(self, caps):
        from repro.lang.values import VOID

        seen = {}

        def body(cur, filter_fn, cmd_fn):
            seen["cur"] = cur
            return VOID

        guarded = make_poly().check(body, B)
        guarded.invoke(_apply, [caps, lambda c: True, lambda c: VOID], {})
        cur = seen["cur"]
        assert isinstance(cur, SealedCap)
        assert cur.privs.privs() == {Priv.LOOKUP, Priv.CONTENTS}

    def test_body_cannot_exceed_bound(self, caps):
        from repro.lang.values import VOID

        def body(cur, filter_fn, cmd_fn):
            cur.create_dir("evil")  # not in {+lookup, +contents}
            return VOID

        guarded = make_poly().check(body, B)
        with pytest.raises(ContractViolation) as exc:
            guarded.invoke(_apply, [caps, lambda c: True, lambda c: VOID], {})
        assert "+create-dir" in exc.value.detail

    def test_derived_caps_stay_sealed(self, caps):
        """Lookup on a sealed cap yields a sealed child — the body cannot
        launder privileges through derivation."""
        from repro.lang.values import VOID

        def body(cur, filter_fn, cmd_fn):
            child = cur.lookup("dog.jpg")
            assert isinstance(child, SealedCap)
            child.read()  # +read not in bound
            return VOID

        guarded = make_poly().check(body, B)
        with pytest.raises(ContractViolation) as exc:
            guarded.invoke(_apply, [caps, lambda c: True, lambda c: VOID], {})
        assert "+read" in exc.value.detail

    def test_unseal_on_flow_to_filter(self, caps):
        """filter receives the ORIGINAL capability (full privileges), even
        though the body only held the sealed one."""
        from repro.lang.values import VOID

        received = {}

        def filter_fn(c):
            received["cap"] = c
            return True

        def body(cur, filt, cmd):
            child = cur.lookup("dog.jpg")
            _apply(filt, [child], {})
            return VOID

        guarded = make_poly().check(body, B)
        guarded.invoke(_apply, [caps, filter_fn, lambda c: VOID], {})
        cap = received["cap"]
        assert not isinstance(cap, SealedCap)
        # filter can use privileges beyond the bound: the whole point.
        assert cap.read() == b"JPEGDATA-DOG"

    def test_filter_with_stat_and_filter_with_path_both_work(self, caps):
        """The paper's two clients: one filter uses +stat, another +path —
        both satisfied by the same find contract."""
        from repro.lang.values import VOID

        def body(cur, filt, cmd):
            for name in cur.contents():
                child = cur.lookup(name)
                if _apply(filt, [child], {}):
                    _apply(cmd, [child], {})
            return VOID

        guarded = make_poly().check(body, B)
        stat_hits: list[int] = []
        guarded.invoke(
            _apply,
            [caps, lambda c: c.stat().size > 0, lambda c: stat_hits.append(1) or VOID],
            {},
        )
        path_hits: list[str] = []
        guarded.invoke(
            _apply,
            [caps, lambda c: c.path().endswith(".jpg"), lambda c: path_hits.append(c.path()) or VOID],
            {},
        )
        assert stat_hits and path_hits == ["/home/alice/dog.jpg"]

    def test_bound_exceeding_argument_rejected(self, caps):
        """A capability narrower than the bound cannot satisfy X."""
        from repro.lang.values import VOID

        weak = caps.attenuated(PrivSet.of(Priv.LOOKUP), blame="w")
        guarded = make_poly().check(lambda cur, f, c: VOID, B)
        with pytest.raises(ContractViolation) as exc:
            guarded.invoke(_apply, [weak, lambda c: True, lambda c: VOID], {})
        assert "+contents" in exc.value.detail

    def test_fresh_seal_per_application(self, caps):
        """Seals from one application do not unseal in another."""
        from repro.lang.values import VOID

        stolen = {}

        def body1(cur, filt, cmd):
            stolen["cap"] = cur
            return VOID

        def body2(cur, filt, cmd):
            # Pass the *other* application's sealed cap to our filter: it
            # must NOT unseal (different key) — it gets resealed instead.
            result = _apply(filt, [stolen["cap"]], {})
            assert isinstance(result, bool)
            return VOID

        poly = make_poly()
        poly.check(body1, B).invoke(_apply, [caps, lambda c: True, lambda c: VOID], {})
        received = {}

        def filter2(c):
            received["cap"] = c
            return True

        poly.check(body2, B).invoke(_apply, [caps, filter2, lambda c: VOID], {})
        # The foreign sealed cap stayed restricted (resealed, not unsealed).
        cap = received["cap"]
        assert isinstance(cap, SealedCap)


class TestNonCapThroughVar:
    def test_non_cap_through_x_rejected(self, caps):
        from repro.lang.values import VOID

        guarded = make_poly().check(lambda cur, f, c: VOID, B)
        with pytest.raises(ContractViolation):
            guarded.invoke(_apply, ["just-a-string", lambda c: True, lambda c: VOID], {})
