"""Contract system tests: flat, and/or, capability, function, wallet."""

from __future__ import annotations

import pytest

from repro.errors import ContractViolation
from repro.capability.caps import FsCap, PipeFactoryCap, SocketFactoryCap
from repro.contracts.blame import Blame
from repro.contracts.capctc import CapContract, PipeFactoryContract, SocketFactoryContract
from repro.contracts.core import AndContract, AnyContract, OrContract, VoidContract
from repro.contracts.functionctc import FunctionContract
from repro.contracts.library import (
    READONLY_FILE_PRIVS,
    is_bool,
    is_file,
    is_num,
    readonly,
    writeable,
)
from repro.contracts.walletctc import WalletContract
from repro.lang.values import VOID
from repro.sandbox.privileges import Priv, PrivSet
from repro.stdlib.wallet import Wallet

B = Blame("provider", "consumer")


@pytest.fixture
def file_cap(kernel):
    proc = kernel.spawn_process("alice", "/home/alice")
    sys = kernel.syscalls(proc)
    _, _, vp = sys._resolve("/home/alice/dog.jpg")
    return FsCap(sys, vp, PrivSet.full(), "/home/alice/dog.jpg")


@pytest.fixture
def dir_cap(kernel):
    proc = kernel.spawn_process("alice", "/home/alice")
    sys = kernel.syscalls(proc)
    _, _, vp = sys._resolve("/home/alice")
    return FsCap(sys, vp, PrivSet.full(), "/home/alice")


class TestFlat:
    def test_predicate_pass(self):
        assert is_num.check(42, B) == 42

    def test_predicate_fail_blames_positive(self):
        with pytest.raises(ContractViolation) as exc:
            is_num.check("nope", B)
        assert exc.value.blame == "provider"

    def test_void_accepts_void(self):
        assert VoidContract().check(VOID, B) is VOID

    def test_void_rejects_values(self):
        with pytest.raises(ContractViolation):
            VoidContract().check(7, B)

    def test_any_accepts_everything(self):
        for v in (1, "s", VOID, None, [1]):
            AnyContract().check(v, B)

    def test_and_applies_all(self, file_cap):
        ctc = AndContract(is_file, CapContract("file", READONLY_FILE_PRIVS))
        result = ctc.check(file_cap, B)
        assert result.privs.privs() == READONLY_FILE_PRIVS.privs()

    def test_or_first_match_wins(self, file_cap, dir_cap):
        assert readonly.check(file_cap, B).privs.has(Priv.READ)
        assert readonly.check(dir_cap, B).privs.has(Priv.CONTENTS)

    def test_or_all_fail(self):
        with pytest.raises(ContractViolation) as exc:
            OrContract(is_num, is_bool).check("str", B)
        assert "no disjunct" in exc.value.detail


class TestCapContract:
    def test_kind_mismatch_blames_provider(self, dir_cap):
        with pytest.raises(ContractViolation) as exc:
            CapContract("file", PrivSet.of(Priv.READ)).check(dir_cap, B)
        assert exc.value.blame == "provider"

    def test_non_cap_rejected(self):
        with pytest.raises(ContractViolation):
            CapContract("file", PrivSet.of(Priv.READ)).check("string-path", B)

    def test_insufficient_privs_blames_provider(self, file_cap):
        weak = file_cap.attenuated(PrivSet.of(Priv.STAT), blame="x")
        with pytest.raises(ContractViolation) as exc:
            CapContract("file", PrivSet.of(Priv.READ)).check(weak, B)
        assert exc.value.blame == "provider"
        assert "+read" in exc.value.detail

    def test_attenuation_to_contract_privs(self, file_cap):
        out = CapContract("file", PrivSet.of(Priv.READ, Priv.PATH)).check(file_cap, B)
        assert out.privs.privs() == {Priv.READ, Priv.PATH}

    def test_overuse_blames_consumer(self, file_cap):
        out = CapContract("file", PrivSet.of(Priv.READ)).check(file_cap, B)
        with pytest.raises(ContractViolation) as exc:
            out.write(b"data")
        assert exc.value.blame == "consumer"

    def test_allowed_use_succeeds(self, file_cap):
        out = CapContract("file", PrivSet.of(Priv.READ)).check(file_cap, B)
        assert out.read() == b"JPEGDATA-DOG"

    def test_modifier_narrowing(self, dir_cap):
        ctc = CapContract(
            "dir", PrivSet.of(Priv.LOOKUP).with_modifier(Priv.LOOKUP, {Priv.STAT, Priv.PATH})
        )
        out = ctc.check(dir_cap, B)
        child = out.lookup("dog.jpg")
        assert child.privs.privs() == {Priv.STAT, Priv.PATH}
        with pytest.raises(ContractViolation):
            child.read()

    def test_writeable_allows_append(self, file_cap):
        out = writeable.check(file_cap, B)
        out.append(b"!")
        assert bytes(file_cap.obj.data).endswith(b"!")


class TestFactories:
    def test_pipe_factory(self, kernel):
        proc = kernel.spawn_process("alice", "/home/alice")
        factory = PipeFactoryCap(kernel.syscalls(proc))
        assert PipeFactoryContract().check(factory, B) is factory
        with pytest.raises(ContractViolation):
            PipeFactoryContract().check("not a factory", B)

    def test_socket_factory_attenuation(self):
        from repro.sandbox.privileges import SocketPerms, SockPriv

        full = SocketFactoryCap()
        narrow = SocketFactoryContract(SocketPerms({SockPriv.CREATE, SockPriv.CONNECT}))
        out = narrow.check(full, B)
        assert out.perms.has(SockPriv.CONNECT) and not out.perms.has(SockPriv.BIND)


class TestFunctionContract:
    def _apply(self, fn, args, kwargs):
        return fn(*args, **kwargs)

    def test_happy_path(self):
        ctc = FunctionContract([("x", is_num)], is_num)
        guarded = ctc.check(lambda x: x + 1, B)
        assert guarded.invoke(self._apply, [41], {}) == 42

    def test_bad_argument_blames_consumer(self):
        """Arguments are supplied by the *caller* — the contract's
        negative party."""
        ctc = FunctionContract([("x", is_num)], is_num)
        guarded = ctc.check(lambda x: x, B)
        with pytest.raises(ContractViolation) as exc:
            guarded.invoke(self._apply, ["not-num"], {})
        assert exc.value.blame == "consumer"

    def test_bad_result_blames_provider(self):
        ctc = FunctionContract([("x", is_num)], is_num)
        guarded = ctc.check(lambda x: "oops", B)
        with pytest.raises(ContractViolation) as exc:
            guarded.invoke(self._apply, [1], {})
        assert exc.value.blame == "provider"

    def test_arity_mismatch(self):
        ctc = FunctionContract([("x", is_num), ("y", is_num)], is_num)
        guarded = ctc.check(lambda x, y: x, B)
        with pytest.raises(ContractViolation) as exc:
            guarded.invoke(self._apply, [1], {})
        assert "arity" in exc.value.detail

    def test_non_function_rejected(self):
        with pytest.raises(ContractViolation):
            FunctionContract([], is_num).check(42, B)


class TestWalletContract:
    def test_kind_check(self):
        wallet = Wallet("native")
        assert WalletContract(kind="native").check(wallet, B) is wallet
        with pytest.raises(ContractViolation):
            WalletContract(kind="ocaml").check(wallet, B)

    def test_required_keys(self):
        wallet = Wallet("native")
        ctc = WalletContract(kind="native", required_keys=("PATH",))
        with pytest.raises(ContractViolation) as exc:
            ctc.check(wallet, B)
        assert "PATH" in exc.value.detail
        wallet.put_one("PATH", "x")
        ctc.check(wallet, B)

    def test_key_contract_projection(self, file_cap):
        wallet = Wallet("native")
        wallet.put_one("files", file_cap)
        ctc = WalletContract(
            kind="native", key_contracts={"files": CapContract("file", PrivSet.of(Priv.READ))}
        )
        out = ctc.check(wallet, B)
        (projected,) = out.get("files")
        assert projected.privs.privs() == {Priv.READ}

    def test_non_wallet_rejected(self):
        with pytest.raises(ContractViolation):
            WalletContract().check({"not": "a wallet"}, B)
