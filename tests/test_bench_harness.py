"""Unit tests for the benchmark harness statistics."""

from __future__ import annotations

import pytest

from repro.bench.harness import Sample, format_row, measure, significant_vs_baseline


class TestSample:
    def test_mean(self):
        s = Sample("x", [1.0, 2.0, 3.0])
        assert s.mean == 2.0

    def test_ci_zero_for_single_sample(self):
        assert Sample("x", [1.0]).ci95 == 0.0

    def test_ci_zero_for_constant_samples(self):
        assert Sample("x", [2.0, 2.0, 2.0]).ci95 == pytest.approx(0.0)

    def test_ci_positive_for_varying_samples(self):
        assert Sample("x", [1.0, 2.0, 3.0, 4.0]).ci95 > 0

    def test_ci_widens_with_spread(self):
        tight = Sample("t", [1.0, 1.01, 0.99, 1.0])
        wide = Sample("w", [0.5, 1.5, 0.7, 1.3])
        assert wide.ci95 > tight.ci95

    def test_ratio(self):
        base = Sample("b", [2.0, 2.0])
        other = Sample("o", [4.0, 4.0])
        assert other.ratio_to(base) == 2.0


class TestMeasure:
    def test_collects_requested_runs(self):
        calls = []

        def make_task():
            def task():
                calls.append(1)

            return task

        sample = measure(make_task, runs=4, warmup=2, name="t")
        assert len(sample.seconds) == 4
        assert len(calls) == 6  # warmup runs execute too

    def test_fresh_state_per_run(self):
        built = []

        def make_task():
            built.append(1)
            return lambda: None

        measure(make_task, runs=3, warmup=1)
        assert len(built) == 4


class TestSignificance:
    def test_clearly_different_distributions(self):
        base = Sample("b", [1.0, 1.01, 0.99, 1.0, 1.02, 0.98])
        other = Sample("o", [5.0, 5.01, 4.99, 5.0, 5.02, 4.98])
        assert significant_vs_baseline(base, other)

    def test_identical_samples_not_significant(self):
        base = Sample("b", [1.0, 1.1, 0.9])
        assert not significant_vs_baseline(base, Sample("o", [1.0, 1.1, 0.9]))

    def test_bonferroni_raises_the_bar(self):
        """A borderline difference significant alone can fail after
        correcting for many comparisons."""
        base = Sample("b", [1.00, 1.02, 0.98, 1.01, 0.99, 1.0, 1.01, 0.99])
        other = Sample("o", [1.02, 1.04, 1.00, 1.03, 1.01, 1.02, 1.03, 1.01])
        alone = significant_vs_baseline(base, other, comparisons=1)
        corrected = significant_vs_baseline(base, other, comparisons=1000)
        assert alone >= corrected  # correction can only reduce findings

    def test_too_few_samples(self):
        assert not significant_vs_baseline(Sample("b", [1.0]), Sample("o", [2.0]))


class TestFormatRow:
    def test_contains_all_configs_and_ratio(self):
        cells = {
            "baseline": Sample("baseline", [0.010, 0.011, 0.009]),
            "sandboxed": Sample("sandboxed", [0.020, 0.021, 0.019]),
        }
        row = format_row("Bench", cells)
        assert "Bench" in row and "baseline" in row and "sandboxed" in row
        assert "2.0" in row  # the ratio
