"""The shill-run debugging tool: policy files, debug mode, audit logs."""

from __future__ import annotations

import pytest

from repro.errors import SysError
from repro.kernel.pipes import make_pipe
from repro.sandbox.privileges import Priv
from repro.sandbox.shilld import parse_policy, parse_privspec, run_with_policy
from repro.world import build_world


class TestPolicyParsing:
    def test_simple_grant(self):
        policy = parse_policy("/usr/src : +lookup, +read, +contents\n")
        (path, privs), = policy.grants
        assert path == "/usr/src"
        assert privs.privs() == {Priv.LOOKUP, Priv.READ, Priv.CONTENTS}

    def test_modifier(self):
        privs = parse_privspec("+create-file with {+read, +write}, +lookup")
        assert privs.effective_modifier(Priv.CREATE_FILE) == {Priv.READ, Priv.WRITE}

    def test_full_keyword(self):
        privs = parse_privspec("full")
        assert len(privs) == 24

    def test_comments_and_blanks(self):
        policy = parse_policy("# a comment\n\n/tmp : +lookup # trailing\n")
        assert len(policy.grants) == 1

    def test_pipe_factory(self):
        assert parse_policy("pipe-factory\n").pipe_factory

    def test_socket_factory_spec(self):
        policy = parse_policy("socket-factory : inet stream\n")
        assert policy.socket_perms is not None
        assert policy.socket_perms.allows_conn(2, 1)
        assert not policy.socket_perms.allows_conn(1, 1)

    def test_ulimit(self):
        policy = parse_policy("ulimit open_files 16\n")
        assert policy.ulimits == {"open_files": 16}

    def test_bad_line(self):
        with pytest.raises(ValueError):
            parse_policy("this is not a declaration\n")

    def test_unknown_priv(self):
        with pytest.raises(ValueError):
            parse_privspec("+frobnicate")


class TestRunWithPolicy:
    @pytest.fixture
    def world(self):
        return build_world()

    def _cat_policy(self) -> str:
        return (
            "/ : +lookup with {}\n"
            "/etc : +lookup with {}\n"
            "/lib : +lookup, +read, +stat, +path\n"
            "/libexec : +lookup, +read, +stat, +path\n"
            "/etc/passwd : +read, +stat, +path\n"
            "/etc/locale.conf : +read, +stat, +path\n"
        )

    def test_allowed_command_runs(self, world):
        rend, wend = make_pipe()
        result = run_with_policy(
            world, "root", self._cat_policy(), ["/bin/cat", "/etc/passwd"],
            stdout=wend,
        )
        assert result.status == 0
        assert b"alice" in bytes(rend.pipe.buffer)

    def test_denied_access_logged(self, world):
        result = run_with_policy(
            world, "root", self._cat_policy(), ["/bin/cat", "/etc/resolv.conf"],
        )
        assert result.status == 1
        assert any("resolv.conf" in e.target for e in result.log.denials())

    def test_debug_mode_auto_grants_and_reports(self, world):
        """The paper's workflow: run in debug mode, read off the needed
        privileges."""
        rend, wend = make_pipe()
        result = run_with_policy(
            world, "root", "", ["/bin/cat", "/etc/passwd"], debug=True, stdout=wend,
        )
        assert result.status == 0
        assert b"alice" in bytes(rend.pipe.buffer)
        text = "\n".join(result.auto_granted)
        assert "+read" in text and "+lookup" in text

    def test_ulimit_applies(self, world):
        policy = self._cat_policy() + "ulimit open_files 0\n"
        result = run_with_policy(world, "root", policy, ["/bin/cat", "/etc/passwd"])
        # with no descriptors available, even the loader cannot run.
        assert result.status != 0

    def test_missing_policy_path(self, world):
        with pytest.raises(SysError):
            run_with_policy(world, "root", "/no/such : +read\n", ["/bin/cat", "/x"])

    def test_missing_executable(self, world):
        with pytest.raises(SysError):
            run_with_policy(world, "root", "", ["/bin/nonexistent"])
