"""Unit and property tests for privileges and privilege sets."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sandbox.privileges import (
    ALL_PRIVS,
    ALL_SOCK_PRIVS,
    DERIVING_PRIVS,
    ConnType,
    Priv,
    PrivSet,
    SocketPerms,
    SockPriv,
    priv_from_name,
    sock_priv_from_name,
)


class TestCounts:
    def test_paper_counts(self):
        """Section 3.1.1: 24 filesystem privileges and 7 socket privileges."""
        assert len(ALL_PRIVS) == 24
        assert len(ALL_SOCK_PRIVS) == 7

    def test_deriving_privs_subset(self):
        assert DERIVING_PRIVS < ALL_PRIVS


class TestParsing:
    @pytest.mark.parametrize("name", ["read", "+read", "+create-file", "unlink-dir"])
    def test_roundtrip(self, name):
        priv = priv_from_name(name)
        assert priv_from_name(f"+{priv.value}") is priv

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            priv_from_name("+frobnicate")
        with pytest.raises(ValueError):
            sock_priv_from_name("+frobnicate")


class TestPrivSet:
    def test_of_and_has(self):
        ps = PrivSet.of(Priv.READ, Priv.STAT)
        assert ps.has(Priv.READ) and ps.has(Priv.STAT) and not ps.has(Priv.WRITE)

    def test_full_has_everything(self):
        full = PrivSet.full()
        assert all(full.has(p) for p in Priv)

    def test_modifier_only_on_deriving(self):
        with pytest.raises(ValueError):
            PrivSet({Priv.READ: frozenset({Priv.STAT})})

    def test_with_modifier(self):
        ps = PrivSet.of(Priv.LOOKUP).with_modifier(Priv.LOOKUP, {Priv.STAT, Priv.PATH})
        assert ps.effective_modifier(Priv.LOOKUP) == {Priv.STAT, Priv.PATH}

    def test_inherit_modifier_resolves_to_own_privs(self):
        ps = PrivSet.of(Priv.LOOKUP, Priv.READ)
        assert ps.effective_modifier(Priv.LOOKUP) == {Priv.LOOKUP, Priv.READ}

    def test_derived_set_inherit_is_whole_set(self):
        """'the derived capability has the same privileges as its parent'"""
        ps = PrivSet.of(Priv.LOOKUP, Priv.READ, Priv.CONTENTS)
        assert ps.derived_set(Priv.LOOKUP) == ps

    def test_derived_set_explicit_modifier(self):
        ps = PrivSet.of(Priv.READ).adding(Priv.LOOKUP).with_modifier(
            Priv.LOOKUP, {Priv.STAT, Priv.PATH}
        )
        derived = ps.derived_set(Priv.LOOKUP)
        assert derived.privs() == {Priv.STAT, Priv.PATH}

    def test_subset_of_plain(self):
        small = PrivSet.of(Priv.READ)
        big = PrivSet.of(Priv.READ, Priv.WRITE)
        assert small.subset_of(big)
        assert not big.subset_of(small)

    def test_subset_of_with_modifiers(self):
        narrow = PrivSet.of(Priv.LOOKUP).with_modifier(Priv.LOOKUP, {Priv.STAT})
        wide = PrivSet.of(Priv.LOOKUP).with_modifier(Priv.LOOKUP, {Priv.STAT, Priv.READ})
        assert narrow.subset_of(wide)
        assert not wide.subset_of(narrow)

    def test_restricted_to_intersects(self):
        cap = PrivSet.of(Priv.READ, Priv.WRITE, Priv.STAT)
        contract = PrivSet.of(Priv.READ, Priv.STAT, Priv.PATH)
        assert cap.restricted_to(contract).privs() == {Priv.READ, Priv.STAT}

    def test_restricted_to_narrows_modifiers(self):
        cap = PrivSet.of(Priv.LOOKUP)  # inherit: effective {lookup}
        contract = PrivSet.of(Priv.LOOKUP).with_modifier(Priv.LOOKUP, {Priv.STAT, Priv.LOOKUP})
        restricted = cap.restricted_to(contract)
        assert restricted.effective_modifier(Priv.LOOKUP) == {Priv.LOOKUP}

    def test_removing(self):
        ps = PrivSet.of(Priv.READ, Priv.WRITE).removing(Priv.WRITE)
        assert ps.privs() == {Priv.READ}

    def test_repr_mentions_modifiers(self):
        ps = PrivSet.of(Priv.LOOKUP).with_modifier(Priv.LOOKUP, {Priv.STAT})
        assert "with" in repr(ps) and "+lookup" in repr(ps)


# -- property-based tests ---------------------------------------------------------

privs_st = st.sets(st.sampled_from(list(Priv)), max_size=8)


def _privset(privs: set[Priv]) -> PrivSet:
    return PrivSet.of(*privs)


@given(a=privs_st, b=privs_st)
def test_subset_matches_set_inclusion_for_plain_sets(a, b):
    assert _privset(a).subset_of(_privset(b)) == (a <= b)


@given(a=privs_st)
def test_subset_reflexive(a):
    assert _privset(a).subset_of(_privset(a))


@given(a=privs_st, b=privs_st, c=privs_st)
def test_subset_transitive(a, b, c):
    pa, pb, pc = _privset(a), _privset(b), _privset(c)
    if pa.subset_of(pb) and pb.subset_of(pc):
        assert pa.subset_of(pc)


@given(a=privs_st, b=privs_st)
def test_restriction_attenuates(a, b):
    """Contract restriction never adds privileges (attenuation monotonicity)."""
    cap, contract = _privset(a), _privset(b)
    restricted = cap.restricted_to(contract)
    assert restricted.subset_of(cap)
    assert restricted.subset_of(contract)


@given(a=privs_st)
def test_restriction_idempotent(a):
    ps = _privset(a)
    assert ps.restricted_to(ps) == ps


@given(privs=privs_st, deriving=st.sampled_from(sorted(DERIVING_PRIVS, key=lambda p: p.value)),
       mods=privs_st)
def test_derived_set_bounded_by_modifier(privs, deriving, mods):
    """A derived capability holds exactly the modifier privileges."""
    ps = PrivSet.of(*privs).adding(deriving).with_modifier(deriving, mods)
    assert ps.derived_set(deriving).privs() == frozenset(mods)


class TestSocketPerms:
    def test_full(self):
        assert SocketPerms.full().has(SockPriv.SEND)

    def test_conn_type_refinement(self):
        perms = SocketPerms({SockPriv.CREATE}, (ConnType(domain=2, stype=1),))
        assert perms.allows_conn(2, 1)
        assert not perms.allows_conn(1, 1)
        assert not perms.allows_conn(2, 2)

    def test_wildcard_conn(self):
        perms = SocketPerms({SockPriv.CREATE})
        assert perms.allows_conn(2, 1) and perms.allows_conn(1, 2)

    def test_subset_of(self):
        narrow = SocketPerms({SockPriv.CONNECT}, (ConnType(2, 1),))
        wide = SocketPerms({SockPriv.CONNECT, SockPriv.SEND}, (ConnType(None, None),))
        assert narrow.subset_of(wide)
        assert not wide.subset_of(narrow)
