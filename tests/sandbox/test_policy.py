"""SHILL MAC policy tests: every hook class, privilege propagation,
the Figure 8 worked example, and Figure 7's denied resources."""

from __future__ import annotations

import pytest

from repro.errors import SysError
from repro.kernel import O_CREAT, O_RDONLY, O_WRONLY, errno_
from repro.kernel.sockets import AddressFamily, SocketType
from repro.sandbox.privileges import ConnType, Priv, PrivSet, SocketPerms, SockPriv

RO = PrivSet.of(Priv.READ, Priv.STAT, Priv.PATH)
RO_DIR = PrivSet.of(Priv.READ_SYMLINK, Priv.CONTENTS, Priv.LOOKUP, Priv.STAT, Priv.READ, Priv.PATH)


def expect_eacces(fn, *args, **kwargs):
    with pytest.raises(SysError) as exc:
        fn(*args, **kwargs)
    assert exc.value.errno == errno_.EACCES
    return exc.value


class TestBasicEnforcement:
    def test_ungranted_file_unreadable(self, sandbox):
        sb = sandbox().enter()
        expect_eacces(sb.sys.open, "/home/alice/dog.jpg", O_RDONLY)

    def test_granted_file_readable(self, sandbox):
        sb = sandbox()
        # Need lookup privileges along the path, like the real sandbox.
        sb.grant_path("/", PrivSet.of(Priv.LOOKUP))
        sb.grant_path("/home", PrivSet.of(Priv.LOOKUP))
        sb.grant_path("/home/alice", PrivSet.of(Priv.LOOKUP))
        sb.grant_path("/home/alice/dog.jpg", RO)
        sb.enter()
        assert sb.sys.read_whole("/home/alice/dog.jpg") == b"JPEGDATA-DOG"

    def test_read_priv_does_not_allow_write(self, sandbox):
        sb = sandbox()
        sb.grant_path("/home/alice", PrivSet.of(Priv.LOOKUP))
        sb.grant_path("/home/alice/dog.jpg", RO)
        sb.enter()
        sb.proc.cwd = sb.kernel.vfs.lookup(sb.kernel.vfs.lookup(sb.kernel.vfs.root, "home"), "alice")
        expect_eacces(sb.sys.open, "dog.jpg", O_WRONLY)

    def test_write_requires_both_write_and_append(self, sandbox):
        """Single MAC write entry point (section 3.2.3): +write alone and
        +append alone are both insufficient."""
        for privs in (PrivSet.of(Priv.WRITE), PrivSet.of(Priv.APPEND)):
            sb = sandbox()
            sb.grant_path("/home/alice", PrivSet.of(Priv.LOOKUP))
            sb.grant_path("/home/alice/dog.jpg", privs)
            sb.enter()
            expect_eacces(sb.sys.open, "/home/alice/dog.jpg", O_WRONLY)

    def test_write_with_both_privs_succeeds(self, sandbox):
        sb = sandbox()
        sb.grant_chain("/home/alice/dog.jpg")
        sb.grant_path("/home/alice", PrivSet.of(Priv.LOOKUP))
        sb.grant_path("/home/alice/dog.jpg", PrivSet.of(Priv.WRITE, Priv.APPEND))
        sb.enter()
        fd = sb.sys.open("/home/alice/dog.jpg", O_WRONLY)
        assert sb.sys.write(fd, b"X") == 1

    def test_dac_still_applies_inside_sandbox(self, sandbox):
        """MAC is enforced *in addition to* DAC: granting bob's sandbox a
        capability for alice's private file does not defeat mode bits."""
        sb = sandbox(user="bob", cwd="/home/bob")
        sb.grant_path("/home/alice", PrivSet.of(Priv.LOOKUP))
        sb.grant_path("/home/alice/notes.txt", PrivSet.full())
        sb.enter()
        expect_eacces(sb.sys.open, "/home/alice/notes.txt", O_RDONLY)

    def test_denied_syscall_leaves_process_running(self, sandbox):
        """'the system call aborts with an error but the process is
        otherwise allowed to continue' (section 3.2.2)."""
        sb = sandbox()
        sb.grant_chain("/home/alice/x")
        sb.grant_path("/home/alice", PrivSet.of(Priv.LOOKUP, Priv.CONTENTS))
        sb.enter()
        expect_eacces(sb.sys.open, "/home/alice/dog.jpg", O_RDONLY)
        # Still alive and able to use remaining privileges:
        assert "dog.jpg" in sb.sys.contents("/home/alice")


class TestStatContentsExec:
    def test_stat_requires_stat(self, sandbox):
        sb = sandbox()
        sb.grant_path("/home/alice", PrivSet.of(Priv.LOOKUP))
        sb.grant_path("/home/alice/dog.jpg", PrivSet.of(Priv.READ))
        sb.enter()
        expect_eacces(sb.sys.stat, "/home/alice/dog.jpg")

    def test_contents_requires_contents(self, sandbox):
        sb = sandbox()
        sb.grant_path("/home/alice", PrivSet.of(Priv.LOOKUP))
        sb.enter()
        expect_eacces(sb.sys.contents, "/home/alice")

    def test_contents_granted(self, sandbox):
        sb = sandbox()
        sb.grant_chain("/home/alice/x")
        sb.grant_path("/home/alice", PrivSet.of(Priv.LOOKUP, Priv.CONTENTS))
        sb.enter()
        assert "notes.txt" in sb.sys.contents("/home/alice")


class TestLookupPropagation:
    def test_lookup_propagates_modifier_privs(self, sandbox):
        """+lookup with {+stat,+path}: children looked up get exactly those."""
        sb = sandbox()
        privs = PrivSet.of(Priv.LOOKUP).with_modifier(Priv.LOOKUP, {Priv.STAT, Priv.PATH})
        sb.grant_chain("/home/alice")
        sb.grant_path("/home/alice", privs)
        sb.enter()
        st = sb.sys.stat("/home/alice/dog.jpg")  # lookup then stat: allowed
        assert st.size == 12
        expect_eacces(sb.sys.open, "/home/alice/dog.jpg", O_RDONLY)  # but not read

    def test_lookup_inherit_propagates_whole_set(self, sandbox):
        sb = sandbox()
        sb.grant_chain("/home/alice")
        sb.grant_path("/home/alice", PrivSet.of(Priv.LOOKUP, Priv.READ, Priv.STAT))
        sb.enter()
        assert sb.sys.read_whole("/home/alice/dog.jpg") == b"JPEGDATA-DOG"

    def test_figure8_left_panel(self, sandbox, kernel):
        """Session has privileges on /home/alice and cwd /home/bob, but NOT
        /home: open("../alice/dog.jpg") fails with EACCES."""
        sb = sandbox(user="bob", cwd="/home/bob")
        sb.grant_path("/home/alice", PrivSet.of(Priv.LOOKUP).with_modifier(
            Priv.LOOKUP, {Priv.READ}))
        sb.grant_path("/home/bob", PrivSet.of(Priv.LOOKUP))
        sb.enter()
        err = expect_eacces(sb.sys.open, "../alice/dog.jpg", O_RDONLY)
        assert err.errno == errno_.EACCES

    def test_figure8_right_panel(self, sandbox):
        """Adding +lookup on /home makes the same open succeed, and the
        +read from /home/alice's lookup modifier propagates to dog.jpg."""
        sb = sandbox(user="bob", cwd="/home/bob")
        sb.grant_path("/home/alice", PrivSet.of(Priv.LOOKUP).with_modifier(
            Priv.LOOKUP, {Priv.READ}))
        sb.grant_path("/home/bob", PrivSet.of(Priv.LOOKUP))
        sb.grant_path("/home", PrivSet.of(Priv.LOOKUP))
        sb.enter()
        fd = sb.sys.open("../alice/dog.jpg", O_RDONLY)
        assert sb.sys.read(fd, 4) == b"JPEG"

    def test_dotdot_lookup_allowed_but_never_propagates(self, sandbox, kernel):
        """'..'' lookups succeed with +lookup but mint no privileges on the
        parent (fine-grained confinement, section 3.2.2)."""
        from repro.sandbox.privmap import privmap_of

        sb = sandbox(user="bob", cwd="/home/bob")
        sb.grant_path("/home/bob", PrivSet.of(Priv.LOOKUP, Priv.READ, Priv.STAT, Priv.CONTENTS))
        sb.enter()
        # ".." resolves (no error from lookup itself)...
        home = kernel.vfs.lookup(kernel.vfs.root, "home")
        # ...but /home gained no privileges for this session:
        expect_eacces(sb.sys.contents, "..")
        pm = privmap_of(home)
        assert pm is None or not pm.privs_for(sb.session.sid).has(Priv.LOOKUP)

    def test_dot_lookup_does_not_amplify(self, sandbox, kernel):
        """openat(d, ".") must not grant the modifier privileges to d itself."""
        from repro.sandbox.privmap import privmap_of

        sb = sandbox()
        privs = PrivSet.of(Priv.LOOKUP).with_modifier(Priv.LOOKUP, {Priv.STAT})
        sb.grant_path("/home/alice", privs)
        sb.enter()
        alice = kernel.vfs.lookup(kernel.vfs.lookup(kernel.vfs.root, "home"), "alice")
        # Lookup "." is permitted...
        sb.sys.kernel.vfs.lookup(alice, ".")
        expect_eacces(sb.sys.stat, "/home/alice/.")
        pm = privmap_of(alice)
        assert not pm.privs_for(sb.session.sid).has(Priv.STAT)


class TestCreateAndUnlink:
    def test_create_file_requires_priv(self, sandbox):
        sb = sandbox()
        sb.grant_chain("/tmp/x")
        sb.grant_path("/tmp", PrivSet.of(Priv.LOOKUP))
        sb.enter()
        expect_eacces(sb.sys.open, "/tmp/new", O_WRONLY | O_CREAT)

    def test_create_file_with_modifier_controls_new_file_privs(self, sandbox):
        """The grading-script pattern: '+create-file with {...append-only...}'
        — created files usable per modifier, and deletable only if the
        modifier says so."""
        sb = sandbox()
        privs = PrivSet.of(Priv.LOOKUP).adding(Priv.CREATE_FILE).with_modifier(
            Priv.CREATE_FILE, {Priv.WRITE, Priv.APPEND, Priv.STAT, Priv.PATH}
        )
        sb.grant_chain("/tmp/x")
        sb.grant_path("/tmp", privs)
        sb.enter()
        fd = sb.sys.open("/tmp/out", O_WRONLY | O_CREAT)
        sb.sys.write(fd, b"data")
        sb.sys.close(fd)
        # Write to own file OK; reading it back is NOT in the modifier:
        expect_eacces(sb.sys.open, "/tmp/out", O_RDONLY)
        # Nor deleting it:
        expect_eacces(sb.sys.unlink, "/tmp/out")

    def test_delete_only_files_created_with_capability(self, sandbox, alice_sys):
        """Files that existed before the sandbox cannot be unlinked, files
        the sandbox created (with +unlink-file in the modifier) can."""
        alice_sys.write_whole("/tmp/preexisting", b"x")
        sb = sandbox()
        privs = PrivSet.of(Priv.LOOKUP).adding(Priv.CREATE_FILE).with_modifier(
            Priv.CREATE_FILE,
            {Priv.READ, Priv.WRITE, Priv.APPEND, Priv.UNLINK_FILE, Priv.STAT, Priv.PATH},
        )
        sb.grant_chain("/tmp/x")
        sb.grant_path("/tmp", privs)
        sb.enter()
        fd = sb.sys.open("/tmp/mine", O_WRONLY | O_CREAT)
        sb.sys.close(fd)
        expect_eacces(sb.sys.unlink, "/tmp/preexisting")
        sb.sys.unlink("/tmp/mine")  # allowed: created with the capability

    def test_mkdir_requires_create_dir(self, sandbox):
        sb = sandbox()
        sb.grant_chain("/tmp/x")
        sb.grant_path("/tmp", PrivSet.of(Priv.LOOKUP, Priv.CREATE_FILE))
        sb.enter()
        expect_eacces(sb.sys.mkdir, "/tmp/sub")

    def test_mkdir_with_full_modifier(self, sandbox):
        """The grade contract's 'dir(+create-dir with full privileges)'."""
        from repro.sandbox.privileges import ALL_PRIVS

        sb = sandbox()
        privs = PrivSet.of(Priv.LOOKUP).adding(Priv.CREATE_DIR).with_modifier(
            Priv.CREATE_DIR, ALL_PRIVS
        )
        sb.grant_chain("/tmp/x")
        sb.grant_path("/tmp", privs)
        sb.enter()
        sb.sys.mkdir("/tmp/work")
        # Full privileges inside the new directory:
        fd = sb.sys.open("/tmp/work/scratch", O_WRONLY | O_CREAT)
        sb.sys.write(fd, b"ok")
        sb.sys.close(fd)
        assert sb.sys.read_whole("/tmp/work/scratch") == b"ok"
        sb.sys.unlink("/tmp/work/scratch")

    def test_rename_requires_rename_and_create(self, sandbox, alice_sys):
        alice_sys.write_whole("/tmp/a", b"x")
        sb = sandbox()
        sb.grant_chain("/tmp/x")
        sb.grant_path("/tmp", PrivSet.of(Priv.LOOKUP, Priv.CREATE_FILE))
        sb.grant_path("/tmp/a", PrivSet.of(Priv.READ))
        sb.enter()
        expect_eacces(sb.sys.rename, "/tmp/a", "/tmp/b")

    def test_rename_with_privs(self, sandbox, alice_sys):
        alice_sys.write_whole("/tmp/a", b"x")
        sb = sandbox()
        sb.grant_chain("/tmp/x")
        sb.grant_path("/tmp", PrivSet.of(Priv.LOOKUP, Priv.CREATE_FILE))
        sb.grant_path("/tmp/a", PrivSet.of(Priv.RENAME))
        sb.enter()
        sb.sys.rename("/tmp/a", "/tmp/b")


class TestPipesAndSockets:
    def test_pipe_requires_factory(self, sandbox):
        sb = sandbox().enter()
        expect_eacces(sb.sys.pipe)

    def test_pipe_factory_grants_creation_and_use(self, sandbox):
        sb = sandbox().grant_pipe_factory().enter()
        rfd, wfd = sb.sys.pipe()
        sb.sys.write(wfd, b"hi")
        assert sb.sys.read(rfd, 10) == b"hi"

    def test_granted_pipe_end_respects_privs(self, sandbox, kernel):
        """A stdout pipe granted write-only cannot be read back."""
        from repro.kernel.fdesc import OpenFile
        from repro.kernel.pipes import make_pipe
        from repro.kernel.syscalls import O_RDONLY as RD, O_WRONLY as WR

        rend, wend = make_pipe()
        sb = sandbox()
        sb.grant_obj(rend.pipe, PrivSet.of(Priv.WRITE, Priv.APPEND))
        sb.proc.fdtable.install(1, OpenFile(wend, WR))
        sb.proc.fdtable.install(5, OpenFile(rend, RD))
        sb.enter()
        sb.sys.write(1, b"out")
        expect_eacces(sb.sys.read, 5, 10)

    def test_socket_requires_factory(self, sandbox):
        sb = sandbox().enter()
        expect_eacces(sb.sys.socket, AddressFamily.AF_INET, SocketType.SOCK_STREAM)

    def test_socket_factory_with_conn_type(self, sandbox):
        perms = SocketPerms(
            {SockPriv.CREATE, SockPriv.CONNECT, SockPriv.SEND, SockPriv.RECEIVE},
            (ConnType(int(AddressFamily.AF_INET), int(SocketType.SOCK_STREAM)),),
        )
        sb = sandbox().grant_socket_factory(perms).enter()
        sb.sys.socket(AddressFamily.AF_INET, SocketType.SOCK_STREAM)
        expect_eacces(sb.sys.socket, AddressFamily.AF_INET, SocketType.SOCK_DGRAM)
        expect_eacces(sb.sys.socket, AddressFamily.AF_UNIX, SocketType.SOCK_STREAM)

    def test_socket_priv_refinement(self, sandbox):
        """A factory with send-only privileges cannot bind/listen."""
        perms = SocketPerms({SockPriv.CREATE, SockPriv.CONNECT, SockPriv.SEND})
        sb = sandbox().grant_socket_factory(perms).enter()
        fd = sb.sys.socket(AddressFamily.AF_INET, SocketType.SOCK_STREAM)
        expect_eacces(sb.sys.bind, fd, ("0.0.0.0", 80))

    def test_other_socket_families_denied_even_with_factory(self, sandbox):
        """Figure 7: 'Sockets (other): Denied'."""
        sb = sandbox().grant_socket_factory().enter()
        expect_eacces(sb.sys.socket, AddressFamily.AF_NETGRAPH, SocketType.SOCK_STREAM)


class TestFigure7DeniedResources:
    def test_sysctl_read_only(self, sandbox):
        sb = sandbox().enter()
        assert sb.sys.sysctl_get("kern.ostype") == "FreeBSD"
        expect_eacces(sb.sys.sysctl_set, "kern.hostname", "pwned")

    def test_kenv_denied(self, sandbox):
        sb = sandbox().enter()
        expect_eacces(sb.sys.kenv_get, "kernelname")
        expect_eacces(sb.sys.kenv_set, "x", "y")

    def test_kld_unload_denied(self, sandbox):
        """'no sandboxed executable has a capability to unload kernel
        modules, including the module that enforces the MAC policy.'"""
        sb = sandbox(user="root", cwd="/").enter()
        expect_eacces(sb.sys.kldunload, "shill")
        # The policy is still registered afterwards:
        assert sb.kernel.shill_installed

    def test_posix_ipc_denied(self, sandbox):
        sb = sandbox().enter()
        expect_eacces(sb.sys.shm_open, "/seg")

    def test_sysv_ipc_denied(self, sandbox):
        sb = sandbox().enter()
        expect_eacces(sb.sys.msgget, 1)


class TestProcessInteraction:
    def test_signal_within_session_allowed(self, sandbox, kernel):
        sb = sandbox().enter()
        child = kernel.procs.fork(sb.proc)  # same session by default
        sb.sys.kill(child.pid, 15)
        assert 15 in child.pending_signals

    def test_signal_outside_session_denied(self, sandbox, kernel):
        outsider = kernel.spawn_process("alice", "/home/alice")
        sb = sandbox().enter()
        expect_eacces(sb.sys.kill, outsider.pid, 15)

    def test_wait_outside_session_denied(self, sandbox, kernel):
        sb = sandbox().enter()
        outsider = kernel.spawn_process("alice", "/home/alice")
        outsider.ppid = sb.proc.pid  # even as a nominal child
        expect_eacces(sb.sys.wait, outsider.pid)

    def test_debug_outside_session_denied(self, sandbox, kernel):
        outsider = kernel.spawn_process("alice", "/home/alice")
        sb = sandbox().enter()
        expect_eacces(sb.sys.ptrace_attach, outsider.pid)

    def test_descendant_session_reachable(self, sandbox, kernel):
        """Interaction with *descendant* sessions is allowed."""
        sb = sandbox().enter()
        child = kernel.procs.fork(sb.proc)
        sb.policy.sessions.shill_init(child)
        kernel.syscalls(child).shill_enter()
        sb.sys.kill(child.pid, 15)
        assert 15 in child.pending_signals

    def test_parent_session_not_signalable_from_child(self, sandbox, kernel):
        sb = sandbox().enter()
        child = kernel.procs.fork(sb.proc)
        sb.policy.sessions.shill_init(child)
        kernel.syscalls(child).shill_enter()
        child_sys = kernel.syscalls(child)
        expect_eacces(child_sys.kill, sb.proc.pid, 15)


class TestSessionHierarchy:
    def test_child_session_grant_bounded_by_parent(self, sandbox, kernel):
        """'a new session S2, which has fewer capabilities than S1'."""
        from repro.errors import SandboxError

        sb = sandbox()
        sb.grant_path("/home/alice", PrivSet.of(Priv.LOOKUP, Priv.CONTENTS))
        sb.enter()
        child = kernel.procs.fork(sb.proc)
        sub = sb.policy.sessions.shill_init(child)
        alice_dir = kernel.vfs.lookup(kernel.vfs.lookup(kernel.vfs.root, "home"), "alice")
        # Subset grant fine:
        sb.policy.sessions.grant(sub, alice_dir, PrivSet.of(Priv.LOOKUP))
        # Exceeding grant refused:
        with pytest.raises(SandboxError):
            sb.policy.sessions.grant(sub, alice_dir, PrivSet.of(Priv.READ))

    def test_grant_after_enter_refused(self, sandbox, kernel):
        from repro.errors import SandboxError

        sb = sandbox().enter()
        alice_dir = kernel.vfs.lookup(kernel.vfs.lookup(kernel.vfs.root, "home"), "alice")
        with pytest.raises(SandboxError):
            sb.policy.sessions.grant(sb.session, alice_dir, PrivSet.of(Priv.READ))

    def test_double_enter_refused(self, sandbox):
        from repro.errors import SandboxError

        sb = sandbox().enter()
        with pytest.raises(SandboxError):
            sb.sys.shill_enter()

    def test_session_cleanup_drops_privmaps(self, sandbox, kernel):
        from repro.sandbox.privmap import privmap_of

        sb = sandbox()
        sb.grant_path("/home/alice/dog.jpg", PrivSet.of(Priv.READ))
        sb.enter()
        sid = sb.session.sid
        dog = kernel.vfs.lookup(
            kernel.vfs.lookup(kernel.vfs.lookup(kernel.vfs.root, "home"), "alice"), "dog.jpg"
        )
        assert privmap_of(dog).privs_for(sid).has(Priv.READ)
        kernel.procs.reap(sb.proc)
        # The grant is gone — and with no other sessions holding one,
        # teardown clears the label slot back to the unlabelled state.
        pm = privmap_of(dog)
        assert pm is None or not pm.privs_for(sid).has(Priv.READ)
        assert sb.session.dead


class TestDebugMode:
    def test_debug_auto_grants_and_logs(self, sandbox):
        """Debug sandboxes auto-grant missing privileges and record them —
        'a useful starting point for identifying necessary capabilities'."""
        sb = sandbox(debug=True).enter()
        data = sb.sys.read_whole("/home/alice/dog.jpg")
        assert data == b"JPEGDATA-DOG"
        grants = sb.session.log.auto_grants()
        assert grants, "expected auto-grant entries"
        text = "\n".join(e.format() for e in grants)
        assert "+lookup" in text and "+read" in text

    def test_normal_mode_logs_denials(self, sandbox):
        sb = sandbox().enter()
        expect_eacces(sb.sys.open, "/home/alice/dog.jpg", O_RDONLY)
        assert sb.session.log.denials()
