"""Coverage for the remaining MAC hooks: symlinks, links, renames,
metadata, chdir, readdir-by-fd — each checked denied-then-granted."""

from __future__ import annotations

import pytest

from repro.errors import SysError
from repro.kernel import O_RDONLY, errno_
from repro.sandbox.privileges import Priv, PrivSet


def expect_eacces(fn, *args):
    with pytest.raises(SysError) as exc:
        fn(*args)
    assert exc.value.errno == errno_.EACCES


@pytest.fixture
def tree(kernel, alice_sys):
    alice_sys.mkdir("/tmp/w")
    alice_sys.write_whole("/tmp/w/file.txt", b"data")
    alice_sys.symlink("/tmp/w/file.txt", "/tmp/w/link")
    alice_sys.mkdir("/tmp/w/sub")
    return "/tmp/w"


class TestSymlinkHooks:
    def test_readlink_requires_read_symlink(self, sandbox, tree):
        sb = sandbox()
        sb.grant_chain(f"{tree}/x")
        sb.grant_path(tree, PrivSet.of(Priv.LOOKUP))
        sb.enter()
        expect_eacces(sb.sys.readlink, f"{tree}/link")

    def test_readlink_granted(self, sandbox, tree, kernel):
        sb = sandbox()
        sb.grant_chain(f"{tree}/x")
        sb.grant_path(tree, PrivSet.of(Priv.LOOKUP))
        sb.grant_path(f"{tree}/link", PrivSet.of(Priv.READ_SYMLINK))
        sb.enter()
        assert sb.sys.readlink(f"{tree}/link") == "/tmp/w/file.txt"

    def test_following_symlink_requires_read_symlink_on_link(self, sandbox, tree):
        """Resolution *through* a symlink invokes the readlink hook."""
        sb = sandbox(user="alice", cwd="/home/alice")
        sb.grant_chain(f"{tree}/x")
        sb.grant_path(tree, PrivSet.of(Priv.LOOKUP))
        sb.grant_path(f"{tree}/file.txt", PrivSet.of(Priv.READ))
        sb.enter()
        expect_eacces(sb.sys.open, f"{tree}/link", O_RDONLY)

    def test_create_symlink_requires_priv(self, sandbox, tree):
        sb = sandbox()
        sb.grant_chain(f"{tree}/x")
        sb.grant_path(tree, PrivSet.of(Priv.LOOKUP, Priv.CREATE_FILE))
        sb.enter()
        expect_eacces(sb.sys.symlink, "/anywhere", f"{tree}/newlink")

    def test_create_symlink_granted(self, sandbox, tree):
        sb = sandbox()
        sb.grant_chain(f"{tree}/x")
        sb.grant_path(tree, PrivSet.of(Priv.LOOKUP, Priv.CREATE_SYMLINK))
        sb.enter()
        sb.sys.symlink("/anywhere", f"{tree}/newlink")


class TestLinkAndFdSyscalls:
    def test_flinkat_requires_link_and_create(self, sandbox, tree):
        sb = sandbox()
        sb.grant_chain(f"{tree}/x")
        sb.grant_path(tree, PrivSet.of(Priv.LOOKUP, Priv.CREATE_FILE, Priv.READ))
        sb.grant_path(f"{tree}/file.txt", PrivSet.of(Priv.READ, Priv.STAT))
        sb.enter()
        ffd = sb.sys.open(f"{tree}/file.txt", O_RDONLY)
        dfd = sb.sys.open(tree, O_RDONLY)
        expect_eacces(sb.sys.flinkat, ffd, dfd, "alias")

    def test_flinkat_granted(self, sandbox, tree):
        sb = sandbox()
        sb.grant_chain(f"{tree}/x")
        sb.grant_path(tree, PrivSet.of(Priv.LOOKUP, Priv.CREATE_FILE, Priv.READ))
        sb.grant_path(f"{tree}/file.txt", PrivSet.of(Priv.READ, Priv.LINK, Priv.STAT))
        sb.enter()
        ffd = sb.sys.open(f"{tree}/file.txt", O_RDONLY)
        dfd = sb.sys.open(tree, O_RDONLY)
        sb.sys.flinkat(ffd, dfd, "alias")
        assert sb.sys.read_whole(f"{tree}/alias") == b"data"

    def test_getdents_requires_contents(self, sandbox, tree):
        sb = sandbox()
        sb.grant_chain(f"{tree}/x")
        sb.grant_path(tree, PrivSet.of(Priv.LOOKUP, Priv.READ))
        sb.enter()
        fd = sb.sys.open(tree, O_RDONLY)
        expect_eacces(sb.sys.getdents, fd)

    def test_funlinkat_requires_unlink_on_target(self, sandbox, tree):
        sb = sandbox()
        sb.grant_chain(f"{tree}/x")
        sb.grant_path(tree, PrivSet.of(Priv.LOOKUP, Priv.READ))
        sb.grant_path(f"{tree}/file.txt", PrivSet.of(Priv.READ))
        sb.enter()
        ffd = sb.sys.open(f"{tree}/file.txt", O_RDONLY)
        dfd = sb.sys.open(tree, O_RDONLY)
        expect_eacces(sb.sys.funlinkat, dfd, "file.txt", ffd)


class TestMetadataHooks:
    @pytest.mark.parametrize(
        "op,priv",
        [
            ("chmod", Priv.CHMOD),
            ("utimes", Priv.UTIMES),
        ],
    )
    def test_metadata_ops(self, sandbox, tree, op, priv):
        target = f"{tree}/file.txt"
        sb = sandbox()
        sb.grant_chain(f"{tree}/x")
        sb.grant_path(tree, PrivSet.of(Priv.LOOKUP))
        sb.grant_path(target, PrivSet.of(Priv.READ))
        sb.enter()
        if op == "chmod":
            expect_eacces(sb.sys.chmod, target, 0o600)
        else:
            expect_eacces(sb.sys.utimes, target, 42)

        sb2 = sandbox()
        sb2.grant_chain(f"{tree}/x")
        sb2.grant_path(tree, PrivSet.of(Priv.LOOKUP))
        sb2.grant_path(target, PrivSet.of(priv))
        sb2.enter()
        if op == "chmod":
            sb2.sys.chmod(target, 0o600)
        else:
            sb2.sys.utimes(target, 42)

    def test_truncate_requires_priv(self, sandbox, tree):
        target = f"{tree}/file.txt"
        sb = sandbox()
        sb.grant_chain(f"{tree}/x")
        sb.grant_path(tree, PrivSet.of(Priv.LOOKUP))
        sb.grant_path(target, PrivSet.of(Priv.READ, Priv.WRITE, Priv.APPEND))
        sb.enter()
        from repro.kernel import O_WRONLY

        fd = sb.sys.open(target, O_WRONLY)
        expect_eacces(sb.sys.ftruncate, fd, 0)

    def test_chdir_requires_priv(self, sandbox, tree):
        sb = sandbox()
        sb.grant_chain(f"{tree}/x")
        sb.grant_path(tree, PrivSet.of(Priv.LOOKUP))
        sb.enter()
        expect_eacces(sb.sys.chdir, tree)

        sb2 = sandbox()
        sb2.grant_chain(f"{tree}/x")
        sb2.grant_path(tree, PrivSet.of(Priv.LOOKUP, Priv.CHDIR))
        sb2.enter()
        sb2.sys.chdir(tree)
        assert sb2.sys.getcwd() == tree


class TestRenameDirTarget:
    def test_rename_dir_needs_create_dir_on_target(self, sandbox, tree, alice_sys):
        sb = sandbox()
        sb.grant_chain(f"{tree}/x")
        sb.grant_path(tree, PrivSet.of(Priv.LOOKUP, Priv.CREATE_FILE))
        sb.grant_path(f"{tree}/sub", PrivSet.of(Priv.RENAME))
        sb.enter()
        # target dir grant has +create-file but renaming a DIRECTORY
        # needs +create-dir at the destination:
        expect_eacces(sb.sys.rename, f"{tree}/sub", f"{tree}/sub2")

        sb2 = sandbox()
        sb2.grant_chain(f"{tree}/x")
        sb2.grant_path(tree, PrivSet.of(Priv.LOOKUP, Priv.CREATE_DIR))
        sb2.grant_path(f"{tree}/sub", PrivSet.of(Priv.RENAME))
        sb2.enter()
        sb2.sys.rename(f"{tree}/sub", f"{tree}/sub2")
