"""Privilege-map tests: grants, propagation merges, no-amplification."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.kernel.pipes import Pipe
from repro.sandbox.privileges import Priv, PrivSet
from repro.sandbox.privmap import PrivMap, ensure_privmap, privmap_of


class TestBasics:
    def test_empty_for_unknown_session(self):
        pm = PrivMap()
        assert pm.privs_for(7) == PrivSet.empty()

    def test_set_and_get(self):
        pm = PrivMap()
        pm.set_initial(1, PrivSet.of(Priv.READ))
        assert pm.privs_for(1).has(Priv.READ)
        assert not pm.privs_for(2).has(Priv.READ)

    def test_drop_session(self):
        pm = PrivMap()
        pm.set_initial(1, PrivSet.of(Priv.READ))
        pm.drop_session(1)
        assert pm.privs_for(1) == PrivSet.empty()

    def test_label_helpers(self):
        pipe = Pipe()
        assert privmap_of(pipe) is None
        pm = ensure_privmap(pipe)
        assert privmap_of(pipe) is pm
        assert ensure_privmap(pipe) is pm


class TestMerge:
    def test_plain_privileges_union(self):
        pm = PrivMap()
        pm.merge(1, PrivSet.of(Priv.READ))
        pm.merge(1, PrivSet.of(Priv.STAT))
        assert pm.privs_for(1).privs() == {Priv.READ, Priv.STAT}

    def test_identical_modifier_is_noop(self):
        pm = PrivMap()
        ps = PrivSet.of(Priv.LOOKUP).with_modifier(Priv.LOOKUP, {Priv.STAT})
        assert pm.merge(1, ps) == []
        assert pm.merge(1, ps) == []
        assert pm.privs_for(1).effective_modifier(Priv.LOOKUP) == {Priv.STAT}

    def test_conflicting_modifiers_not_merged(self):
        """The paper's create-file example: +create-file with {+read,...}
        already present; an incoming +create-file with {+write} must NOT
        merge into {+write,+read,...}."""
        pm = PrivMap()
        readonly = PrivSet.of(Priv.CREATE_FILE).with_modifier(
            Priv.CREATE_FILE, {Priv.READ, Priv.STAT, Priv.PATH}
        )
        writable = PrivSet.of(Priv.CREATE_FILE).with_modifier(Priv.CREATE_FILE, {Priv.WRITE})
        pm.merge(1, readonly)
        conflicts = pm.merge(1, writable)
        assert len(conflicts) == 1
        kept = pm.privs_for(1).effective_modifier(Priv.CREATE_FILE)
        assert kept == {Priv.READ, Priv.STAT, Priv.PATH}  # first grant wins

    def test_conflict_records_both_sides(self):
        pm = PrivMap()
        pm.merge(1, PrivSet.of(Priv.LOOKUP).with_modifier(Priv.LOOKUP, {Priv.READ}))
        (conflict,) = pm.merge(1, PrivSet.of(Priv.LOOKUP).with_modifier(Priv.LOOKUP, {Priv.WRITE}))
        assert conflict.priv is Priv.LOOKUP
        assert conflict.existing == {Priv.READ}
        assert conflict.incoming == {Priv.WRITE}

    def test_sessions_are_independent(self):
        pm = PrivMap()
        pm.merge(1, PrivSet.of(Priv.READ))
        pm.merge(2, PrivSet.of(Priv.WRITE))
        assert pm.privs_for(1).privs() == {Priv.READ}
        assert pm.privs_for(2).privs() == {Priv.WRITE}


privs_st = st.sets(st.sampled_from(list(Priv)), max_size=6)


@given(first=privs_st, second=privs_st)
def test_merge_never_loses_plain_privileges(first, second):
    pm = PrivMap()
    pm.merge(1, PrivSet.of(*first))
    pm.merge(1, PrivSet.of(*second))
    assert pm.privs_for(1).privs() == frozenset(first | second)


@given(
    mods_a=privs_st,
    mods_b=privs_st,
)
def test_merge_no_amplification_property(mods_a, mods_b):
    """After any merge sequence, the effective modifier of a deriving
    privilege equals one of the granted modifiers — never their union
    (unless one was already a superset)."""
    pm = PrivMap()
    pm.merge(1, PrivSet.of(Priv.LOOKUP).with_modifier(Priv.LOOKUP, mods_a))
    pm.merge(1, PrivSet.of(Priv.LOOKUP).with_modifier(Priv.LOOKUP, mods_b))
    effective = pm.privs_for(1).effective_modifier(Priv.LOOKUP)
    assert effective == frozenset(mods_a)  # first grant always wins
