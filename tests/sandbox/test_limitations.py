"""Section 3.2.3's documented limitations, reproduced deliberately."""

from __future__ import annotations

import pytest

from repro.errors import SysError
from repro.kernel import O_RDONLY, O_WRONLY, errno_
from repro.kernel.devices import TtyDevice
from repro.kernel.fdesc import OpenFile
from repro.kernel.vfs import Vnode, VType
from repro.sandbox.privileges import Priv, PrivSet


class TestCharDeviceBypass:
    """"The MAC framework does not interpose on read or write operations
    on character devices.  Thus ... sandboxed processes can bypass these
    restrictions if one of these capabilities abstracts a pseudo-terminal
    or other device."
    """

    def _tty_fd(self, sandbox, writable=True):
        tty = Vnode(VType.VCHR, 0o666, 0, 0)
        tty.device = TtyDevice(input_data=b"secret input")
        sb = sandbox().enter()
        flags = O_WRONLY if writable else O_RDONLY
        sb.proc.fdtable.install(9, OpenFile(tty, flags))
        return sb, tty

    def test_sandboxed_write_to_chardev_not_interposed(self, sandbox):
        sb, tty = self._tty_fd(sandbox)
        # No privileges at all were granted, yet the write goes through:
        assert sb.sys.write(9, b"leaked") == 6
        assert tty.device.text == "leaked"

    def test_sandboxed_read_from_chardev_not_interposed(self, sandbox):
        sb, tty = self._tty_fd(sandbox, writable=False)
        assert sb.sys.read(9, 6) == b"secret"

    def test_regular_file_write_is_interposed(self, sandbox, kernel):
        """Contrast: the same session, writing to a *regular* file vnode,
        is stopped — the bypass is specific to character devices."""
        sb = sandbox().enter()
        _, _, vp = kernel.syscalls(kernel.spawn_process("root", "/"))._resolve(
            "/home/alice/dog.jpg"
        )
        sb.proc.fdtable.install(8, OpenFile(vp, O_WRONLY))
        with pytest.raises(SysError) as exc:
            sb.sys.write(8, b"denied")
        assert exc.value.errno == errno_.EACCES

    def test_mitigation_language_level_still_enforced(self, kernel):
        """The language-level capability for stdout DOES enforce its
        privileges — the bypass exists only below, in sandboxes."""
        from repro.errors import ContractViolation
        from repro.lang.runner import ShillRuntime

        rt = ShillRuntime(kernel, user="alice", cwd="/home/alice")
        stdout_cap = rt.stdout_cap()
        restricted = stdout_cap.attenuated(PrivSet.of(Priv.STAT), blame="script")
        with pytest.raises(ContractViolation):
            restricted.write(b"x")


class TestWriteAppendGranularity:
    """"the MAC framework exposes a single entry point for operations
    that write to filesystem objects, so we cannot distinguish write and
    append operations."
    """

    def test_append_only_file_grant_insufficient_in_sandbox(self, sandbox):
        """+append alone cannot authorize an append inside a sandbox (both
        +write and +append are required) — the conservative rule."""
        sb = sandbox()
        sb.grant_chain("/home/alice")
        sb.grant_path("/home/alice", PrivSet.of(Priv.LOOKUP))
        sb.grant_path("/home/alice/dog.jpg", PrivSet.of(Priv.APPEND))
        sb.enter()
        from repro.kernel import O_APPEND

        with pytest.raises(SysError) as exc:
            sb.sys.open("/home/alice/dog.jpg", O_WRONLY | O_APPEND)
        assert exc.value.errno == errno_.EACCES

    def test_append_only_enforced_at_language_level(self, kernel):
        """"in SHILL scripts, privileges can be enforced at fine
        granularity, since capability safety in scripts relies on language
        abstractions, not on the MAC framework." — +append without +write
        allows append and rejects write."""
        from repro.capability.caps import FsCap
        from repro.errors import ContractViolation

        sys = kernel.syscalls(kernel.spawn_process("alice", "/home/alice"))
        _, _, vp = sys._resolve("/home/alice/dog.jpg")
        cap = FsCap(sys, vp, PrivSet.of(Priv.APPEND), "/home/alice/dog.jpg")
        cap.append(b"+ok")
        with pytest.raises(ContractViolation):
            cap.write(b"rewrite")
