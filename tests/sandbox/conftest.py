"""Sandbox test helpers: build sessions over the shared kernel fixture."""

from __future__ import annotations

import pytest

from repro.kernel import Kernel
from repro.sandbox.privileges import PrivSet, SocketPerms


class SandboxBuilder:
    """Fluent helper: grant privileges by path, then enter the sandbox."""

    def __init__(self, kernel: Kernel, user: str = "alice", cwd: str = "/home/alice",
                 debug: bool = False):
        self.kernel = kernel
        self.policy = kernel.install_shill_module()
        self.launcher = kernel.spawn_process(user, cwd)
        self.proc = kernel.procs.fork(self.launcher)
        self.session = self.policy.sessions.shill_init(self.proc, debug=debug)
        self.sys = kernel.syscalls(self.proc)

    def grant_chain(self, path: str) -> "SandboxBuilder":
        """Grant bare +lookup on every strict ancestor of ``path`` so that
        absolute-path resolution can reach it — the same chain Figure 8
        requires and that native wallets package for executables."""
        from repro.sandbox.privileges import Priv

        lookup_only = PrivSet.of(Priv.LOOKUP).with_modifier(Priv.LOOKUP, ())
        node = self.kernel.vfs.root
        self.policy.sessions.grant(self.session, node, lookup_only)
        for comp in [p for p in path.split("/") if p][:-1]:
            node = self.kernel.vfs.lookup(node, comp)
            self.policy.sessions.grant(self.session, node, lookup_only)
        return self

    def grant_path(self, path: str, privs: PrivSet) -> "SandboxBuilder":
        launcher_sys = self.kernel.syscalls(self.launcher)
        # follow=False so a grant on a symlink targets the link itself.
        _, _, vp = launcher_sys._resolve(path, follow=False)
        assert vp is not None, path
        self.policy.sessions.grant(self.session, vp, privs)
        return self

    def grant_obj(self, obj, privs: PrivSet) -> "SandboxBuilder":
        self.policy.sessions.grant(self.session, obj, privs)
        return self

    def grant_pipe_factory(self) -> "SandboxBuilder":
        self.policy.sessions.grant_pipe_factory(self.session)
        return self

    def grant_socket_factory(self, perms: SocketPerms | None = None) -> "SandboxBuilder":
        self.policy.sessions.grant_socket_factory(self.session, perms or SocketPerms.full())
        return self

    def enter(self) -> "SandboxBuilder":
        self.sys.shill_enter()
        return self


@pytest.fixture
def sandbox(kernel):
    def make(user: str = "alice", cwd: str = "/home/alice", debug: bool = False) -> SandboxBuilder:
        return SandboxBuilder(kernel, user, cwd, debug=debug)

    return make
