"""The pinned fuzz regression corpus plus the fuzz harness itself.

Corpus entries are stored the way falsifying examples are shipped —
:meth:`Scenario.describe` JSON — so a CI artifact pastes straight into
this file as a new regression entry.
"""

from __future__ import annotations

import json

import pytest

from repro.fuzz import (
    InvariantViolation,
    Scenario,
    check_scenario,
    run_fuzz,
)

# ---------------------------------------------------------------------------
# the seeded edge-case corpus
# ---------------------------------------------------------------------------

#: Edge case 1 — the *empty* policy: an engine with no rules installed
#: must be indistinguishable from no engine at all.
EMPTY_POLICY = {
    "world": {"fixture": "jpeg", "extra_files": []},
    "policy": {"default": "defer", "rules": []},
    "commands": [["/bin/cat", "/home/alice/Documents/notes.txt"],
                 ["/bin/ls", "/home/alice/Documents"]],
    "ambient_ops": [["read", "/home/alice/Documents/notes.txt"],
                    ["list", "/home/alice/Documents"]],
}

#: Edge case 2 — the deny-all policy: every session-scoped check is
#: refused, and every one of those denials must still be audited (and
#: identical across executors).
DENY_ALL_POLICY = {
    "world": {"fixture": "vcs", "extra_files": []},
    "policy": {"default": "deny", "rules": [{"effect": "deny"}]},
    "commands": [["/bin/cat", "/home/alice/project/README"],
                 ["/bin/echo", "fuzz"]],
    "ambient_ops": [["read", "/home/alice/project/README"]],
}

#: Edge case 3 — a policy granting a *nonexistent* path: an allow rule
#: for a file that is not in the world must neither conjure the file
#: into existence nor corrupt the checks on real paths.
NONEXISTENT_GRANT_POLICY = {
    "world": {"fixture": "none", "extra_files": [["f0.txt", "alpha\n"]]},
    "policy": {"default": "defer",
               "rules": [{"effect": "allow",
                          "paths": ["/home/alice/does-not-exist.txt"]}]},
    "commands": [["/bin/cat", "/home/alice/does-not-exist.txt"],
                 ["/bin/cat", "/home/alice/fuzz/f0.txt"]],
    "ambient_ops": [["read", "/home/alice/fuzz/f0.txt"],
                    ["list", "/home/alice"]],
}

CORPUS = {
    "empty-policy": EMPTY_POLICY,
    "deny-all-policy": DENY_ALL_POLICY,
    "nonexistent-path-grant": NONEXISTENT_GRANT_POLICY,
}


@pytest.mark.parametrize("name", sorted(CORPUS), ids=str)
def test_corpus_entry_upholds_all_invariants(name):
    scenario = Scenario.from_json(CORPUS[name])
    check_scenario(scenario)


def test_corpus_entries_survive_the_artifact_round_trip():
    """describe() → JSON → from_json() is the falsifying-example wire
    format; a corpus entry must be a fixed point of it."""
    for name, data in CORPUS.items():
        scenario = Scenario.from_json(data)
        dumped = json.loads(json.dumps(scenario.describe()))
        assert Scenario.from_json(dumped) == scenario, name
        # The stored entry matches describe() modulo the rendered script
        # (describe() adds it for human readers).
        stripped = {k: v for k, v in scenario.describe().items()
                    if k != "ambient_script"}
        assert stripped == data, name


def test_deny_all_scenario_actually_denies():
    """The deny-all corpus entry must have teeth: its sandboxed command
    is refused, with every denial audited."""
    from repro.fuzz.invariants import sandboxed_exec

    scenario = Scenario.from_json(DENY_ALL_POLICY)
    result = sandboxed_exec(scenario, ("/bin/cat", "/home/alice/project/README"))
    assert result is not None and result.status != 0
    assert result.denials
    assert result.ops["mac_denials"] == len(result.denials)


# ---------------------------------------------------------------------------
# the harness itself
# ---------------------------------------------------------------------------

class TestRunner:
    def test_small_run_is_green_and_deterministic(self):
        report = run_fuzz(runs=5, seed=0)
        assert report.ok and report.runs == 5 and report.seed == 0
        assert report.failure is None and report.falsifying is None

    def test_violation_is_caught_shrunk_and_described(self, monkeypatch, tmp_path):
        """An invariant violation must surface as a failed report whose
        falsifying example is complete, JSON-dumpable, and minimal
        enough to rebuild."""
        import repro.fuzz.runner as runner_mod

        real_check = runner_mod.check_scenario

        def broken_check(scenario):
            if scenario.policy is not None and scenario.policy.rules:
                raise InvariantViolation("synthetic", "injected failure", scenario)
            real_check(scenario)

        monkeypatch.setattr(runner_mod, "check_scenario", broken_check)
        report = run_fuzz(runs=30, seed=0)
        assert not report.ok
        assert "synthetic" in report.failure
        rebuilt = Scenario.from_json(report.falsifying)
        assert rebuilt.policy is not None and rebuilt.policy.rules
        # Shrinking drove the example toward minimality: one rule, and
        # no commands/ops beyond hypothesis's floor of one command.
        assert len(rebuilt.policy.rules) == 1
        path = report.write_falsifying(tmp_path / "falsifying.json")
        assert Scenario.from_json(json.loads(path.read_text())) == rebuilt

    def test_generated_scenarios_talk_about_their_world(self):
        """Strategy sanity: every generated policy path and script
        target comes from the world's own alphabet."""
        from hypothesis import HealthCheck, given, settings
        from repro.fuzz import scenarios

        @settings(max_examples=25, database=None, deadline=None,
                  suppress_health_check=list(HealthCheck))
        @given(scenarios())
        def property(scenario):
            alphabet = set(scenario.world.policy_paths())
            if scenario.policy is not None:
                for rule in scenario.policy.rules:
                    for p in rule.paths or ():
                        assert p in alphabet
            for op, target in scenario.ambient_ops:
                assert op in ("list", "path", "read", "append")
                assert target in scenario.world.file_paths() + scenario.world.dir_paths()
            script = scenario.ambient_script()
            assert script.startswith("#lang shill/ambient")
            assert script.endswith('append(stdout, "done\\n");\n')

        property()


class TestCli:
    def test_cli_green_run_exits_zero(self, capsys):
        from repro.__main__ import main

        assert main(["fuzz", "--runs", "3", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "3 scenario(s)" in out

    def test_cli_failure_exits_one_and_writes_artifact(self, monkeypatch,
                                                       tmp_path, capsys):
        from repro.__main__ import main
        import repro.fuzz.runner as runner_mod

        def always_broken(scenario):
            raise InvariantViolation("synthetic", "injected failure", scenario)

        monkeypatch.setattr(runner_mod, "check_scenario", always_broken)
        artifact = tmp_path / "falsifying.json"
        status = main(["fuzz", "--runs", "3", "--seed", "0",
                       "--artifact", str(artifact)])
        assert status == 1
        err = capsys.readouterr().err
        assert "FAILED" in err and str(artifact) in err
        Scenario.from_json(json.loads(artifact.read_text()))  # parses back
