"""Pre-dispatch gating: `Batch(..., lint=...)` and the `repro lint` /
`repro batch --lint` CLI.  The headline guarantee — a statically-doomed
job is rejected with byte-identical diagnostics whether the batch
targets a sequential or a remote executor — is asserted directly."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.analysis import Diagnostic, FakeRuleSet, LintRejection, gate_jobs
from repro.api import (
    Batch,
    BatchJob,
    RemoteExecutor,
    SequentialExecutor,
    World,
)
from repro.api.caching import BoundedCache
from repro.__main__ import EXIT_BATCH_ERROR, main

DOOMED_CAP = """\
#lang shill/cap
provide scrub : {log : file(+read)} -> void;
scrub = fun(log) { write(log, ""); }
"""

DOOMED_JOB = """\
#lang shill/ambient
require "scrub.cap";
scrub(open_file("/home/alice/notes.txt"));
"""

CLEAN_JOB = """\
#lang shill/ambient
docs = open_dir("~/Documents");
append(stdout, path(docs) + "\\n");
"""


# ---------------------------------------------------------------------------
# gate_jobs
# ---------------------------------------------------------------------------


def jobs(*sources):
    return [BatchJob(source, None, f"job{i}") for i, source in enumerate(sources)]


def test_gate_mode_off_lints_nothing():
    assert gate_jobs(jobs(DOOMED_JOB), {"scrub.cap": DOOMED_CAP}, "off") == {}


def test_gate_mode_warn_reports_but_never_raises():
    reports = gate_jobs(jobs(DOOMED_JOB, CLEAN_JOB),
                        {"scrub.cap": DOOMED_CAP}, "warn")
    assert set(reports) == {0, 1}
    assert reports[1].clean


def test_gate_mode_strict_raises_for_transitively_doomed_job():
    # The job's own source is clean; the error lives in the required
    # script, which the runtime would load after the fork.
    with pytest.raises(LintRejection) as exc:
        gate_jobs(jobs(CLEAN_JOB, DOOMED_JOB), {"scrub.cap": DOOMED_CAP},
                  "strict")
    err = exc.value
    assert err.job_name == "job1"
    assert [d.code for d in err.diagnostics] == ["SH002"]
    assert "rejected by pre-dispatch lint" in str(err)
    assert err.traceback_text == ""


def test_gate_rejects_earliest_job_in_submission_order():
    with pytest.raises(LintRejection) as exc:
        gate_jobs(jobs(DOOMED_JOB, DOOMED_JOB), {"scrub.cap": DOOMED_CAP},
                  "strict")
    assert exc.value.job_name == "job0"


def test_gate_validates_mode():
    with pytest.raises(ValueError, match="lint mode"):
        gate_jobs([], {}, "paranoid")


def test_lint_rejection_pickles_with_diagnostics_and_footprint():
    with pytest.raises(LintRejection) as exc:
        gate_jobs(jobs(DOOMED_JOB), {"scrub.cap": DOOMED_CAP}, "strict")
    err = exc.value
    clone = pickle.loads(pickle.dumps(err))
    assert isinstance(clone, LintRejection)
    assert clone.diagnostics == err.diagnostics
    assert str(clone) == str(err)
    assert clone.footprint == err.footprint


def test_fake_ruleset_drives_gating():
    boom = Diagnostic(code="X001", severity="error", message="no",
                      script="job0")
    with pytest.raises(LintRejection) as exc:
        gate_jobs(jobs(CLEAN_JOB), None, "strict", rules=FakeRuleSet([boom]))
    assert exc.value.diagnostics == (boom,)
    # An empty canned engine waves everything through.
    reports = gate_jobs(jobs(DOOMED_JOB), {"scrub.cap": DOOMED_CAP},
                        "strict", rules=FakeRuleSet())
    assert reports[0].clean


# ---------------------------------------------------------------------------
# Batch integration
# ---------------------------------------------------------------------------


def doomed_batch(**kwargs):
    batch = Batch(World().for_user("alice"),
                  scripts={"scrub.cap": DOOMED_CAP}, lint="strict", **kwargs)
    batch.add(DOOMED_JOB, name="doomed.ambient")
    return batch


def test_batch_validates_lint_mode():
    with pytest.raises(ValueError, match="lint"):
        Batch(World(), lint="yes please")


def test_strict_rejection_is_byte_identical_across_executors():
    def attempt(executor):
        try:
            doomed_batch().run(executor=executor)
        except LintRejection as err:
            return str(err), tuple(d.format() for d in err.diagnostics)
        raise AssertionError("lint rejection did not fire")

    # The remote executor points at an unreachable address: the gate
    # fires before any connection (or fork) is attempted.
    local = attempt(SequentialExecutor())
    remote = attempt(RemoteExecutor(hosts=["127.0.0.1:1"]))
    assert local == remote
    assert "SH002" in local[0]


def test_warn_mode_attaches_footprints_and_cache_stays_bare():
    world = World().for_user("alice").with_fixture("jpeg")
    cache = BoundedCache(64)
    linted = Batch(world, lint="warn", result_cache=cache)
    linted.add(CLEAN_JOB, name="walk.ambient")
    [result] = linted.run()
    assert result.ok
    assert result.footprint is not None
    assert result.footprint.script == "walk.ambient"
    assert "<stdout>" in result.footprint.writes

    # Same cache, lint off: the cached result must come back bare —
    # footprints are advisory metadata, not part of the result.
    plain = Batch(world, result_cache=cache)
    plain.add(CLEAN_JOB, name="walk.ambient")
    [cached] = plain.run()
    assert plain.stats["cache_hits"] == 1
    assert cached.footprint is None
    assert cached.fingerprint() == result.fingerprint()


def test_strict_mode_runs_clean_jobs_normally():
    batch = Batch(World().for_user("alice").with_fixture("jpeg"),
                  lint="strict", result_cache=BoundedCache(8))
    batch.add(CLEAN_JOB, name="walk.ambient")
    [result] = batch.run()
    assert result.ok and result.footprint is not None


# ---------------------------------------------------------------------------
# the CLI
# ---------------------------------------------------------------------------


@pytest.fixture
def script_dir(tmp_path):
    (tmp_path / "scrub.cap").write_text(DOOMED_CAP)
    (tmp_path / "doomed.ambient").write_text(DOOMED_JOB)
    return tmp_path


def test_repro_lint_human_and_exit_code(script_dir, capsys):
    status = main(["lint", str(script_dir)])
    out = capsys.readouterr().out
    assert status == 1  # SH002 is error severity
    assert "SH002" in out and "scrub.cap" in out
    assert "2 scripts checked" in out


def test_repro_lint_json(script_dir, capsys):
    status = main(["lint", str(script_dir / "scrub.cap"), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert status == 1
    assert payload["schema_version"] == 1
    assert payload["summary"]["rule_counts"]["SH002"] == 1
    [entry] = payload["scripts"]
    assert entry["footprint"]["exports"][0]["name"] == "scrub"


def test_repro_lint_usage_errors(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "absent.cap")]) == 2
    assert "no such file" in capsys.readouterr().err
    assert main(["lint"]) == 2
    assert "nothing to lint" in capsys.readouterr().err


def test_repro_batch_strict_exits_3_with_script_and_diagnostic(script_dir, capsys):
    status = main(["batch", str(script_dir / "doomed.ambient"),
                   "--cap", str(script_dir / "scrub.cap"),
                   "--lint", "strict"])
    err = capsys.readouterr().err
    assert status == EXIT_BATCH_ERROR
    # The bugfix under test: the offending script's name and the first
    # diagnostic both reach stderr even though there is no traceback.
    assert "doomed.ambient" in err
    assert "SH002" in err and "rejected by pre-dispatch lint" in err


def test_repro_batch_lint_warn_still_runs(script_dir, capsys):
    (script_dir / "walk.ambient").write_text(CLEAN_JOB)
    status = main(["batch", str(script_dir / "walk.ambient"),
                   "--lint", "warn", "--no-cache"])
    out = capsys.readouterr().out
    assert status == 0
    assert "/home/alice/Documents" in out
