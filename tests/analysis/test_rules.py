"""Per-rule allow/deny tests: every SHnnn fires on a purpose-built bad
fixture and stays silent on the matching good one, with exact code,
span, and blame-party assertions on the two headline directions
(over-granted contract, under-privileged script)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    Diagnostic,
    FakeRuleSet,
    RULE_CATALOG,
    RuleSet,
    lint_source,
)


def codes(report):
    return [d.code for d in report.diagnostics]


# ---------------------------------------------------------------------------
# SH001: over-granted contract (least-privilege gap)
# ---------------------------------------------------------------------------

OVER_CAP = """\
#lang shill/cap
provide peek : {f : file(+read, +write)} -> void;
peek = fun(f) { read(f); }
"""


def test_sh001_fires_on_unused_grant_with_span_and_blame():
    report = lint_source("over.cap", OVER_CAP)
    [diag] = report.diagnostics
    assert diag.code == "SH001" and diag.severity == "warning"
    # The span points at the +write item inside the contract text.
    line = OVER_CAP.splitlines()[diag.line - 1]
    assert diag.line == 2 and line[diag.col - 1:].startswith("+write")
    # Over-grants blame the caller — they supplied more than needed.
    assert diag.blame == "caller of 'peek' (over-granted)"
    assert diag.param == "f"


def test_sh001_silent_when_every_grant_is_used():
    report = lint_source("tight.cap", """\
#lang shill/cap
provide peek : {f : file(+read)} -> void;
peek = fun(f) { read(f); }
""")
    assert report.clean


def test_sh001_silent_when_parameter_escapes_into_a_sandbox():
    # A capability handed to exec exercises its authority out of sight;
    # claiming the grant is unused would be a false positive.
    report = lint_source("runner.cap", """\
#lang shill/cap
provide run : {prog : file(+exec, +read)} -> is_num;
run = fun(prog) { exec(prog, []); }
""")
    assert "SH001" not in codes(report)


# ---------------------------------------------------------------------------
# SH002: under-privileged script (guaranteed runtime violation)
# ---------------------------------------------------------------------------

UNDER_CAP = """\
#lang shill/cap
provide scrub : {log : file(+read, +stat)} -> void;
scrub = fun(log) {
  write(log, "");
}
"""


def test_sh002_fires_with_span_at_first_use_and_script_blame():
    report = lint_source("under.cap", UNDER_CAP)
    [diag] = report.errors
    assert diag.code == "SH002" and diag.severity == "error"
    # The span is the first use of the missing privilege (the write on
    # line 4), not the contract.
    line = UNDER_CAP.splitlines()[diag.line - 1]
    assert diag.line == 4 and line[diag.col - 1:].startswith("write(log")
    assert "+write" in diag.message
    # Guaranteed violations blame the script, which promised to live
    # within its contract.
    assert diag.blame == "script 'under.cap'"
    assert diag.param == "log"


def test_sh002_respects_disjunct_branches():
    # The write is admitted by the second clause: no violation.
    report = lint_source("either.cap", """\
#lang shill/cap
provide go : {f : file(+read) \\/ file(+write)} -> void;
go = fun(f) { write(f, "x"); }
""")
    assert "SH002" not in codes(report)


def test_sh002_catches_with_modifier_violations_on_derived_caps():
    report = lint_source("mod.cap", """\
#lang shill/cap
provide go : {d : dir(+lookup with {+read})} -> void;
go = fun(d) {
  child = lookup(d, "a");
  write(child, "x");
}
""")
    [diag] = report.errors
    assert diag.code == "SH002" and diag.line == 5
    assert "beyond the contract's 'with' modifier" in diag.message


def test_sh002_cross_module_call_requires_callee_grant():
    # The ambient mints full-authority caps, but go() passes its
    # parameter on to a required script whose contract demands +write —
    # go's own contract must therefore grant +write too.
    registry = {"writer.cap": """\
#lang shill/cap
provide put : {f : file(+write)} -> void;
put = fun(f) { write(f, "x"); }
"""}
    report = lint_source("fwd.cap", """\
#lang shill/cap
require "writer.cap";
provide go : {f : file(+read)} -> void;
go = fun(f) { put(f); }
""", registry=registry)
    assert [d.code for d in report.errors] == ["SH002"]


# ---------------------------------------------------------------------------
# SH003: shadowed disjunct
# ---------------------------------------------------------------------------


def test_sh003_flags_dead_later_clause():
    report = lint_source("shadow.cap", """\
#lang shill/cap
provide go : {f : file(+read) \\/ file(+read, +write)} -> void;
go = fun(f) { read(f); }
""")
    shadowed = [d for d in report.diagnostics if d.code == "SH003"]
    [diag] = shadowed
    assert "clause 2" in diag.message and "clause 1" in diag.message
    assert diag.blame == "contract of 'go'"


def test_sh003_silent_when_clauses_differ_in_kind():
    report = lint_source("kinds.cap", """\
#lang shill/cap
provide go : {f : dir(+lookup) \\/ file(+read)} -> void;
go = fun(f) { if is_file(f) then read(f); }
""")
    assert "SH003" not in codes(report)


# ---------------------------------------------------------------------------
# SH004: unknown contract name
# ---------------------------------------------------------------------------


def test_sh004_fires_on_unknown_name_and_not_on_library_names():
    report = lint_source("unk.cap", """\
#lang shill/cap
provide go : {f : mystery_ctc, g : is_file && readonly} -> void;
go = fun(f, g) { read(g); }
""")
    unknown = [d for d in report.diagnostics if d.code == "SH004"]
    [diag] = unknown
    assert "'mystery_ctc'" in diag.message and diag.severity == "error"


# ---------------------------------------------------------------------------
# SH005: ambient capability minted but never used
# ---------------------------------------------------------------------------


def test_sh005_fires_on_unused_mint_and_not_on_used_one():
    report = lint_source("waste.ambient", """\
#lang shill/ambient
unused = open_file("/home/alice/notes.txt");
used = open_dir("/tmp");
contents(used);
""")
    [diag] = [d for d in report.diagnostics if d.code == "SH005"]
    assert "'/home/alice/notes.txt'" in diag.message and diag.line == 2


def test_sh005_treats_predicate_contract_passthrough_as_use():
    # A predicate contract (is_list) does not attenuate: the callee's
    # own behaviour governs, so mints passed through it are used.
    registry = {"sink.cap": """\
#lang shill/cap
provide consume : {items : is_list} -> void;
consume = fun(items) { for f in items { read(f); } }
"""}
    report = lint_source("feeder.ambient", """\
#lang shill/ambient
require "sink.cap";
a = open_file("/home/alice/notes.txt");
b = open_file("/home/bob/cat.txt");
consume([a, b]);
""", registry=registry)
    assert "SH005" not in codes(report)


# ---------------------------------------------------------------------------
# SH006 / SH007: network and wallet grants
# ---------------------------------------------------------------------------


def test_sh006_fires_without_socket_factory_and_not_with_one():
    bad = lint_source("net.cap", """\
#lang shill/cap
provide go : {fac : is_cap} -> void;
go = fun(fac) { s = create_socket(fac); }
""")
    [diag] = bad.errors
    assert diag.code == "SH006" and diag.param == "fac"
    good = lint_source("net_ok.cap", """\
#lang shill/cap
provide go : {fac : socket_factory} -> void;
go = fun(fac) { s = create_socket(fac); }
""")
    assert "SH006" not in codes(good)


def test_sh007_fires_on_non_wallet_contract_and_not_on_native_wallet():
    bad = lint_source("wal.cap", """\
#lang shill/cap
provide go : {w : is_dir && readonly} -> void;
go = fun(w) { p = pkg_native("curl", w); }
""")
    assert [d.code for d in bad.errors] == ["SH007"]
    good = lint_source("wal_ok.cap", """\
#lang shill/cap
provide go : {w : native_wallet} -> void;
go = fun(w) { p = pkg_native("curl", w); }
""")
    assert "SH007" not in codes(good)


# ---------------------------------------------------------------------------
# SH008 / SH009: unresolved requires and syntax errors
# ---------------------------------------------------------------------------


def test_sh008_warns_on_unresolvable_require():
    report = lint_source("lost.ambient", """\
#lang shill/ambient
require "nowhere.cap";
""")
    [diag] = [d for d in report.diagnostics if d.code == "SH008"]
    assert "'nowhere.cap'" in diag.message and diag.severity == "warning"


def test_sh009_reports_syntax_errors_as_diagnostics():
    report = lint_source("broken.cap", "#lang shill/cap\nprovide = = ;\n")
    assert [d.code for d in report.errors] == ["SH009"]
    assert report.footprint.script == "broken.cap"


# ---------------------------------------------------------------------------
# SH010: uncacheable footprint (names the flag forcing UNKNOWN)
# ---------------------------------------------------------------------------

SH010_ON = RuleSet(severities={"SH010": "warning"})

WALLET_CAP = """\
#lang shill/cap
require shill/native;
provide launch : {w : native_wallet} -> is_num;
launch = fun(w) { prog = pkg_native("true", w); prog([]); }
"""


def test_sh010_is_off_by_default():
    assert not [d for d in lint_source("w.cap", WALLET_CAP).diagnostics
                if d.code == "SH010"]


def test_sh010_names_the_param_flag_when_enabled():
    report = lint_source("w.cap", WALLET_CAP, rules=SH010_ON)
    diags = [d for d in report.diagnostics if d.code == "SH010"]
    assert diags, codes(report)
    [diag] = [d for d in diags if d.param == "w"]
    assert "wallet authority" in diag.message
    assert diag.blame == "contract of 'launch'"


def test_sh010_flags_ambient_network_use():
    report = lint_source("net.ambient", """\
#lang shill/ambient
sock = create_socket(socket_factory);
""", rules=SH010_ON)
    diags = [d for d in report.diagnostics if d.code == "SH010"]
    assert any("network" in d.message for d in diags)


def test_sh010_silent_on_a_cacheable_script():
    report = lint_source("walk.ambient", """\
#lang shill/ambient
docs = open_dir("/home/alice/Documents");
entries = contents(docs);
""", rules=SH010_ON)
    assert not [d for d in report.diagnostics if d.code == "SH010"]


# ---------------------------------------------------------------------------
# SH011: footprint wider than recorded behavior (stale contract)
# ---------------------------------------------------------------------------

WALK_TWO_DIRS = """\
#lang shill/ambient
docs = open_dir("/home/alice/Documents");
pics = open_dir("/home/alice/Pictures");
entries = contents(docs);
more = contents(pics);
"""


def _sh011(recordings):
    from repro.analysis.rules import StaleFootprintRule

    return RuleSet(rules=(StaleFootprintRule(recordings),),
                   severities={"SH011": "warning"})


def test_sh011_flags_prefixes_no_recorded_run_touched():
    rules = _sh011({"walk.ambient": [("read", "/home/alice/Documents/a.jpg")]})
    report = lint_source("walk.ambient", WALK_TWO_DIRS, rules=rules)
    [diag] = report.diagnostics
    assert diag.code == "SH011"
    assert "'/home/alice/Pictures'" in diag.message
    assert "stale contract" in diag.message


def test_sh011_silent_when_recordings_cover_the_footprint():
    rules = _sh011({"walk.ambient": [
        ("read", "/home/alice/Documents/a.jpg"),
        ("read", "/home/alice/Pictures"),
    ]})
    report = lint_source("walk.ambient", WALK_TWO_DIRS, rules=rules)
    assert report.clean


def test_sh011_kind_must_match_not_just_the_path():
    # A recorded *read* under a prefix does not witness *write* authority.
    rules = _sh011({"note.ambient": [("read", "/tmp/notes.txt")]})
    report = lint_source("note.ambient", """\
#lang shill/ambient
out = open_file("/tmp/notes.txt");
append(out, "x");
""", rules=rules)
    assert any(d.code == "SH011" and "write" in d.message
               for d in report.diagnostics)


def test_sh011_inert_without_recordings():
    report = lint_source("walk.ambient", WALK_TWO_DIRS,
                         rules=_sh011({}))
    assert report.clean


# ---------------------------------------------------------------------------
# the engine: severity config, catalog, FakeRuleSet
# ---------------------------------------------------------------------------


def test_severity_overrides_rewrite_and_off_suppresses():
    promoted = RuleSet(severities={"SH001": "error"})
    report = lint_source("over.cap", OVER_CAP, rules=promoted)
    assert [d.severity for d in report.diagnostics] == ["error"]

    silenced = RuleSet(severities={"SH001": "off"})
    assert lint_source("over.cap", OVER_CAP, rules=silenced).clean


def test_ruleset_rejects_unknown_severity():
    with pytest.raises(ValueError, match="unknown severity"):
        RuleSet(severities={"SH001": "fatal"})


def test_rule_catalog_matches_shipped_rules():
    assert list(RULE_CATALOG) == (
        [f"SH00{i}" for i in range(1, 10)] + ["SH010", "SH011"])
    # SH010/SH011 are opt-in (cacheability advisories), hence "off".
    assert all(sev in ("error", "warning", "off")
               for _, sev in RULE_CATALOG.values())


def test_fake_ruleset_records_analyses_and_returns_canned_output():
    canned = Diagnostic(code="X999", severity="error", message="no")
    fake = FakeRuleSet([canned])
    report = lint_source("tight.cap", OVER_CAP, rules=fake)
    assert report.diagnostics == (canned,)
    assert [a.name for a in fake.seen] == ["tight.cap"]
    # The analysis itself still happened: the footprint rides along.
    assert fake.seen[0].footprint.script == "tight.cap"
