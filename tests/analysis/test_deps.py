"""The dependency analyzer: world deltas, `may_depend`, the soundness gate."""

from __future__ import annotations

import pytest

from repro.analysis.deps import (
    INVALID,
    UNKNOWN,
    VALID,
    Verdict,
    WorldDelta,
    expand_home,
    footprint_prefixes,
    may_depend,
    prefixes_intersect,
    soundness_escapes,
    world_delta_between,
    world_delta_from_snapshot,
    world_delta_of,
)
from repro.analysis.footprint import ExportFootprint, Footprint, ParamFootprint
from repro.api import World


def _fp(**kwargs) -> Footprint:
    kwargs.setdefault("script", "q.ambient")
    kwargs.setdefault("lang", "shill/ambient")
    return Footprint(**kwargs)


class TestPrefixIntersection:
    def test_equal_and_nested_both_directions(self):
        assert prefixes_intersect("/a/b", "/a/b")
        assert prefixes_intersect("/a", "/a/b/c")
        assert prefixes_intersect("/a/b/c", "/a")

    def test_disjoint_siblings(self):
        assert not prefixes_intersect("/a/b", "/a/bc")
        assert not prefixes_intersect("/home/alice", "/home/bob")

    def test_sentinels_never_intersect(self):
        assert not prefixes_intersect("<stdout>", "/")
        assert not prefixes_intersect("/", "<detached>")

    def test_trailing_slash_is_normalised(self):
        assert prefixes_intersect("/a/", "/a/b")

    def test_expand_home(self):
        assert expand_home("~", "/home/alice") == "/home/alice"
        assert expand_home("~/Documents", "/home/alice") == "/home/alice/Documents"
        assert expand_home("~/Documents", None) == "~/Documents"
        assert expand_home("/etc", "/home/alice") == "/etc"

    def test_footprint_prefixes_expands_and_drops_sentinels(self):
        fp = _fp(reads=("~/Documents",), writes=("<stdout>",), executes=("/bin",))
        assert footprint_prefixes(fp, "/home/alice") == \
            ("/home/alice/Documents", "/bin")


class TestMayDepend:
    def test_disjoint_delta_is_valid(self):
        fp = _fp(reads=("/home/alice/Documents",), writes=("<stdout>",))
        verdict = may_depend(fp, WorldDelta(writes=("/srv/other.txt",)))
        assert verdict.state == VALID and verdict.valid
        assert verdict.blame == ()

    def test_intersecting_write_names_the_prefix(self):
        fp = _fp(reads=("/home/alice/Documents",))
        verdict = may_depend(
            fp, WorldDelta(writes=("/home/alice/Documents/a.txt",)))
        assert verdict.state == INVALID
        assert "invalidated-by:/home/alice/Documents/a.txt" in verdict.blame

    def test_home_relative_reads_resolve_before_intersecting(self):
        fp = _fp(reads=("~/Documents",))
        delta = WorldDelta(writes=("/home/alice/Documents/a.txt",))
        assert may_depend(fp, delta, home="/home/alice").state == INVALID
        assert may_depend(fp, delta, home="/home/bob").state == VALID

    def test_unresolved_home_is_uncacheable(self):
        fp = _fp(reads=("~/Documents",))
        verdict = may_depend(fp, WorldDelta())
        assert verdict.state == UNKNOWN
        assert "uncacheable:unresolved-home:~/Documents" in verdict.blame

    def test_machine_state_mutations_invalidate_with_blame(self):
        fp = _fp(reads=("/srv",))
        cases = {
            "invalidated-by:config-mutation": WorldDelta(config_mutation=True),
            "invalidated-by:label-mutation": WorldDelta(label_mutation=True),
            "invalidated-by:watermark-drift": WorldDelta(watermark_drift=True),
            "invalidated-by:unknown-world-delta": WorldDelta(unknown=True),
        }
        for blame, delta in cases.items():
            verdict = may_depend(fp, delta)
            assert verdict.state == INVALID and blame in verdict.blame

    def test_missing_footprint_is_unknown(self):
        verdict = may_depend(None, WorldDelta())
        assert verdict.state == UNKNOWN
        assert verdict.blame == ("uncacheable:no-footprint",)

    def test_ambient_flags_force_unknown(self):
        assert "uncacheable:network" in \
            may_depend(_fp(network=True), WorldDelta()).blame
        assert "uncacheable:wallet" in \
            may_depend(_fp(wallet=True), WorldDelta()).blame
        assert "uncacheable:dynamic-path" in \
            may_depend(_fp(reads=("<dynamic>",)), WorldDelta()).blame
        assert "uncacheable:requires:other.cap" in \
            may_depend(_fp(requires=("other.cap",)), WorldDelta()).blame

    def test_param_authority_flags_force_unknown(self):
        export = ExportFootprint(name="go", params=(
            ParamFootprint(name="net", network=True),
            ParamFootprint(name="w", wallet=True),
            ParamFootprint(name="esc", escapes=True),
        ))
        verdict = may_depend(_fp(exports=(export,)), WorldDelta())
        assert verdict.state == UNKNOWN
        assert set(verdict.blame) == {
            "uncacheable:network:go/net",
            "uncacheable:wallet:go/w",
            "uncacheable:escape:go/esc",
        }

    def test_uncacheable_wins_over_invalid(self):
        """UNKNOWN (never cache) outranks INVALID (this delta hit):
        the flag blames the *script*, not one mutation."""
        fp = _fp(network=True, reads=("/srv",))
        verdict = may_depend(fp, WorldDelta(writes=("/srv/x",)))
        assert verdict.state == UNKNOWN

    def test_verdict_renders_and_serialises(self):
        verdict = Verdict(INVALID, ("invalidated-by:/srv/x",))
        assert str(verdict) == "invalid (invalidated-by:/srv/x)"
        assert verdict.to_json() == {"state": "invalid",
                                     "blame": ["invalidated-by:/srv/x"]}
        assert str(Verdict(VALID)) == "valid"


class TestSoundnessGate:
    def test_covered_touches_pass(self):
        fp = _fp(reads=("/home/alice/Documents",), writes=("<stdout>",))
        touched = (("read", "/home/alice/Documents/dog.jpg"),
                   ("read", "/home/alice/Documents"))
        assert soundness_escapes(fp, touched, home="/home/alice") == ()

    def test_escaping_touch_is_reported_with_its_kind(self):
        fp = _fp(reads=("/home/alice/Documents",))
        escapes = soundness_escapes(fp, (("write", "/etc/passwd"),))
        assert escapes == ("write:/etc/passwd",)

    def test_sentinel_touches_always_escape(self):
        fp = _fp(reads=("/",))
        assert soundness_escapes(fp, (("read", "<detached>"),)) == \
            ("read:<detached>",)

    def test_missing_footprint_escapes_everything(self):
        assert soundness_escapes(None, (("read", "/a"), ("exec", "/b"))) == \
            ("read:/a", "exec:/b")

    def test_home_expansion_matches_may_depend(self):
        fp = _fp(reads=("~/Documents",))
        touched = (("read", "/home/alice/Documents/x"),)
        assert soundness_escapes(fp, touched, home="/home/alice") == ()
        assert soundness_escapes(fp, touched, home="/home/bob") != ()


class TestWorldDeltaAnalyzer:
    def test_untouched_fork_is_clean(self):
        kernel = World().boot().kernel
        assert world_delta_between(kernel.fork(), kernel).clean

    def test_patched_file_yields_exactly_that_path(self):
        world = World().for_user("alice").with_jpeg_samples().boot()
        template = world.kernel
        fork = template.fork()
        from repro.world.image import WorldBuilder

        WorldBuilder(fork).write_file("/tmp/new.txt", b"x")
        delta = world_delta_between(fork, template)
        # /tmp pre-exists, so the write set is exactly the new file
        # (plus /tmp itself: its entry map changed).
        assert "/tmp/new.txt" in delta.writes
        assert all(prefixes_intersect(w, "/tmp") for w in delta.writes)
        assert not delta.config_mutation and not delta.watermark_drift

    def test_fresh_directory_collapses_to_its_prefix(self):
        world = World().boot()
        template = world.kernel
        fork = template.fork()
        from repro.world.image import WorldBuilder

        WorldBuilder(fork).write_file("/srv/depot/new.txt", b"x")
        delta = world_delta_between(fork, template)
        # A brand-new subtree reports the topmost added entry — a prefix
        # covering everything beneath it (conservative and O(1)).
        assert any(prefixes_intersect(w, "/srv/depot/new.txt")
                   for w in delta.writes)

    def test_process_spawn_is_watermark_drift(self):
        kernel = World().boot().kernel
        fork = kernel.fork()
        fork.spawn_process("root", "/")
        delta = world_delta_between(fork, kernel)
        assert delta.watermark_drift and not delta.clean

    def test_config_mutation_is_detected(self):
        kernel = World().boot().kernel
        fork = kernel.fork()
        proc = fork.spawn_process("root", "/")
        fork.sysctl.set(proc, "kern.hostname", "mutated")
        delta = world_delta_between(fork, kernel)
        assert delta.config_mutation
        assert delta.watermark_drift  # the spawn itself drifted the pids

    def test_world_delta_of_pristine_boot_is_clean(self):
        world = World().for_user("alice").with_jpeg_samples().boot()
        assert world_delta_of(world).clean

    def test_world_delta_of_patch_file(self):
        world = World().for_user("alice").with_jpeg_samples().boot()
        world.patch_file("/tmp/extra.txt", b"payload")
        delta = world_delta_of(world)
        assert "/tmp/extra.txt" in delta.writes
        assert not delta.watermark_drift
        assert not world.pristine

    def test_world_delta_of_unbooted_world_is_unknown(self):
        assert world_delta_of(World()).unknown

    def test_delta_snapshot_frame_recovers_the_write_set(self):
        import hashlib

        from repro.kernel.serialize import (restore_kernel, snapshot_kernel,
                                            snapshot_kernel_delta)
        from repro.world.image import WorldBuilder

        kernel = World().boot().kernel
        payload = snapshot_kernel(kernel)
        digest = hashlib.sha256(payload).hexdigest()
        assert world_delta_from_snapshot(payload, lambda d: payload).clean
        mutant = kernel.fork()
        WorldBuilder(mutant).write_file("/tmp/notes.txt", b"delta payload")
        frame = snapshot_kernel_delta(mutant, restore_kernel(payload), digest)
        delta = world_delta_from_snapshot(frame, lambda d: payload)
        assert "/tmp/notes.txt" in delta.writes
