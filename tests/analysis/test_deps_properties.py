"""The cache-validity theorem, property-checked end to end.

``may_depend`` advertises: **VALID ⇒ the cached result is byte-identical
to a fresh re-run against the mutated world**.  Hypothesis drives the
theorem over a family of world mutations — some disjoint from the probe
script's static footprint, some intersecting it, some drifting machine
state — and every example checks both directions:

* VALID   → the batch serves the cached result (no fork), and its
  fingerprint equals a from-scratch run on an identically mutated world;
* INVALID → the batch re-runs, and the recomputed result *still* equals
  the from-scratch run (determinism), while the verdict carries blame.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis import analyze_source, may_depend, world_delta_of
from repro.api import Batch, World, clear_result_cache

WALK_AMBIENT = """\
#lang shill/ambient
docs = open_dir("~/Documents");
entries = contents(docs);
append(stdout, path(docs) + "\\n");
"""

#: (path, payload) world patches: half provably disjoint from the walk
#: script's footprint (~/Documents + <stdout>), half intersecting it.
MUTATIONS = (
    ("/tmp/scratch.txt", b"disjoint"),
    ("/srv/depot/log.txt", b"disjoint tree"),
    ("/home/bob/inbox.txt", b"other user"),
    ("/home/alice/notes.txt", b"same home, sibling of Documents"),
    ("/home/alice/Documents/extra.jpg", b"intersecting"),
    ("/home/alice/Documents/deep/nested.txt", b"intersecting subtree"),
)


def _world() -> World:
    return World().for_user("alice").with_jpeg_samples()


def _fresh_fingerprint(path: str, payload: bytes) -> bytes:
    """A from-scratch (cache-free) run against an identically mutated
    world — the ground truth every served result must match."""
    world = _world()
    world.patch_file(path, payload)
    [result] = Batch(world, cache=False).add(WALK_AMBIENT, name="walk").run()
    return result.fingerprint()


@settings(max_examples=len(MUTATIONS), deadline=None)
@given(st.sampled_from(MUTATIONS))
def test_valid_verdicts_serve_byte_identical_results(mutation):
    path, payload = mutation
    clear_result_cache()
    world = _world()
    Batch(world).add(WALK_AMBIENT, name="walk").run()

    world.patch_file(path, payload)
    footprint = analyze_source("walk", WALK_AMBIENT).footprint
    verdict = may_depend(footprint, world_delta_of(world), home="/home/alice")

    batch = Batch(world).add(WALK_AMBIENT, name="walk")
    [served] = batch.run()
    assert served.fingerprint() == _fresh_fingerprint(path, payload)

    if verdict.valid:
        assert batch.verdicts[0] == "hit"
        assert batch.stats == {"jobs": 1, "cache_hits": 1, "forks": 0}
    else:
        assert verdict.blame
        assert batch.verdicts[0] == verdict.blame[0]
        assert batch.stats["cache_hits"] == 0


@settings(max_examples=len(MUTATIONS), deadline=None)
@given(st.sampled_from(MUTATIONS))
def test_decision_procedure_matches_path_intersection(mutation):
    """The verdict agrees with plain prefix arithmetic on this family:
    a patch under /home/alice/Documents invalidates, anything else
    (disjoint by construction) stays VALID."""
    path, payload = mutation
    world = _world()
    world.boot()
    world.patch_file(path, payload)
    footprint = analyze_source("walk", WALK_AMBIENT).footprint
    verdict = may_depend(footprint, world_delta_of(world), home="/home/alice")
    if path.startswith("/home/alice/Documents/"):
        assert verdict.state == "invalid"
        assert any(blame.startswith("invalidated-by:") for blame in verdict.blame)
    else:
        assert verdict.valid
