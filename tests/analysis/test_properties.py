"""Soundness properties of the footprint analysis.

The contract we advertise in docs/linting.md: if a script lints clean
and runs clean, its static footprint covers everything the run actually
touched.  Checked two ways — a hypothesis-generated family of small
ambient scripts over the test kernel, and the four shipped case-study
suites cross-checked against the kernel's audit log and KernelStats.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis import lint_source
from repro.api import Session, as_kernel
from repro.casestudies import apache, findgrep, grading, package_mgmt
from repro.kernel import Kernel
from repro.kernel.vfs import VType

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def audit_entries(kernel):
    if kernel.mac.find("shill") is None:
        return []  # no sandboxes were ever created: nothing was audited
    entries = []
    for record in kernel.shill_policy().sessions.audit_records():
        entries.extend(record.log.entries)
    return entries


def covered(target: str, footprint) -> bool:
    """True when a path the kernel audited falls under some footprint
    prefix (reads, writes or executes)."""
    universe = footprint.reads + footprint.writes + footprint.executes
    return any(target == prefix
               or target.startswith(prefix.rstrip("/") + "/")
               or prefix == "/"
               for prefix in universe)


def assert_audit_covered(kernel, footprint, *, allow_denies: bool = False):
    entries = audit_entries(kernel)
    if not allow_denies:
        denies = [e for e in entries if e.kind == "deny"]
        assert denies == [], denies
    granted = [e.target for e in entries if e.kind in ("grant", "auto-grant")]
    uncovered = [t for t in granted if not covered(t, footprint)]
    assert uncovered == [], uncovered


# ---------------------------------------------------------------------------
# generated ambient scripts
# ---------------------------------------------------------------------------

FILES = ("/home/alice/notes.txt", "/home/alice/dog.jpg", "/home/bob/cat.txt")


def fresh_kernel() -> Kernel:
    """The conftest ``kernel`` tree, built per hypothesis example (the
    function-scoped fixture cannot be reused across examples)."""
    k = Kernel()
    k.users.add_user("alice", 1001, 1001)
    k.users.add_user("bob", 1002, 1002)
    home = k.vfs.create(k.vfs.root, "home", VType.VDIR, 0o755, 0, 0)
    alice = k.vfs.create(home, "alice", VType.VDIR, 0o755, 1001, 1001)
    bob = k.vfs.create(home, "bob", VType.VDIR, 0o755, 1002, 1002)
    for parent, name, uid in ((alice, "notes.txt", 1001),
                              (alice, "dog.jpg", 1001),
                              (bob, "cat.txt", 1002)):
        node = k.vfs.create(parent, name, VType.VREG, 0o644, uid, uid)
        assert node.data is not None
        node.data.extend(b"payload")
    return k

ops = st.lists(
    st.tuples(st.sampled_from(("read", "append")), st.sampled_from(FILES)),
    min_size=1, max_size=6)


def build_script(operations) -> str:
    lines = ["#lang shill/ambient"]
    for i, (op, path) in enumerate(operations):
        lines.append(f'f{i} = open_file("{path}");')
        if op == "read":
            lines.append(f"read(f{i});")
        else:
            lines.append(f'append(f{i}, "x");')
    return "\n".join(lines) + "\n"


@given(operations=ops)
@settings(max_examples=25, deadline=None)
def test_clean_lint_and_clean_run_imply_footprint_covers_ops(operations):
    kernel = fresh_kernel()
    source = build_script(operations)
    report = lint_source("gen.ambient", source)
    assert report.clean, report.diagnostics

    # Root has ambient authority over every fixture file: the run is
    # clean by construction, so the property's hypothesis holds.
    result = Session(kernel, user="root", cwd="/").run_ambient(source, "gen.ambient")
    assert result.ok

    footprint = report.footprint
    for op, path in operations:
        if op == "read":
            assert path in footprint.reads
        else:
            assert path in footprint.writes
        assert footprint.touches(path)
    assert_audit_covered(kernel, footprint)


# ---------------------------------------------------------------------------
# the four case studies: footprint vs. what the kernel audited
# ---------------------------------------------------------------------------


def test_findgrep_footprint_covers_audited_grants():
    source = findgrep.SIMPLE_AMBIENT.format(out="/root/matches.txt")
    report = lint_source("findgrep_simple.ambient", source,
                         registry=findgrep.SCRIPTS)
    assert not report.errors

    kernel = as_kernel(findgrep.usr_src_world())
    result = findgrep.run_simple(kernel)
    assert result.matches  # the grep actually found the mac_ hooks

    footprint = report.footprint
    assert "/usr/src" in footprint.reads
    assert footprint.wallet
    assert_audit_covered(kernel, footprint)
    if kernel.stats.execs:
        assert footprint.executes or footprint.wallet


def test_grading_footprint_covers_audited_grants():
    report = lint_source("grading_shill.ambient",
                         grading.PURE_SHILL_AMBIENT_SCRIPT,
                         registry=grading.SCRIPTS)
    assert not report.errors

    kernel = as_kernel(grading.grading_world())
    result = grading.run_shill_grading(kernel)
    assert result.grades  # every student got a grade

    # This suite's sandboxes probe beyond their grants on purpose (the
    # paper's isolation demo), so denies are expected — the soundness
    # claim is about what was *granted*.
    assert_audit_covered(kernel, report.footprint, allow_denies=True)


def test_apache_footprint_covers_audited_grants():
    report = lint_source("apache.ambient", apache.AMBIENT_SCRIPT,
                         registry=apache.SCRIPTS)
    assert not report.errors

    kernel = as_kernel(apache.web_world())
    result = apache.apache_bench(kernel, requests=4)
    assert result.responses and "GET" in result.log_text

    footprint = report.footprint
    assert footprint.network
    assert "/var/log/httpd-access.log" in footprint.writes
    assert_audit_covered(kernel, footprint)
    if kernel.stats.execs:
        assert footprint.executes or footprint.wallet


def test_package_mgmt_footprint_covers_audited_grants():
    source = package_mgmt.AMBIENT_SCRIPT_TEMPLATE.format(
        downloads="/root/downloads", prefix="/usr/local/emacs")
    report = lint_source("emacs.ambient", source,
                         registry=package_mgmt.SCRIPTS)
    assert not report.errors

    kernel = as_kernel(package_mgmt.emacs_world())
    package_mgmt.run_full_ambient(kernel)

    footprint = report.footprint
    assert footprint.network
    assert any(p.startswith("/usr/local/emacs") for p in footprint.writes)
    assert_audit_covered(kernel, footprint)
    if kernel.stats.execs:
        assert footprint.executes or footprint.wallet
