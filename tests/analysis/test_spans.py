"""Span round-trips: every AST node knows where it came from, and the
(line, col) it reports slices the original source at the construct it
describes — the property every lint diagnostic's usefulness rests on."""

from __future__ import annotations

import dataclasses

from repro.analysis import lint_source
from repro.analysis.corpus import shipped_corpus
from repro.lang import ast_ as A
from repro.lang.modules import read_lang
from repro.lang.parser import parse_source


def walk(node):
    if isinstance(node, A.Node):
        yield node
        for field in dataclasses.fields(node):
            yield from walk(getattr(node, field.name))
    elif isinstance(node, (list, tuple)):
        for item in node:
            yield from walk(item)


def parse(source: str, name: str = "t"):
    lang, body = read_lang(source)
    return parse_source(body, lang, name)


def at(source: str, span: A.Span) -> str:
    """The source text starting at a span (1-indexed line and col)."""
    return source.splitlines()[span.line - 1][span.col - 1:]


def test_every_node_in_the_shipped_corpus_carries_a_span():
    checked = 0
    for suite, scripts in shipped_corpus().items():
        for name, source in scripts.items():
            for node in walk(parse(source, f"{suite}/{name}")):
                assert node.span != A.NO_SPAN, (
                    f"{suite}/{name}: {type(node).__name__} has no span")
                checked += 1
    assert checked > 1000  # the corpus is not trivially empty


SRC = """\
#lang shill/cap
provide greet :
  {who : file(+read, +stat) \\/ dir(+lookup)} -> void;
greet = fun(who) {
  line = read(who);
  append(stdout, line + "!");
}
"""


def test_spans_point_at_their_source_text():
    module = parse(SRC)
    # #lang consumes line 1; parser line numbers still refer to the
    # full original source because read_lang blanks the directive line.
    nodes = list(walk(module))
    by_type = {}
    for node in nodes:
        by_type.setdefault(type(node).__name__, []).append(node)

    [provide] = by_type["Provide"]
    assert at(SRC, provide.span).startswith("provide greet")
    read_item, stat_item, lookup_item = by_type["CtcPrivItem"]
    assert at(SRC, read_item.span).startswith("+read")
    assert at(SRC, stat_item.span).startswith("+stat")
    assert at(SRC, lookup_item.span).startswith("+lookup")
    [fun] = by_type["Fun"]
    assert at(SRC, fun.span).startswith("fun(who)")
    calls = by_type["Call"]
    assert any(at(SRC, c.span).startswith("read(who)") for c in calls)
    assert any(at(SRC, c.span).startswith("append(stdout") for c in calls)
    for var in by_type["Var"]:
        if var.name in ("who", "line", "stdout"):
            assert at(SRC, var.span).startswith(var.name)


def test_spans_survive_multiline_strings():
    source = (
        '#lang shill/ambient\n'
        'banner = "first\n'
        'second";\n'
        'log = open_file("/tmp/x");\n'
    )
    module = parse(source)
    mint = [n for n in walk(module)
            if isinstance(n, A.Call) and getattr(n.fn, "name", "") == "open_file"]
    assert mint[0].span.line == 4
    assert at(source, mint[0].span).startswith('open_file("/tmp/x")')


def test_diagnostic_spans_always_index_real_source():
    # Every diagnostic the default rules emit over a deliberately messy
    # script must carry a span that lands inside the source text.
    source = """\
#lang shill/cap
require "missing.cap";
provide a : {f : file(+read, +write)} -> void;
provide b : {g : nonsense_ctc} -> void;
a = fun(f) { append(f, "x"); }
b = fun(g) { read(g); }
"""
    report = lint_source("messy.cap", source)
    assert report.diagnostics  # SH001/SH002/SH004/SH008 all have material
    lines = source.splitlines()
    for diag in report.diagnostics:
        assert 1 <= diag.line <= len(lines), diag
        assert 1 <= diag.col <= len(lines[diag.line - 1]) + 1, diag
