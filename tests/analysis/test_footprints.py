"""Footprint inference: the analyzer's read/write/execute prefix sets,
network and wallet flags, and per-export parameter privileges — plus the
shipped-corpus self-lint the CI baseline gate is built on."""

from __future__ import annotations

from repro.analysis import lint_source
from repro.analysis.corpus import lint_corpus
from repro.analysis.footprint import (
    FP_EXEC_PRIVS,
    FP_READ_PRIVS,
    FP_WRITE_PRIVS,
    classify_privs,
)
from repro.analysis.lint import render_human, render_json, rule_counts
from repro.sandbox.privileges import Priv


def test_classification_partitions_are_disjoint():
    assert not (FP_READ_PRIVS & FP_WRITE_PRIVS)
    assert not (FP_READ_PRIVS & FP_EXEC_PRIVS)
    assert not (FP_WRITE_PRIVS & FP_EXEC_PRIVS)
    # A prefix that is only walked is not a prefix that was read.
    reads, writes, executes = classify_privs({Priv.LOOKUP, Priv.STAT, Priv.PATH})
    assert (reads, writes, executes) == (False, False, False)
    reads, writes, executes = classify_privs({Priv.READ, Priv.APPEND, Priv.EXEC})
    assert (reads, writes, executes) == (True, True, True)


def test_ambient_footprint_classifies_path_prefixes():
    report = lint_source("mix.ambient", """\
#lang shill/ambient
notes = open_file("/home/alice/notes.txt");
log = open_file("/var/log/app.log");
tool = open_file("/usr/bin/tool");
scratch = open_dir("/tmp");
append(log, read(notes));
exec(tool, []);
create_dir(scratch, "work");
""")
    fp = report.footprint
    assert fp.reads == ("/home/alice/notes.txt", "/usr/bin/tool")
    assert "/var/log/app.log" in fp.writes and "/tmp" in fp.writes
    assert fp.executes == ("/usr/bin/tool",)
    assert not fp.network and not fp.wallet
    assert fp.touches("/tmp/work/deep") and not fp.touches("/etc")


def test_wallet_and_network_flags():
    report = lint_source("netwal.ambient", """\
#lang shill/ambient
wallet = create_wallet();
populate_native_wallet(wallet, open_dir("/"), ["curl"]);
curl = pkg_native("curl", wallet);
curl(["http://example.com"], socket_factory);
""")
    fp = report.footprint
    assert fp.wallet and fp.network
    # populate's root is read and executed (binary lookup), not written.
    assert "/" in fp.reads and "/" in fp.executes and "/" not in fp.writes


def test_export_parameter_footprints():
    report = lint_source("copy.cap", """\
#lang shill/cap
provide copy : {src : file(+read), dst : file(+append)} -> void;
copy = fun(src, dst) { append(dst, read(src)); }
""")
    [export] = report.footprint.exports
    assert export.name == "copy"
    src, dst = export.params
    assert (src.name, src.privileges) == ("src", ("read",))
    assert (dst.name, dst.privileges) == ("dst", ("append",))
    assert not src.escapes and not src.network and not src.wallet


def test_derived_uses_show_up_on_the_parameter():
    report = lint_source("walkdir.cap", """\
#lang shill/cap
provide sweep : {d : dir(+contents, +lookup with {+read})} -> void;
sweep = fun(d) {
  for name in contents(d) {
    read(lookup(d, name));
  }
}
""")
    [export] = report.footprint.exports
    [d] = export.params
    assert "contents" in d.privileges and "lookup" in d.privileges
    assert any("read" in inner for inner in dict(d.derived).values())


def test_footprint_json_shape_is_stable():
    report = lint_source("tiny.ambient", """\
#lang shill/ambient
x = open_file("/tmp/x");
read(x);
""")
    payload = report.footprint.to_json()
    assert set(payload) == {"script", "lang", "privileges", "reads", "writes",
                            "executes", "network", "wallet", "exports",
                            "requires"}


# ---------------------------------------------------------------------------
# the shipped corpus (what benchmarks/baseline_lint.json pins)
# ---------------------------------------------------------------------------


def test_corpus_is_lint_clean():
    reports = lint_corpus()
    assert len(reports) == 19
    assert sum(len(r.errors) for r in reports.values()) == 0
    # The pure-SHILL grading contract is narrowed to its inferred
    # footprint (the old +lookup/+path/+stat over-grants are gone), so
    # the whole shipped corpus carries zero findings.
    assert rule_counts(reports) == {}


def test_corpus_case_study_footprints():
    reports = lint_corpus()
    apache = reports["apache/apache.ambient"].footprint
    assert "/var/www" in apache.reads
    assert "/var/log/httpd-access.log" in apache.writes
    assert apache.network and apache.wallet

    find = reports["findgrep/findgrep_simple.ambient"].footprint
    assert "/usr/src" in find.reads
    assert "/root/matches.txt" in find.writes

    emacs = reports["package_mgmt/emacs_pkg.ambient"].footprint
    assert emacs.network  # only download touches the network
    assert any(p.startswith("/usr/local") for p in emacs.writes)


def test_renderers_agree_on_totals():
    reports = lint_corpus()
    human = render_human(reports)
    payload = render_json(reports)
    assert human.endswith("19 scripts checked: 0 errors, 0 warnings")
    assert payload["summary"] == {"scripts": 19, "errors": 0, "warnings": 0,
                                  "rule_counts": {}}
    assert payload["schema_version"] == 1
