"""FakePolicyEngine: the override table, defaults, and recording."""

from __future__ import annotations

from repro.policy import Decision, FakePolicyEngine, PolicyRequest


def _req(**kw) -> PolicyRequest:
    base = dict(domain="vnode", operation="write", target="/tmp/x",
                priv="+write", sid=1, user="alice")
    base.update(kw)
    return PolicyRequest(**base)


class TestOverrides:
    def test_fresh_fake_defers_and_records_the_request(self):
        engine = FakePolicyEngine()
        req = _req()
        assert engine.pre_check(req) is Decision.DEFER
        assert engine.requests == [req]
        assert engine.records == []  # DEFER is not a decision

    def test_set_pins_a_decision(self):
        engine = FakePolicyEngine().set(domain="vnode", priv="+write",
                                        decision=Decision.DENY)
        assert engine.pre_check(_req()) is Decision.DENY
        assert engine.pre_check(_req(priv="+read")) is Decision.DEFER
        [rec] = engine.records
        assert rec.rule == "override"

    def test_most_specific_override_wins(self):
        engine = (FakePolicyEngine()
                  .set(domain="vnode", decision=Decision.ALLOW)
                  .set(domain="vnode", target="/tmp/x", priv="+write",
                       decision=Decision.DENY))
        assert engine.pre_check(_req()) is Decision.DENY
        assert engine.pre_check(_req(target="/tmp/y")) is Decision.ALLOW

    def test_later_override_refines_earlier_at_equal_specificity(self):
        engine = (FakePolicyEngine()
                  .set(domain="vnode", decision=Decision.DENY)
                  .set(domain="vnode", decision=Decision.ALLOW))
        assert engine.pre_check(_req()) is Decision.ALLOW

    def test_decision_accepts_the_string_spelling(self):
        engine = FakePolicyEngine().set(domain="vnode", decision="allow")
        assert engine.pre_check(_req()) is Decision.ALLOW


class TestDefaults:
    def test_deny_by_default_is_allow_list_mode(self):
        engine = (FakePolicyEngine().deny_by_default()
                  .set(target="/tmp/x", decision=Decision.ALLOW))
        assert engine.pre_check(_req(target="/tmp/x")) is Decision.ALLOW
        assert engine.pre_check(_req(target="/tmp/other")) is Decision.DENY

    def test_allow_by_default_is_deny_list_mode(self):
        engine = (FakePolicyEngine().allow_by_default()
                  .set(target="/tmp/x", decision=Decision.DENY))
        assert engine.pre_check(_req(target="/tmp/x")) is Decision.DENY
        assert engine.pre_check(_req(target="/tmp/other")) is Decision.ALLOW

    def test_reset_restores_pure_defer(self):
        engine = FakePolicyEngine().deny_by_default().set(decision=Decision.DENY)
        engine.pre_check(_req())
        engine.reset()
        assert engine.pre_check(_req()) is Decision.DEFER
        assert len(engine.requests) == 1  # only the post-reset request


class TestObservability:
    def test_every_configuration_change_bumps_mutations(self):
        """The dcache folds `mutations` into its stamp; a fake that
        reconfigures silently would leave stale cached walks behind."""
        engine = FakePolicyEngine()
        assert engine.mutations == 0
        engine.set(decision=Decision.DENY)
        engine.deny_by_default()
        engine.allow_by_default()
        engine.reset()
        assert engine.mutations == 4

    def test_post_check_lands_in_observed(self):
        engine = FakePolicyEngine()
        req = _req()
        engine.post_check(req, True)
        engine.post_check(req, False)
        assert engine.observed == [(req, True), (req, False)]

    def test_asked_filters_by_domain_and_operation(self):
        engine = FakePolicyEngine()
        engine.pre_check(_req(domain="vnode", operation="read"))
        engine.pre_check(_req(domain="language", operation="read"))
        engine.pre_check(_req(domain="vnode", operation="write"))
        assert len(engine.asked(domain="vnode")) == 2
        assert len(engine.asked(domain="vnode", operation="read")) == 1
        assert len(engine.asked()) == 3
