"""Engine injection end-to-end: World/Sandbox wiring, RunResult audit
records, declarative flips, and teardown attribution."""

from __future__ import annotations

from repro.api import World
from repro.api.sandboxes import Sandbox
from repro.policy import Decision, FakePolicyEngine

#: A tight shill-run policy that lets /bin/cat read exactly one file.
CAT_POLICY = (
    "/ : +lookup with {}\n"
    "/home : +lookup with {}\n"
    "/lib : +lookup, +read, +stat, +path\n"
    "/libexec : +lookup, +read, +stat, +path\n"
    "/home/alice : +lookup with {}\n"
    "/home/alice/Documents : +lookup, +stat\n"
    "/home/alice/Documents/notes.txt : +read, +stat, +path\n"
)
TARGET = "/home/alice/Documents/notes.txt"
ARGV = ["/bin/cat", TARGET]


def _jpeg_world() -> World:
    return World().for_user("alice").with_jpeg_samples()


def _exec(world, engine=None):
    booted = world.boot()
    sandbox = Sandbox(booted.kernel, CAT_POLICY, user="alice",
                      cwd="/home/alice", engine=engine)
    return booted.kernel, sandbox.exec(ARGV)


class TestDeclarativeFlips:
    def test_baseline_grant_succeeds_without_any_engine(self):
        _, result = _exec(_jpeg_world())
        assert result.status == 0
        assert result.stdout == "not a jpeg"
        assert not result.denials

    def test_deny_rule_revokes_a_granted_read(self):
        """A declarative rule flips an allowed read to a denial with
        zero changes to the shill-run policy — and the denial is an
        ordinary audited MAC denial in the RunResult."""
        world = _jpeg_world().with_policy_rules([
            {"name": "no-docs", "effect": "deny", "operations": ["read"],
             "paths": ["/home/alice/Documents"]},
        ])
        booted = world.boot()
        kernel = booted.kernel
        before = len(kernel.policy_engine.records)
        result = Sandbox(kernel, CAT_POLICY, user="alice",
                         cwd="/home/alice").exec(ARGV)
        assert result.status != 0
        [denial] = result.denials
        assert denial.target == TARGET
        assert "denied by rules" in denial.detail
        # The audited denial and the kernel's MAC denial count agree.
        assert result.ops["mac_denials"] == 1
        # The engine retained its own decision trail, attributed by rule.
        assert [(r.rule, r.decision)
                for r in kernel.policy_engine.records[before:]] \
            == [("no-docs", Decision.DENY)]

    def test_allow_rule_overrides_a_default_denial(self):
        """The reverse flip: the VCS deploy token is unreachable under
        an empty shill-run policy, and a kernel-wide allow default
        flips the same command to a success — audited as engine-allow
        entries, not silent."""
        from repro.casestudies.vcs import read_token_sandboxed, vcs_world

        denied = read_token_sandboxed(vcs_world().boot())
        assert denied.status != 0 and denied.denials

        flipped_world = vcs_world().with_policy_rules([], default="allow").boot()
        flipped = read_token_sandboxed(flipped_world)
        assert flipped.status == 0
        assert flipped.stdout == "hunter2-deploy-token\n"
        assert not flipped.denials
        records = flipped_world.kernel.shill_policy().sessions.audit_records()
        allows = [e for rec in records for e in rec.log.engine_allows()]
        assert allows, "engine overrides must leave an audit trail"
        assert all(e.kind == "engine-allow" for e in allows)


class TestFakeEngineInjection:
    def test_sandbox_engine_sees_the_request_stream(self):
        """A deferring fake changes nothing but records every question
        the sandbox asked — the observability seam for tests."""
        fake = FakePolicyEngine()
        _, result = _exec(_jpeg_world(), engine=fake)
        assert result.status == 0
        assert fake.requests and fake.observed
        assert {req.domain for req in fake.requests} == {"vnode", "pipe"}
        reads = fake.asked(domain="vnode", operation="read")
        assert any(req.target == TARGET for req in reads)
        # post_check observed every deferred outcome.
        assert len(fake.observed) == len(fake.requests)

    def test_fake_denial_lands_in_run_result_audit(self):
        fake = FakePolicyEngine().set(domain="vnode", operation="read",
                                      target=TARGET, decision=Decision.DENY)
        _, result = _exec(_jpeg_world(), engine=fake)
        assert result.status != 0
        [denial] = result.denials
        assert denial.target == TARGET and "denied by fake" in denial.detail

    def test_session_engine_overrides_kernel_wide(self):
        """A per-sandbox fake wins over a kernel-wide deny rule: the
        run succeeds and the kernel engine is never consulted."""
        world = _jpeg_world().with_policy_rules([
            {"name": "no-docs", "effect": "deny", "operations": ["read"],
             "paths": ["/home/alice/Documents"]},
        ])
        booted = world.boot()
        kernel = booted.kernel
        # Digest-equal worlds share boot images (and thus engine
        # instances): compare against the trail as of this boot, not [].
        before = len(kernel.policy_engine.records)
        fake = FakePolicyEngine()
        result = Sandbox(kernel, CAT_POLICY, user="alice",
                         cwd="/home/alice", engine=fake).exec(ARGV)
        assert result.status == 0
        assert fake.requests
        assert len(kernel.policy_engine.records) == before


class TestDefaultIsByteIdentical:
    def test_no_engine_and_identity_engines_fingerprint_identically(self):
        """Installing no engine, the base deferring engine, or the
        explicit CapabilityEngine must be observationally equivalent —
        same bytes, same op counts, same fingerprint."""
        from repro.policy import CapabilityEngine, PolicyEngine

        prints = []
        for engine in (None, PolicyEngine(), CapabilityEngine()):
            _, result = _exec(_jpeg_world(), engine=engine)
            prints.append(result.fingerprint())
        assert len(set(prints)) == 1


class TestTeardownAttribution:
    def test_revocations_name_the_dying_session(self):
        """Regression: teardown revoke entries (and the label-epoch
        bump) are attributed to the session being torn down, not lost
        as session-less mutations."""
        world = _jpeg_world().boot()
        kernel = world.kernel
        result = Sandbox(kernel, CAT_POLICY, user="alice",
                         cwd="/home/alice").exec(ARGV)
        assert result.status == 0
        records = kernel.shill_policy().sessions.audit_records()
        revokes = [(rec.sid, e) for rec in records
                   for e in rec.log.revocations()]
        assert revokes, "teardown must log its revocations"
        # Every revoke entry carries the sid of the session whose log
        # holds it — the dying session, never 0 or a sibling.
        assert all(e.sid == sid for sid, e in revokes)
        granted = {e.target for _, e in revokes}
        assert TARGET in granted and "/bin/cat" in granted

    def test_label_epoch_bump_names_the_causing_session(self):
        """The MAC framework's last_label_sid tracks teardown: after
        each sandbox dies, it names that session's sid."""
        world = _jpeg_world().boot()
        kernel = world.kernel
        first = Sandbox(kernel, CAT_POLICY, user="alice", cwd="/home/alice")
        assert first.exec(ARGV).status == 0
        sid_after_first = kernel.mac.last_label_sid
        second = Sandbox(kernel, CAT_POLICY, user="alice", cwd="/home/alice")
        assert second.exec(ARGV).status == 0
        sid_after_second = kernel.mac.last_label_sid
        assert sid_after_first is not None
        assert sid_after_second == sid_after_first + 1
        live = kernel.shill_policy().sessions.live_sessions()
        assert live == [], "both sandbox sessions must be torn down"
