"""RuleEngine: declarative matching, defaults, and data round-trips."""

from __future__ import annotations

import pickle

import pytest

from repro.policy import Decision, PolicyRequest, RuleEngine
from repro.policy.rules import DEFAULT_DOMAINS, RuleError


def _req(**kw) -> PolicyRequest:
    base = dict(domain="vnode", operation="read", target="/home/alice/x",
                priv="+read", sid=3, user="alice")
    base.update(kw)
    return PolicyRequest(**base)


class TestMatching:
    def test_first_matching_rule_wins(self):
        engine = RuleEngine([
            {"name": "first", "effect": "deny", "paths": ["/home/alice"]},
            {"name": "second", "effect": "allow", "paths": ["/home/alice"]},
        ])
        assert engine.pre_check(_req()) is Decision.DENY
        assert engine.records[-1].rule == "first"

    def test_unmatched_request_defers(self):
        engine = RuleEngine([{"effect": "deny", "paths": ["/etc"]}])
        assert engine.pre_check(_req()) is Decision.DEFER
        assert engine.records == []

    def test_paths_are_prefix_matched_on_components(self):
        engine = RuleEngine([{"effect": "deny", "paths": ["/home/alice/se"]}])
        # "/home/alice/secrets" is NOT under the prefix "/home/alice/se"
        # — prefixes are path components, not string prefixes.
        assert engine.pre_check(_req(target="/home/alice/secrets")) is Decision.DEFER
        assert engine.pre_check(_req(target="/home/alice/se/x")) is Decision.DENY
        assert engine.pre_check(_req(target="/home/alice/se")) is Decision.DENY

    def test_operations_are_fnmatch_globs(self):
        engine = RuleEngine([{"effect": "deny", "operations": ["lookup *"]}])
        assert engine.pre_check(_req(operation="lookup 'secrets'")) is Decision.DENY
        assert engine.pre_check(_req(operation="read")) is Decision.DEFER

    def test_users_and_privs_filter(self):
        engine = RuleEngine([
            {"effect": "deny", "users": ["bob"], "privs": ["+write"]},
        ])
        assert engine.pre_check(_req(user="bob", priv="+write")) is Decision.DENY
        assert engine.pre_check(_req(user="bob", priv="+read")) is Decision.DEFER
        assert engine.pre_check(_req(user="alice", priv="+write")) is Decision.DEFER

    def test_rules_skip_mac_domain_unless_named(self):
        """Framework-level mac hooks have no session audit trail; rules
        must opt in to them explicitly."""
        blanket = RuleEngine([{"effect": "deny"}])
        assert blanket.pre_check(_req(domain="mac", sid=0)) is Decision.DEFER
        optin = RuleEngine([{"effect": "deny", "domains": ["mac"]}])
        assert optin.pre_check(_req(domain="mac", sid=0)) is Decision.DENY

    def test_default_answers_unmatched_but_never_mac(self):
        """The engine default is scoped exactly like default-domain
        rules: a deny default can never produce an unaudited
        framework-level denial."""
        engine = RuleEngine([], default="deny")
        for domain in sorted(DEFAULT_DOMAINS):
            assert engine.pre_check(_req(domain=domain)) is Decision.DENY, domain
        assert engine.pre_check(_req(domain="mac", sid=0)) is Decision.DEFER
        assert engine.records[-1].rule == "default-deny"


class TestData:
    def test_spec_round_trip(self):
        engine = RuleEngine(
            [{"name": "no-secrets", "effect": "deny",
              "paths": ["/home/alice/secrets"], "operations": ["read"]}],
            default="allow", name="tenant-a")
        clone = RuleEngine.from_spec(engine.to_spec())
        assert clone.to_spec() == engine.to_spec()
        assert clone.digest() == engine.digest()

    def test_json_round_trip_and_bare_list(self):
        engine = RuleEngine.from_json('[{"effect": "deny", "paths": ["/etc"]}]')
        assert engine.pre_check(_req(target="/etc/passwd")) is Decision.DENY
        assert RuleEngine.from_json(engine.to_json()).digest() == engine.digest()

    def test_equal_rules_equal_digest_distinct_rules_distinct(self):
        a = RuleEngine([{"effect": "deny", "paths": ["/etc"]}])
        b = RuleEngine([{"effect": "deny", "paths": ["/etc"]}])
        c = RuleEngine([{"effect": "deny", "paths": ["/tmp"]}])
        assert a.digest() == b.digest() != c.digest()

    def test_engine_is_immutable_and_picklable(self):
        engine = RuleEngine([{"effect": "deny", "paths": ["/etc"]}])
        engine.pre_check(_req(target="/etc/passwd"))
        assert engine.mutations == 0
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.digest() == engine.digest()
        assert clone.records == []

    @pytest.mark.parametrize("bad", [
        [{"paths": ["/etc"]}],                       # missing effect
        [{"effect": "maybe"}],                       # unknown effect
        [{"effect": "deny", "domains": ["nope"]}],   # unknown domain
        [{"effect": "deny", "paths": "/etc"}],       # string, not list
        [{"effect": "deny", "color": "red"}],        # unknown field
    ])
    def test_malformed_rules_are_rejected(self, bad):
        with pytest.raises(RuleError):
            RuleEngine(bad)

    def test_malformed_default_and_json_rejected(self):
        with pytest.raises(RuleError):
            RuleEngine([], default="sometimes")
        with pytest.raises(RuleError):
            RuleEngine.from_json("{not json")
