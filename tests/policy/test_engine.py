"""The PolicyEngine protocol: decisions, records, and resolution."""

from __future__ import annotations

import pickle

from repro.policy import (
    CapabilityEngine,
    Decision,
    DecisionRecord,
    PolicyEngine,
    PolicyRequest,
    engine_for,
)


def _req(**kw) -> PolicyRequest:
    base = dict(domain="vnode", operation="read", target="/home/alice/x",
                priv="+read", sid=3, user="alice")
    base.update(kw)
    return PolicyRequest(**base)


class TestProtocol:
    def test_base_engine_defers_everything(self):
        engine = PolicyEngine()
        assert engine.pre_check(_req()) is Decision.DEFER
        assert engine.pre_check(_req(domain="mac", sid=0)) is Decision.DEFER
        assert engine.records == []

    def test_base_engine_is_passive(self):
        """The passive flag is the hot path's license to skip request
        construction entirely — the base must keep it."""
        assert PolicyEngine.passive is True
        assert CapabilityEngine.passive is True

    def test_capability_engine_is_digestible(self):
        """The explicit no-op spelling must not cost a world its boot
        cache."""
        assert CapabilityEngine().digest() == "capability"
        assert PolicyEngine().digest() is None

    def test_record_retains_decision_trail(self):
        engine = PolicyEngine()
        req = _req()
        engine.record(req, Decision.DENY, rule="block")
        [rec] = engine.records
        assert rec == DecisionRecord(req, Decision.DENY, engine.name, "block")
        assert "deny" in rec.format() and "block" in rec.format()

    def test_request_describe_names_session_or_user(self):
        assert "session 3" in _req().describe()
        assert "alice" in _req(sid=0).describe()

    def test_records_are_dropped_on_pickle(self):
        """The decision trail is runtime observability: equal machines
        must produce equal snapshot bytes regardless of what either one
        was asked."""
        engine = PolicyEngine()
        engine.record(_req(), Decision.ALLOW)
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.records == []


class TestEngineFor:
    class _Session:
        engine = None

    def test_no_engine_anywhere_is_none(self, kernel):
        assert engine_for(self._Session(), kernel) is None

    def test_kernel_wide_engine_applies(self, kernel):
        engine = CapabilityEngine()
        kernel.policy_engine = engine
        assert engine_for(self._Session(), kernel) is engine

    def test_session_engine_overrides_kernel_wide(self, kernel):
        kernel.policy_engine = CapabilityEngine()
        session = self._Session()
        session.engine = PolicyEngine()
        assert engine_for(session, kernel) is session.engine
