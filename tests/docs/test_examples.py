"""Every ``python`` code block in docs/*.md must execute.

Documentation that cannot run is documentation that has drifted: this
suite extracts every fenced ```python block from the docs tree and
executes it.  Blocks in one file share a namespace, top to bottom, so a
page can build its example progressively.  Shell/pseudocode snippets
use ```sh / ```text fences and are ignored — the rule is simply that
anything *claiming* to be Python runs.

Assertions inside the blocks are part of the docs (they show the reader
what to expect) and double as the test oracle here.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

DOCS_DIR = Path(__file__).resolve().parents[2] / "docs"

_FENCE = re.compile(r"^```python[ \t]*\n(.*?)^```[ \t]*$",
                    re.MULTILINE | re.DOTALL)


def _python_blocks(path: Path) -> list[str]:
    return [match.group(1) for match in _FENCE.finditer(path.read_text())]


def _doc_pages() -> list[Path]:
    pages = sorted(DOCS_DIR.glob("*.md"))
    assert pages, f"no docs found under {DOCS_DIR}"
    return pages


@pytest.mark.parametrize("page", _doc_pages(), ids=lambda p: p.name)
def test_doc_code_blocks_execute(page):
    from repro.api import clear_result_cache

    blocks = _python_blocks(page)
    if not blocks:
        pytest.skip(f"{page.name} has no python blocks")
    clear_result_cache()
    namespace: dict = {"__name__": f"docs.{page.stem}"}
    for index, block in enumerate(blocks):
        code = compile(block, f"{page}#block{index + 1}", "exec")
        try:
            exec(code, namespace)  # noqa: S102 - executing our own docs
        finally:
            clear_result_cache()


def test_every_doc_page_is_linked_from_readme():
    """docs/ pages nobody can find are docs nobody reads: the README
    must link each one."""
    readme = (DOCS_DIR.parent / "README.md").read_text()
    for page in _doc_pages():
        assert f"docs/{page.name}" in readme, (
            f"README.md does not link docs/{page.name}")


# ---------------------------------------------------------------------------
# the public surface's docstrings
# ---------------------------------------------------------------------------

def _public_exports():
    import repro.api
    import repro.api.executors

    seen = set()
    for module in (repro.api, repro.api.executors):
        for name in module.__all__:
            obj = getattr(module, name)
            if id(obj) in seen:
                continue
            seen.add(id(obj))
            yield f"{module.__name__}.{name}", name, obj


def test_every_export_has_a_docstring():
    """Every class and function exported from the public surface
    documents itself (constants carry ``#:`` comments instead — Python
    cannot attach docstrings to them)."""
    import inspect

    missing = []
    for qualname, _name, obj in _public_exports():
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if not (obj.__doc__ or "").strip():
            missing.append(qualname)
    assert missing == [], f"exports without docstrings: {missing}"


def _docstring_examples():
    """(qualname, code) for every ``Example::`` block in an exported
    docstring."""
    import inspect
    import textwrap

    for qualname, _name, obj in _public_exports():
        # getdoc strips the trailing newline, which would otherwise cut
        # an example's last line out of the fence match.
        doc = (inspect.getdoc(obj) or "") + "\n"
        for match in re.finditer(
                r"^Example[^\n]*::\n\n((?:(?:    .*)?\n)+)", doc,
                re.MULTILINE):
            yield qualname, textwrap.dedent(match.group(1))


EXAMPLES = list(_docstring_examples())


def test_the_primary_surface_carries_examples():
    """The names a new user meets first must show, not tell."""
    documented = {qualname.rsplit(".", 1)[-1] for qualname, _ in EXAMPLES}
    expected = {"World", "Session", "Sandbox", "Batch", "RunResult",
                "ScriptRegistry", "BoundedCache", "SequentialExecutor",
                "ThreadExecutor", "ProcessExecutor", "StoreExecutor",
                "RemoteExecutor", "ServeExecutor", "resolve_executor",
                "create_executor", "register_executor"}
    assert expected <= documented, (
        f"missing Example:: blocks on: {sorted(expected - documented)}")


@pytest.mark.parametrize("qualname,code", EXAMPLES,
                         ids=[q for q, _ in EXAMPLES])
def test_docstring_examples_execute(qualname, code):
    """An example that does not run is worse than none: execute every
    ``Example::`` block on the public surface.  Examples that need live
    agents spawn their own (and clean up)."""
    from repro.api import clear_result_cache

    clear_result_cache()
    try:
        exec(compile(code, f"<{qualname} example>", "exec"),
             {"__name__": f"example.{qualname}"})
    finally:
        clear_result_cache()
