"""Error-path tests for the simulated executables."""

from __future__ import annotations

import pytest

from repro.world import build_world

from tests.programs.test_programs import run  # reuse the unsandboxed runner


@pytest.fixture(scope="module")
def world():
    return build_world()


class TestUsageErrors:
    def test_cp_wrong_arity(self, world):
        status, _, err = run(world, ["cp", "/etc/passwd"])
        assert status == 64 and "usage" in err

    def test_cp_directory_without_r(self, world):
        run(world, ["mkdir", "/tmp/cpd"])
        status, _, err = run(world, ["cp", "/tmp/cpd", "/tmp/cpd2"])
        assert status == 1 and "not copied" in err

    def test_mv_wrong_arity(self, world):
        assert run(world, ["mv", "/only-one"])[0] == 64

    def test_grep_no_pattern(self, world):
        status, _, err = run(world, ["grep"])
        assert status == 2 and "usage" in err

    def test_grep_unknown_option(self, world):
        assert run(world, ["grep", "-z", "pat", "/etc/passwd"])[0] == 2

    def test_find_no_args(self, world):
        assert run(world, ["find"])[0] == 64

    def test_tar_unknown_mode(self, world):
        run(world, ["touch", "/tmp/t.tar"])
        assert run(world, ["tar", "qf", "/tmp/t.tar"])[0] == 64

    def test_tar_bad_archive(self, world):
        world.syscalls(world.spawn_process("root", "/")).write_whole(
            "/tmp/bogus.tar", b"not an archive"
        )
        status, _, err = run(world, ["tar", "xf", "/tmp/bogus.tar", "-C", "/tmp"])
        assert status == 1 and "SIMTAR" in err

    def test_gzip_decompress_non_gz(self, world):
        world.syscalls(world.spawn_process("root", "/")).write_whole("/tmp/raw", b"data")
        assert run(world, ["gzip", "-d", "/tmp/raw"])[0] == 1

    def test_diff_missing_file(self, world):
        assert run(world, ["diff", "/etc/passwd", "/no/such"])[0] == 2

    def test_ldd_non_elf(self, world):
        status, _, err = run(world, ["ldd", "/etc/passwd"])
        assert status == 1 and "ENOEXEC" in err

    def test_jpeginfo_no_args(self, world):
        assert run(world, ["jpeginfo"])[0] == 1

    def test_gmake_missing_makefile(self, world):
        run(world, ["mkdir", "/tmp/empty-proj"])
        status, _, err = run(world, ["gmake", "-C", "/tmp/empty-proj"])
        assert status == 2 and "ENOENT" in err

    def test_gmake_no_rule(self, world):
        sys = world.syscalls(world.spawn_process("root", "/"))
        run(world, ["mkdir", "/tmp/proj-nr"])
        sys.write_whole("/tmp/proj-nr/Makefile", b"all: missing-dep\n\techo hi\n")
        status, _, err = run(world, ["gmake", "-C", "/tmp/proj-nr"])
        assert status == 2 and "no rule" in err

    def test_gmake_failing_command_stops(self, world):
        sys = world.syscalls(world.spawn_process("root", "/"))
        run(world, ["mkdir", "/tmp/proj-fail"])
        sys.write_whole(
            "/tmp/proj-fail/Makefile",
            b"all:\n\tgrep nomatch /etc/passwd\n\ttouch /tmp/proj-fail/after\n",
        )
        status, _, _ = run(world, ["gmake", "-C", "/tmp/proj-fail"])
        assert status == 1
        assert run(world, ["ls", "/tmp/proj-fail/after"])[0] == 1  # never ran

    def test_ocamlc_syntax_error(self, world):
        sys = world.syscalls(world.spawn_process("root", "/"))
        sys.write_whole("/tmp/bad.ml", b"syntax-error here\n")
        status, _, err = run(world, ["ocamlc", "-o", "/tmp/bad.byte", "/tmp/bad.ml"])
        assert status == 2 and "syntax error" in err

    def test_ocamlrun_not_bytecode(self, world):
        status, _, err = run(world, ["ocamlrun", "/etc/passwd"])
        assert status == 2 and "not a bytecode" in err

    def test_curl_no_url(self, world):
        assert run(world, ["curl"])[0] == 2

    def test_curl_404_from_mirror(self, world):
        """A mirror that answers 404 yields curl status 22."""
        def notfound(server_side):
            server_side.peer.recv_buffer.extend(b"HTTP/1.0 404 Not Found\n\n")

        world.network.register_service(("bad.example", 80), notfound)
        status, _, err = run(world, ["curl", "http://bad.example/x"])
        assert status == 22 and "404" in err

    def test_httpd_missing_config(self, world):
        status, _, err = run(world, ["httpd", "-f", "/no/such.conf"])
        assert status == 1 and "config" in err


class TestWcHeadStdin:
    def test_wc_stdin(self, world):
        status, out, _ = run(world, ["wc"], stdin=b"a b\nc\n")
        assert status == 0 and out.split()[:3] == ["2", "3", "6"]

    def test_head_n(self, world):
        sys = world.syscalls(world.spawn_process("root", "/"))
        sys.write_whole("/tmp/many.txt", b"\n".join(f"l{i}".encode() for i in range(20)))
        status, out, _ = run(world, ["head", "-n", "3", "/tmp/many.txt"])
        assert status == 0 and out == "l0\nl1\nl2\n"

    def test_rm_force_ignores_missing(self, world):
        assert run(world, ["rm", "-f", "/no/such"])[0] == 0

    def test_rm_without_force_reports(self, world):
        status, _, err = run(world, ["rm", "/no/such"])
        assert status == 1 and "ENOENT" in err
