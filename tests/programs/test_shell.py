"""Tests for the simulated /bin/sh and shebang execution."""

from __future__ import annotations

import pytest

from repro.world import build_world

from tests.programs.test_programs import run


@pytest.fixture(scope="module")
def world():
    return build_world()


def sh(world, script: str, *args: str, stdin: bytes = b""):
    sys = world.syscalls(world.spawn_process("root", "/"))
    sys.write_whole("/tmp/script.sh", ("#!/bin/sh\n" + script).encode(), mode=0o755)
    return run(world, ["/tmp/script.sh", *args], stdin=stdin)


class TestBasics:
    def test_echo(self, world):
        status, out, _ = sh(world, "echo hello world\n")
        assert status == 0 and out == "hello world\n"

    def test_variables(self, world):
        status, out, _ = sh(world, "X=abc\necho $X ${X}!\n")
        assert status == 0 and out == "abc abc!\n"

    def test_positional_parameters(self, world):
        status, out, _ = sh(world, "echo $1-$2 count=$#\n", "a", "b")
        assert status == 0 and out == "a-b count=2\n"

    def test_exit_status_and_dollar_question(self, world):
        status, out, _ = sh(world, "grep nomatch /etc/passwd\necho st=$?\n")
        assert status == 0 and out == "st=1\n"

    def test_exit_builtin(self, world):
        status, _, _ = sh(world, "exit 7\necho never\n")
        assert status == 7

    def test_command_substitution(self, world):
        status, out, _ = sh(world, "B=$(basename /a/b/c.txt)\necho got $B\n")
        assert status == 0 and out == "got c.txt\n"

    def test_expr_arithmetic(self, world):
        status, out, _ = sh(world, "N=1\nN=$(expr $N + 5)\necho $N\n")
        assert status == 0 and out == "6\n"

    def test_semicolons(self, world):
        status, out, _ = sh(world, "echo one; echo two\n")
        assert status == 0 and out == "one\ntwo\n"

    def test_missing_command(self, world):
        status, _, err = sh(world, "definitely-not-a-command\n")
        assert status == 127 and "ENOENT" in err

    def test_dash_c(self, world):
        status, out, _ = run(world, ["sh", "-c", "echo inline"])
        assert status == 0 and out == "inline\n"


class TestControlFlow:
    def test_if_then_else(self, world):
        script = (
            "if grep root /etc/passwd > /dev/null\n"
            "then\n  echo found\nelse\n  echo missing\nfi\n"
        )
        assert sh(world, script)[1] == "found\n"
        script2 = script.replace("grep root", "grep zebra")
        assert sh(world, script2)[1] == "missing\n"

    def test_for_loop(self, world):
        status, out, _ = sh(world, "for x in a b c\ndo\n  echo item $x\ndone\n")
        assert status == 0 and out == "item a\nitem b\nitem c\n"

    def test_for_with_glob(self, world):
        sys = world.syscalls(world.spawn_process("root", "/"))
        run(world, ["mkdir", "-p", "/tmp/gl"])
        for name in ("x1.in", "x2.in", "skip.txt"):
            sys.write_whole(f"/tmp/gl/{name}", b"")
        status, out, _ = sh(world, "for f in /tmp/gl/*.in\ndo\n  echo $f\ndone\n")
        assert status == 0 and out == "/tmp/gl/x1.in\n/tmp/gl/x2.in\n"

    def test_nested_for_if(self, world):
        script = (
            "for x in 1 2 3\n"
            "do\n"
            "  if expr $x - 2 > /dev/null\n"
            "  then\n    echo ne $x\n"
            "  fi\n"
            "done\n"
        )
        status, out, _ = sh(world, script)
        # expr prints the result; status 1 when result == 0 (x == 2).
        assert status == 0 and out == "ne 1\nne 3\n"


class TestPipelines:
    def test_two_stage_pipeline(self, world):
        status, out, _ = sh(world, "cat /etc/passwd | grep alice\n")
        assert status == 0 and out == "alice:1001:1001\n"

    def test_three_stage_pipeline(self, world):
        status, out, _ = sh(world, "cat /etc/passwd | grep 100 | wc\n")
        assert status == 0 and out.split()[0] == "2"  # alice + tester

    def test_pipeline_status_is_last_stage(self, world):
        status, _, _ = sh(world, "cat /etc/passwd | grep nomatch\necho $?\n")
        assert status == 0  # the script itself
        _, out, _ = sh(world, "cat /etc/passwd | grep nomatch; echo st=$?\n")
        assert "st=1" in out

    def test_pipeline_with_redirect(self, world):
        sys = world.syscalls(world.spawn_process("root", "/"))
        sh(world, "cat /etc/passwd | grep root > /tmp/piped.txt\n")
        assert sys.read_whole("/tmp/piped.txt") == b"root:0:0\n"


class TestRedirections:
    def test_output_redirect(self, world):
        sys = world.syscalls(world.spawn_process("root", "/"))
        sh(world, "echo payload > /tmp/redir.txt\n")
        assert sys.read_whole("/tmp/redir.txt") == b"payload\n"

    def test_append_redirect(self, world):
        sys = world.syscalls(world.spawn_process("root", "/"))
        sh(world, "echo one > /tmp/app.txt\necho two >> /tmp/app.txt\n")
        assert sys.read_whole("/tmp/app.txt") == b"one\ntwo\n"

    def test_input_redirect(self, world):
        sys = world.syscalls(world.spawn_process("root", "/"))
        sys.write_whole("/tmp/in.txt", b"from file")
        status, out, _ = sh(world, "cat < /tmp/in.txt\n")
        assert status == 0 and out == "from file"

    def test_stderr_redirect(self, world):
        sys = world.syscalls(world.spawn_process("root", "/"))
        sh(world, "cat /no/such 2> /tmp/errlog.txt\n")
        assert b"ENOENT" in sys.read_whole("/tmp/errlog.txt")

    def test_dev_null(self, world):
        status, out, _ = sh(world, "cat /etc/passwd > /dev/null\necho quiet\n")
        assert status == 0 and out == "quiet\n"


class TestShebang:
    def test_script_without_exec_bit_refused(self, world):
        sys = world.syscalls(world.spawn_process("root", "/"))
        sys.write_whole("/tmp/noexec.sh", b"#!/bin/sh\necho hi\n", mode=0o644)
        status, _, _ = run(world, ["/tmp/noexec.sh"], user="alice")
        assert status == 126

    def test_unknown_interpreter(self, world):
        sys = world.syscalls(world.spawn_process("root", "/"))
        sys.write_whole("/tmp/bad.sh", b"#!/bin/nosuch\n", mode=0o755)
        status, _, err = run(world, ["/tmp/bad.sh"])
        assert status == 127 and "ENOENT" in err

    def test_grade_sh_script_exists_and_runs(self, world):
        """The world ships the grading task as a real shell script."""
        sys = world.syscalls(world.spawn_process("root", "/"))
        data = sys.read_whole("/usr/local/bin/grade-sh")
        assert data.startswith(b"#!/bin/sh")
