"""Tests for the simulated executables, run unsandboxed in a full world."""

from __future__ import annotations

import pytest

from repro.kernel.fdesc import OpenFile
from repro.kernel.pipes import make_pipe
from repro.kernel.syscalls import O_RDONLY, O_WRONLY
from repro.world import (
    add_emacs_mirror,
    add_grading_fixture,
    add_jpeg_samples,
    add_usr_src,
    add_web_content,
    build_world,
)


@pytest.fixture(scope="module")
def world():
    kernel = build_world()
    add_usr_src(kernel, subsystems=2, files_per_dir=8)
    add_jpeg_samples(kernel)
    return kernel


def run(kernel, argv, user="root", cwd="/", stdin: bytes = b""):
    """Run a program unsandboxed; returns (status, stdout, stderr)."""
    from repro.programs.base import resolve_in_path

    launcher = kernel.spawn_process(user, cwd)
    sys = kernel.syscalls(launcher)
    out_r, out_w = make_pipe()
    err_r, err_w = make_pipe()
    in_r, in_w = make_pipe()
    in_w.pipe.buffer.extend(stdin)
    in_w.pipe.write_open = False
    child = kernel.procs.fork(launcher)
    child.fdtable.install(0, OpenFile(in_r, O_RDONLY))
    child.fdtable.install(1, OpenFile(out_w, O_WRONLY))
    child.fdtable.install(2, OpenFile(err_w, O_WRONLY))
    path = resolve_in_path(sys, argv[0], {"PATH": "/bin:/usr/bin:/usr/local/bin"})
    _, _, vp = sys._resolve(path)
    status = kernel.exec_file(child, vp, argv)
    return status, bytes(out_r.pipe.buffer).decode(), bytes(err_r.pipe.buffer).decode()


class TestCoreutils:
    def test_echo(self, world):
        status, out, _ = run(world, ["echo", "hello", "world"])
        assert status == 0 and out == "hello world\n"

    def test_cat_file(self, world):
        status, out, _ = run(world, ["cat", "/etc/passwd"])
        assert status == 0 and "alice" in out

    def test_cat_missing_file(self, world):
        status, _, err = run(world, ["cat", "/no/such"])
        assert status == 1 and "ENOENT" in err

    def test_cat_stdin(self, world):
        status, out, _ = run(world, ["cat"], stdin=b"pass through")
        assert status == 0 and out == "pass through"

    def test_ls(self, world):
        status, out, _ = run(world, ["ls", "/bin"])
        assert status == 0 and "cat" in out.split()

    def test_mkdir_touch_rm(self, world):
        assert run(world, ["mkdir", "/tmp/t1"])[0] == 0
        assert run(world, ["touch", "/tmp/t1/f"])[0] == 0
        assert run(world, ["rm", "-r", "/tmp/t1"])[0] == 0
        status, _, _ = run(world, ["ls", "/tmp/t1"])
        assert status == 1

    def test_cp_recursive(self, world):
        run(world, ["mkdir", "-p", "/tmp/src2/inner"])
        run(world, ["touch", "/tmp/src2/inner/f"])
        assert run(world, ["cp", "-r", "/tmp/src2", "/tmp/dst2"])[0] == 0
        assert run(world, ["ls", "/tmp/dst2/inner"])[1].strip() == "f"

    def test_mv(self, world):
        run(world, ["touch", "/tmp/mv-a"])
        assert run(world, ["mv", "/tmp/mv-a", "/tmp/mv-b"])[0] == 0
        assert run(world, ["ls", "/tmp/mv-b"])[0] == 0

    def test_exec_loads_libraries(self, world):
        """Running cat opens rtld and libc: check syscall accounting."""
        before = world.stats.syscalls["open"]
        run(world, ["cat", "/etc/passwd"])
        assert world.stats.syscalls["open"] > before


class TestTextUtils:
    def test_grep_match(self, world):
        status, out, _ = run(world, ["grep", "alice", "/etc/passwd"])
        assert status == 0 and "alice" in out

    def test_grep_no_match_status_1(self, world):
        status, out, _ = run(world, ["grep", "zebra", "/etc/passwd"])
        assert status == 1 and out == ""

    def test_grep_H_prefixes_filename(self, world):
        _, out, _ = run(world, ["grep", "-H", "alice", "/etc/passwd"])
        assert out.startswith("/etc/passwd:")

    def test_grep_stdin(self, world):
        status, out, _ = run(world, ["grep", "b"], stdin=b"abc\nxyz\nlob\n")
        assert status == 0 and out == "abc\nlob\n"

    def test_find_name_pattern(self, world):
        status, out, _ = run(world, ["find", "/usr/src", "-name", "*.c"])
        assert status == 0
        files = out.splitlines()
        assert files and all(f.endswith(".c") for f in files)

    def test_find_exec_grep(self, world):
        status, out, _ = run(
            world,
            ["find", "/usr/src", "-name", "*.c", "-exec", "grep", "-H", "mac_", "{}", ";"],
        )
        assert status == 0
        assert "mac_check_" in out

    def test_diff_identical(self, world):
        assert run(world, ["diff", "/etc/passwd", "/etc/passwd"])[0] == 0

    def test_diff_different(self, world):
        status, out, _ = run(world, ["diff", "/etc/passwd", "/etc/locale.conf"])
        assert status == 1 and out

    def test_wc(self, world):
        _, out, _ = run(world, ["wc", "/etc/locale.conf"])
        assert out.split()[0] == "1"


class TestArchive:
    def test_tar_roundtrip(self, world):
        run(world, ["mkdir", "-p", "/tmp/tree/sub"])
        run(world, ["touch", "/tmp/tree/sub/file"])
        assert run(world, ["tar", "cf", "/tmp/tree.tar", "/tmp/tree"], cwd="/tmp")[0] == 0
        run(world, ["mkdir", "/tmp/out"])
        assert run(world, ["tar", "xf", "/tmp/tree.tar", "-C", "/tmp/out"])[0] == 0
        assert run(world, ["ls", "/tmp/out/tree/sub"])[1].strip() == "file"

    def test_gzip_roundtrip(self, world):
        launcher = world.spawn_process("root", "/")
        sys = world.syscalls(launcher)
        sys.write_whole("/tmp/g.txt", b"payload")
        assert run(world, ["gzip", "/tmp/g.txt"])[0] == 0
        assert run(world, ["gzip", "-d", "/tmp/g.txt.gz"])[0] == 0
        assert sys.read_whole("/tmp/g.txt") == b"payload"


class TestBuildTools:
    def test_gmake_runs_rules(self, world):
        launcher = world.spawn_process("root", "/")
        sys = world.syscalls(launcher)
        run(world, ["mkdir", "/tmp/proj"])
        sys.write_whole(
            "/tmp/proj/Makefile",
            b"OUT = /tmp/proj/out.txt\nall: prep\n\techo done\nprep:\n\ttouch $(OUT)\n",
        )
        status, out, err = run(world, ["gmake", "-C", "/tmp/proj"])
        assert status == 0, err
        sys.stat("/tmp/proj/out.txt")

    def test_cc_compiles(self, world):
        launcher = world.spawn_process("root", "/")
        sys = world.syscalls(launcher)
        sys.write_whole("/tmp/hello.c", b'#include <stdio.h>\nint main(){return 0;}\n')
        status, _, err = run(world, ["cc", "-o", "/tmp/hello", "/tmp/hello.c"])
        assert status == 0, err
        # The produced binary is executable:
        assert run(world, ["/tmp/hello"])[0] == 0

    def test_ocaml_toolchain(self, world):
        launcher = world.spawn_process("root", "/")
        sys = world.syscalls(launcher)
        sys.write_whole("/tmp/prog.ml", b"print hello-from-ocaml\n")
        assert run(world, ["ocamlc", "-o", "/tmp/prog.byte", "/tmp/prog.ml"])[0] == 0
        status, out, _ = run(world, ["ocamlrun", "/tmp/prog.byte"])
        assert status == 0 and out == "hello-from-ocaml\n"

    def test_ocamlrun_solve(self, world):
        launcher = world.spawn_process("root", "/")
        sys = world.syscalls(launcher)
        sys.write_whole("/tmp/solver.ml", b"solve\n")
        run(world, ["ocamlc", "-o", "/tmp/solver.byte", "/tmp/solver.ml"])
        status, out, _ = run(world, ["ocamlrun", "/tmp/solver.byte"], stdin=b"1 2 3\n10 20\n")
        assert status == 0 and out == "6\n30\n"

    def test_ocamlyacc_needs_tmp(self, world):
        launcher = world.spawn_process("root", "/")
        sys = world.syscalls(launcher)
        sys.write_whole("/tmp/parser.mly", b"rules\n")
        assert run(world, ["ocamlyacc", "/tmp/parser.mly"])[0] == 0
        assert b"generated" in sys.read_whole("/tmp/parser.ml")


class TestMisc:
    def test_jpeginfo_ok(self, world):
        status, out, _ = run(world, ["jpeginfo", "-i", "/home/alice/Documents/dog.jpg"])
        assert status == 0 and "OK" in out

    def test_jpeginfo_not_jpeg(self, world):
        status, out, _ = run(world, ["jpeginfo", "/home/alice/Documents/notes.txt"])
        assert status == 1 and "not a JPEG" in out

    def test_ldd_prints_needed(self, world):
        status, out, _ = run(world, ["ldd", "/usr/local/bin/curl"])
        assert status == 0
        assert "libcurl.so.4" in out and "libc.so.7" in out


class TestNetTools:
    def test_curl_downloads_from_mirror(self):
        kernel = build_world()
        blob = add_emacs_mirror(kernel)
        status, _, err = run(
            kernel,
            ["curl", "-o", "/tmp/emacs.tar.gz", "http://ftp.gnu.org/gnu/emacs/emacs-24.3.tar.gz"],
        )
        assert status == 0, err
        sys = kernel.syscalls(kernel.spawn_process("root", "/"))
        assert sys.read_whole("/tmp/emacs.tar.gz") == blob

    def test_curl_connection_refused(self, world):
        status, _, err = run(world, ["curl", "http://nonexistent.example/"])
        assert status == 7 and "ECONNREFUSED" in err

    def test_httpd_serves_queued_requests(self):
        kernel = build_world()
        paths = add_web_content(kernel, file_kb=4, small_files=2)
        clients = []

        def flood(listener):
            from repro.kernel.sockets import AddressFamily, SocketType

            driver = kernel.spawn_process("root", "/")
            dsys = kernel.syscalls(driver)
            for i in range(3):
                fd = dsys.socket(AddressFamily.AF_INET, SocketType.SOCK_STREAM)
                dsys.connect(fd, ("0.0.0.0", 8080))
                dsys.send(fd, b"GET /page0.html\n")
                clients.append((dsys, fd))

        kernel.network.register_listen_hook(("0.0.0.0", 8080), flood)
        status, out, err = run(kernel, ["httpd", "-f", "/etc/apache/httpd.conf"], user="root")
        assert status == 0, err
        assert "served 3 request(s)" in out
        for dsys, fd in clients:
            response = dsys.recv(fd, 1 << 16)
            assert response.startswith(b"HTTP/1.0 200 OK")
            assert b"page 0" in response
        # The access log recorded each request:
        sys = kernel.syscalls(kernel.spawn_process("root", "/"))
        log = sys.read_whole(paths["log"]).decode()
        assert log.count("GET /page0.html 200") == 3


class TestGradeSh:
    def test_grades_all_students(self):
        kernel = build_world()
        paths = add_grading_fixture(kernel, students=4, tests=3, malicious_reader=False,
                                    malicious_writer=False)
        status, _, err = run(
            kernel,
            ["grade.sh", paths["submissions"], paths["tests"], paths["working"], paths["grades"]],
            user="tester",
            cwd="/home/tester",
        )
        assert status == 0, err
        sys = kernel.syscalls(kernel.spawn_process("tester", "/home/tester"))
        for i in range(4):
            grade = sys.read_whole(f"{paths['grades']}/student{i:02d}").decode()
            assert grade.endswith("3/3\n"), grade

    def test_malicious_reader_scores_but_unconfined_leaks(self):
        """Outside any sandbox, the malicious submission CAN read another
        student's file — the baseline has no fine-grained isolation.
        (The case-study tests show SHILL stopping this.)"""
        kernel = build_world()
        paths = add_grading_fixture(kernel, students=3, tests=2)
        status, _, _ = run(
            kernel,
            ["grade.sh", paths["submissions"], paths["tests"], paths["working"], paths["grades"]],
            user="tester",
            cwd="/home/tester",
        )
        assert status == 0
        sys = kernel.syscalls(kernel.spawn_process("tester", "/home/tester"))
        # student00's test output contains the stolen submission text:
        out0 = sys.read_whole(f"{paths['working']}/student00/test0.out").decode()
        assert "solve" in out0  # the leaked main.ml of the last student
