"""AdmissionController units: every gate, zero sleeps (fake clock)."""

from __future__ import annotations

import pytest

from repro.serve import AdmissionController


class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRateLimit:
    def test_unlimited_by_default(self):
        gate = AdmissionController()
        assert all(gate.admit("anyone") is None for _ in range(100))

    def test_burst_then_refusal_with_retry_hint(self):
        clock = FakeClock()
        gate = AdmissionController(rate=1.0, burst=2, clock=clock)
        assert gate.admit("alice") is None
        assert gate.admit("alice") is None
        wait = gate.admit("alice")
        assert wait == pytest.approx(1.0)  # one token refills in 1s at 1/s

    def test_tokens_refill_with_time(self):
        clock = FakeClock()
        gate = AdmissionController(rate=2.0, burst=1, clock=clock)
        assert gate.admit("alice") is None
        assert gate.admit("alice") is not None
        clock.advance(0.5)  # 2/s * 0.5s = one token back
        assert gate.admit("alice") is None

    def test_users_have_independent_buckets(self):
        clock = FakeClock()
        gate = AdmissionController(rate=1.0, burst=1, clock=clock)
        assert gate.admit("alice") is None
        assert gate.admit("alice") is not None  # alice is out of tokens
        assert gate.admit("bob") is None        # bob is not

    def test_refused_requests_spend_no_token(self):
        clock = FakeClock()
        gate = AdmissionController(rate=1.0, burst=1, clock=clock)
        assert gate.admit("alice") is None
        for _ in range(5):
            assert gate.admit("alice") is not None
        clock.advance(1.0)
        # Refusals didn't dig the bucket deeper: one second = one token.
        assert gate.admit("alice") is None

    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError, match="rate"):
            AdmissionController(rate=0)
        with pytest.raises(ValueError, match="rate"):
            AdmissionController(rate=-1.0)


class TestQueueBound:
    def test_pending_bound_refuses_with_hint(self):
        gate = AdmissionController(max_pending=2)
        assert gate.admit() is None
        assert gate.admit() is None
        wait = gate.admit()
        assert wait is not None and wait > 0

    def test_release_reopens_the_gate(self):
        gate = AdmissionController(max_pending=1)
        assert gate.admit() is None
        assert gate.admit() is not None
        gate.release()
        assert gate.admit() is None

    def test_pending_counter_tracks_admissions(self):
        gate = AdmissionController(max_pending=10)
        for expected in range(1, 4):
            gate.admit()
            assert gate.pending == expected
        gate.release()
        assert gate.pending == 2

    def test_queue_refusal_spends_no_token(self):
        clock = FakeClock()
        gate = AdmissionController(rate=10.0, burst=1, max_pending=1,
                                   clock=clock)
        assert gate.admit("alice") is None       # takes the slot + a token
        assert gate.admit("alice") is not None   # queue-bound refusal
        gate.release()
        clock.advance(0.1)                       # exactly one token back
        # One refill suffices: the queue refusal spent nothing.
        assert gate.admit("alice") is None

    def test_max_pending_must_be_positive(self):
        with pytest.raises(ValueError, match="max_pending"):
            AdmissionController(max_pending=0)


class TestBusyPropagation:
    """The BUSY frame round trip: a rate-limited gateway answers BUSY
    with the admission controller's hint, and the executor-side client
    waits it out (bounded retries) instead of failing."""

    def test_executor_retries_busy_then_succeeds(self, tmp_path):
        """Drive RemoteExecutor's BUSY path against a scripted peer:
        two BUSY frames, then a real RESULT."""
        import pickle
        import socket
        import threading

        from repro.remote.wire import WIRE_VERSION, Connection

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def peer():
            sock, _ = listener.accept()
            conn = Connection(sock)
            hello = conn.recv()
            conn.send("HELLO", {"version": min(WIRE_VERSION,
                                               hello.fields["version"]),
                                "pid": 1, "store": "x"})
            busy_left = 2
            while True:
                msg = conn.recv()
                if msg.type == "GOODBYE":
                    return
                ch = {"channel": msg.fields["channel"]} \
                    if "channel" in msg.fields else {}
                if msg.type == "PREPARE":
                    conn.send("READY", {**ch, "source": "memory",
                                        "build_ops": {}})
                elif msg.type == "SUBMIT":
                    if busy_left:
                        busy_left -= 1
                        conn.send("BUSY", {**ch, "retry_after": 0.01})
                    else:
                        conn.send("RESULT", {**ch, "status": "ok",
                                             "index": msg.fields["index"]},
                                  pickle.dumps("done"))

        thread = threading.Thread(target=peer, daemon=True)
        thread.start()

        from repro.api import RemoteExecutor, World
        from repro.api.executors.base import ExecutorJob, JobTemplate

        world = World().for_user("alice").with_jpeg_samples().boot()
        with RemoteExecutor([f"127.0.0.1:{port}"],
                            store=tmp_path / "c") as executor:
            executor.bind(JobTemplate.for_world(world))
            handle = executor.submit(ExecutorJob(
                index=0, name="j0", source="#lang shill/ambient\n"))
            assert handle.result() == "done"

    def test_busy_budget_exhaustion_is_typed(self, tmp_path):
        """A peer that never stops saying BUSY exhausts the bounded
        retry budget and fails with attribution, not a hang."""
        import socket
        import threading

        from repro.api.executors.base import BatchExecutionError
        from repro.remote.wire import WIRE_VERSION, Connection

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def peer():
            sock, _ = listener.accept()
            conn = Connection(sock)
            hello = conn.recv()
            conn.send("HELLO", {"version": min(WIRE_VERSION,
                                               hello.fields["version"]),
                                "pid": 1, "store": "x"})
            while True:
                msg = conn.recv()
                if msg.type == "GOODBYE":
                    return
                ch = {"channel": msg.fields["channel"]} \
                    if "channel" in msg.fields else {}
                if msg.type == "PREPARE":
                    conn.send("READY", {**ch, "source": "memory",
                                        "build_ops": {}})
                else:
                    conn.send("BUSY", {**ch, "retry_after": 0.001})

        thread = threading.Thread(target=peer, daemon=True)
        thread.start()

        from repro.api import RemoteExecutor, World
        from repro.api.executors.base import ExecutorJob, JobTemplate

        world = World().for_user("alice").with_jpeg_samples().boot()
        with RemoteExecutor([f"127.0.0.1:{port}"],
                            store=tmp_path / "c") as executor:
            executor.busy_retries = 3
            executor.bind(JobTemplate.for_world(world))
            handle = executor.submit(ExecutorJob(
                index=0, name="j0", source="#lang shill/ambient\n"))
            with pytest.raises(BatchExecutionError, match="admission retries"):
                handle.result()
