"""Gateway integration: real gateway + agent subprocesses, loopback TCP.

The acceptance contracts: a served batch is fingerprint-byte-identical
to sequential; jobs shard across announced agents; an agent killed
mid-batch is survived and its restarted incarnation *rejoins* (visible
in the request log); admission backpressure (BUSY/RETRY-AFTER) slows
clients down without failing them; the CLI reaches all of it.
"""

from __future__ import annotations

import json

import pytest

from repro.api import Batch, ScriptRegistry, SequentialExecutor, ServeExecutor, World, clear_result_cache
from repro.remote.agent import spawn_local_agent
from repro.serve import spawn_local_gateway

#: Must match tests/remote/conftest.py's marker (not imported; conftest
#: modules are pytest's own).
CHAOS_MARKER = "CHAOS-DIE-HERE"

WALK_AMBIENT = """\
#lang shill/ambient
docs = open_dir("~/Documents");
entries = contents(docs);
append(stdout, path(docs) + "\\n");
"""

CHAOS_AMBIENT = f"#lang shill/ambient\n# {CHAOS_MARKER}\n" + WALK_AMBIENT


def _jpeg_world() -> World:
    return World().for_user("alice").with_jpeg_samples()


def _batch(n: int, source: str = WALK_AMBIENT) -> Batch:
    batch = Batch(_jpeg_world(), cache=False)
    for i in range(n):
        batch.add(source, name=f"j{i}")
    return batch


def _events(log_path) -> list[dict]:
    return [json.loads(line) for line in log_path.read_text().splitlines()]


@pytest.fixture
def fleet(tmp_path):
    """Spawn a gateway plus announced agents; everything is killed at
    test end.  Yields ``start(agents=2, **gateway_kwargs) ->
    (gateway_addr, agent_list, request_log_path)`` where ``agent_list``
    holds ``(proc, addr)`` pairs."""
    procs = []

    def start(agents: int = 2, **gw_kwargs):
        log = tmp_path / "requests.jsonl"
        gw_proc, gw = spawn_local_gateway(tmp_path / "gw", request_log=log,
                                          **gw_kwargs)
        procs.append(gw_proc)
        spawned = []
        for i in range(agents):
            proc, addr = spawn_local_agent(tmp_path / f"agent{i}",
                                           announce=gw)
            procs.append(proc)
            spawned.append((proc, addr))
        return gw, spawned, log

    yield start
    for proc in procs:
        proc.kill()
    for proc in procs:
        proc.wait(timeout=10)


class TestEndToEnd:
    def test_40_jobs_2_agents_match_sequential_byte_for_byte(self, fleet,
                                                             tmp_path):
        """The headline acceptance: 2 agents x concurrency 4, a 40-job
        batch, fingerprints byte-identical to SequentialExecutor."""
        gw, _agents, log = fleet(agents=2)
        with ServeExecutor(gw, store=tmp_path / "client",
                           concurrency=4) as executor:
            served = _batch(40).run(executor=executor)
        clear_result_cache()
        sequential = _batch(40).run(executor=SequentialExecutor())
        assert [r.fingerprint() for r in served] == \
            [r.fingerprint() for r in sequential]
        # Both agents actually worked the batch (the gateway sharded).
        hosts = {e["host"] for e in _events(log) if e["event"] == "dispatch"}
        assert len(hosts) == 2, hosts

    def test_agents_join_by_announce_not_configuration(self, fleet, tmp_path):
        """The gateway starts with an empty fleet; agents dial in."""
        gw, _agents, log = fleet(agents=2)
        announced = [e for e in _events(log) if e["event"] == "announce"]
        assert len(announced) == 2
        with ServeExecutor(gw, store=tmp_path / "client") as executor:
            results = _batch(3).run(executor=executor)
        assert all(r.ok for r in results)

    def test_empty_fleet_fails_typed_not_hanging(self, fleet, tmp_path):
        from repro.api import BatchExecutionError

        gw, _agents, _log = fleet(agents=0)
        with ServeExecutor(gw, store=tmp_path / "client") as executor:
            with pytest.raises(BatchExecutionError, match="no live agents"):
                _batch(1).run(executor=executor)

    def test_capability_scripts_ride_through_the_gateway(self, fleet,
                                                         tmp_path):
        find_jpg = """\
#lang shill/cap
provide find_jpg :
  {cur : dir(+contents, +lookup, +path) \\/ file(+path),
   out : file(+append)} -> void;
find_jpg = fun(cur, out) {
  if is_file(cur) && has_ext(cur, "jpg") then
    append(out, path(cur) + "\\n");
  if is_dir(cur) then
    for name in contents(cur) {
      child = lookup(cur, name);
      if !is_syserror(child) then find_jpg(child, out);
    }
}
"""
        ambient = ('#lang shill/ambient\nrequire "find_jpg.cap";\n'
                   'docs = open_dir("~/Documents");\nfind_jpg(docs, stdout);\n')
        gw, _agents, _log = fleet(agents=1)
        registry = ScriptRegistry().add("find_jpg.cap", find_jpg)
        batch = Batch(_jpeg_world(), scripts=registry, cache=False)
        batch.add(ambient, name="find")
        with ServeExecutor(gw, store=tmp_path / "client") as executor:
            [result] = batch.run(executor=executor)
        assert "dog.jpg" in result.stdout


class TestAgentChurn:
    def test_kill_agent_mid_batch_then_rejoin(self, fleet, tmp_path):
        """The fleet-churn acceptance: one agent dies mid-batch (chaos
        hook: in the SUBMIT->RESULT window) and the batch completes on
        the survivor; a replacement agent on the *same address* rejoins
        (request log says so) and the next batch uses it — with every
        fingerprint byte-identical to sequential."""
        from repro.remote.agent import CHAOS_EXIT_STATUS

        gw, _agents, log = fleet(agents=1)
        chaos_proc, chaos_addr = spawn_local_agent(
            tmp_path / "chaos", chaos_exit_on=CHAOS_MARKER, announce=gw)
        try:
            with ServeExecutor(gw, store=tmp_path / "client",
                               concurrency=4) as executor:
                # Batch 1: every job carries the chaos marker; the chaos
                # agent dies on its first SUBMIT, the gateway strikes it
                # and re-shards in flight.
                first = _batch(6, CHAOS_AMBIENT).run(executor=executor)
                assert chaos_proc.wait(timeout=15) == CHAOS_EXIT_STATUS
                assert all(r.ok for r in first)
                assert any(e["event"] == "dead" and e["host"] == chaos_addr
                           for e in _events(log))

                # The restarted incarnation: same port, same store.
                host, port = chaos_addr.rsplit(":", 1)
                chaos_proc2, addr2 = spawn_local_agent(
                    tmp_path / "chaos", port=int(port), announce=gw)
                try:
                    assert addr2 == chaos_addr
                    assert any(e["event"] == "rejoin"
                               and e["host"] == chaos_addr
                               for e in _events(log))

                    # Batch 2 runs on the healed fleet.
                    clear_result_cache()
                    second = _batch(6).run(executor=executor)
                finally:
                    chaos_proc2.kill()
                    chaos_proc2.wait(timeout=10)
        finally:
            if chaos_proc.poll() is None:
                chaos_proc.kill()
                chaos_proc.wait(timeout=10)

        clear_result_cache()
        assert [r.fingerprint() for r in first] == \
            [r.fingerprint() for r in
             _batch(6, CHAOS_AMBIENT).run(executor=SequentialExecutor())]
        clear_result_cache()
        assert [r.fingerprint() for r in second] == \
            [r.fingerprint() for r in
             _batch(6).run(executor=SequentialExecutor())]

    def test_sigtermed_agent_retires_cleanly(self, fleet, tmp_path):
        """A SIGTERM'd agent drains and GOODBYEs; the gateway retires it
        (no strike) and later batches just use the survivor."""
        gw, agents, log = fleet(agents=2)
        with ServeExecutor(gw, store=tmp_path / "client") as executor:
            warm = _batch(4).run(executor=executor)
            assert all(r.ok for r in warm)
            victim_proc, victim_addr = agents[0]
            victim_proc.terminate()
            assert victim_proc.wait(timeout=15) == 0
            clear_result_cache()
            after = _batch(4).run(executor=executor)
        assert all(r.ok for r in after)
        events = _events(log)
        # The victim must never have been *struck* (no crash record) —
        # its exit was either noticed as a retirement or not at all.
        assert not any(e["event"] == "dead" and e["host"] == victim_addr
                       for e in events)


class TestAdmission:
    def test_rate_limited_batch_backs_off_and_completes(self, fleet,
                                                        tmp_path):
        """A tight per-user rate limit turns into BUSY frames, the
        client honours every retry_after hint, and the batch still
        completes correctly — backpressure, not failure.  The rate is
        1/s so the refusal window is a full second wide: the client's
        four dispatch threads submit together at batch start, and even
        a heavily loaded machine cannot spread them a second apart."""
        gw, _agents, log = fleet(agents=1, rate=1.0, burst=1)
        with ServeExecutor(gw, store=tmp_path / "client", concurrency=4,
                           user="alice") as executor:
            served = _batch(5).run(executor=executor)
        clear_result_cache()
        sequential = _batch(5).run(executor=SequentialExecutor())
        assert [r.fingerprint() for r in served] == \
            [r.fingerprint() for r in sequential]
        busy = [e for e in _events(log) if e["event"] == "busy"]
        assert busy, "a 4-wide client against a 1/s burst-1 limit " \
                     "must hit admission at least once"
        assert all(e["user"] == "alice" for e in busy)
        assert all(e["retry_after"] > 0 for e in busy)


class TestGatewayCache:
    def test_repeat_submit_served_from_gateway_cache(self, fleet, tmp_path):
        """A repeat job answers from the gateway's per-user result
        cache: the request log shows the hit, no second dispatch
        reaches an agent, and the replayed result is byte-identical."""
        gw, _agents, log = fleet(agents=1)
        with ServeExecutor(gw, store=tmp_path / "client",
                           user="alice") as executor:
            clear_result_cache()  # client-side: every SUBMIT must go out
            [first] = _batch(1).run(executor=executor)
            clear_result_cache()
            [second] = _batch(1).run(executor=executor)
        assert second.fingerprint() == first.fingerprint()
        hits = [e for e in _events(log) if e["event"] == "cache_hit"]
        assert len(hits) == 1
        assert hits[0]["user"] == "alice" and hits[0]["verdict"] == "hit"
        dispatches = [e for e in _events(log) if e["event"] == "dispatch"]
        assert len(dispatches) == 1
        assert dispatches[0]["verdict"] == "miss"

    def test_cache_hits_are_admission_exempt(self, fleet, tmp_path):
        """Replays are free: after the first (admitted) run, a tight
        rate limit never turns repeat jobs into BUSY frames."""
        gw, _agents, log = fleet(agents=1, rate=1.0, burst=1)
        with ServeExecutor(gw, store=tmp_path / "client",
                           user="alice") as executor:
            clear_result_cache()
            _batch(1).run(executor=executor)
            for _ in range(5):
                clear_result_cache()
                [result] = _batch(1).run(executor=executor)
                assert result.ok
        events = _events(log)
        assert len([e for e in events if e["event"] == "cache_hit"]) == 5
        # One admitted dispatch; the replays never touched admission.
        assert [e for e in events if e["event"] == "busy"] == []

    def test_result_cache_zero_disables_replay(self, fleet, tmp_path):
        gw, _agents, log = fleet(agents=1, result_cache=0)
        with ServeExecutor(gw, store=tmp_path / "client",
                           user="alice") as executor:
            clear_result_cache()
            _batch(1).run(executor=executor)
            clear_result_cache()
            _batch(1).run(executor=executor)
        events = _events(log)
        assert [e for e in events if e["event"] == "cache_hit"] == []
        assert len([e for e in events if e["event"] == "dispatch"]) == 2

    def test_cached_replies_carry_each_submits_own_index(self, fleet,
                                                         tmp_path):
        """Identical jobs at different batch indices: replayed RESULT
        frames must echo the *current* SUBMIT's index, or the client
        would misfile the reply."""
        gw, _agents, _log = fleet(agents=1)
        with ServeExecutor(gw, store=tmp_path / "client",
                           user="alice") as executor:
            clear_result_cache()
            _batch(1).run(executor=executor)  # warm the gateway cache
            clear_result_cache()
            results = _batch(4).run(executor=executor)
        assert len(results) == 4
        assert len({r.fingerprint() for r in results}) == 1
        assert all(r.ok for r in results)


class TestPolicyIsolation:
    """Two gateway users, one fleet, different declarative policies."""

    FREEZE_DOCS = [{"name": "freeze-docs", "effect": "deny",
                    "operations": ["contents"],
                    "paths": ["/home/alice/Documents"]}]

    def _policied_batch(self, rules) -> Batch:
        world = _jpeg_world()
        if rules is not None:
            world = world.with_policy_rules(rules)
        batch = Batch(world, cache=False)
        batch.add(WALK_AMBIENT, name="walk")
        return batch

    def test_different_policies_yield_different_denials(self, fleet, tmp_path):
        """The same script under each tenant's own policy world: the
        frozen tenant's job fails on the policy denial, the open
        tenant's succeeds — through one shared gateway and fleet."""
        gw, _agents, _log = fleet(agents=1)
        with ServeExecutor(gw, store=tmp_path / "a",
                           user="alice") as executor:
            clear_result_cache()
            [frozen] = self._policied_batch(self.FREEZE_DOCS).run(executor=executor)
        with ServeExecutor(gw, store=tmp_path / "b", user="bob") as executor:
            clear_result_cache()
            [open_] = self._policied_batch(None).run(executor=executor)
        assert not frozen.ok and open_.ok
        assert "policy-engine:rules" in frozen.stderr
        assert "/home/alice/Documents" in open_.stdout
        assert frozen.fingerprint() != open_.fingerprint()

    def test_result_cache_never_crosses_the_policy_boundary(self, fleet,
                                                            tmp_path):
        """One tenant's cached result must not answer the other tenant's
        submit of the same script: the policy rides in the world digest,
        so each policy world dispatches once and replays only itself."""
        gw, _agents, log = fleet(agents=1)
        with ServeExecutor(gw, store=tmp_path / "a",
                           user="alice") as executor:
            clear_result_cache()
            self._policied_batch(self.FREEZE_DOCS).run(executor=executor)
            clear_result_cache()
            [replayed] = self._policied_batch(self.FREEZE_DOCS).run(executor=executor)
        with ServeExecutor(gw, store=tmp_path / "b", user="bob") as executor:
            clear_result_cache()
            [fresh] = self._policied_batch(None).run(executor=executor)
        assert not replayed.ok and fresh.ok
        events = _events(log)
        hits = [e for e in events if e["event"] == "cache_hit"]
        dispatches = [e for e in events if e["event"] == "dispatch"]
        # Alice's repeat replayed from her cache entry; Bob's first
        # submit of the "same" script was a miss, never Alice's bytes.
        assert [e["user"] for e in hits] == ["alice"]
        assert len(dispatches) == 2


class TestCli:
    def test_batch_executor_serve_requires_gateway(self, capsys):
        from repro.__main__ import main

        status = main(["batch", "/dev/null", "--executor", "serve"])
        assert status == 2
        assert "--gateway" in capsys.readouterr().err

    def test_gateway_without_serve_rejected(self, capsys):
        from repro.__main__ import main

        status = main(["batch", "/dev/null", "--gateway", "h:1"])
        assert status == 2
        assert "--executor serve" in capsys.readouterr().err

    def test_cli_serve_end_to_end(self, fleet, tmp_path, capsys):
        from repro.__main__ import main

        gw, _agents, _log = fleet(agents=1)
        script = tmp_path / "walk.ambient"
        script.write_text(WALK_AMBIENT)
        status = main(["batch", str(script), "--executor", "serve",
                       "--gateway", gw, "--store", str(tmp_path / "client")])
        assert status == 0
        assert "/home/alice/Documents" in capsys.readouterr().out
