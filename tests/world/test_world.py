"""World image and fixture tests."""

from __future__ import annotations

import pytest

from repro.programs.archive import gzip_decompress, tar_extract_members
from repro.world import (
    add_emacs_mirror,
    add_grading_fixture,
    add_usr_src,
    add_web_content,
    build_world,
    emacs_tarball,
)


@pytest.fixture(scope="module")
def world():
    return build_world()


class TestBaseImage:
    def test_users_exist(self, world):
        assert world.users.lookup("alice").uid == 1001
        assert world.users.lookup("tester").uid == 1002

    def test_binaries_installed_and_tagged(self, world):
        sys = world.syscalls(world.spawn_process("root", "/"))
        _, _, cat = sys._resolve("/bin/cat")
        assert cat.program == "cat" and "libc.so.7" in cat.needed
        assert cat.mode & 0o111

    def test_every_install_location_resolves(self, world):
        from repro.programs.registry import INSTALL_LOCATIONS

        sys = world.syscalls(world.spawn_process("root", "/"))
        for program, path in INSTALL_LOCATIONS.items():
            _, _, vp = sys._resolve(path)
            assert vp is not None and vp.program == program

    def test_elf_header_matches_metadata(self, world):
        from repro.programs.base import parse_elf

        sys = world.syscalls(world.spawn_process("root", "/"))
        data = sys.read_whole("/usr/local/bin/curl")
        program, needed = parse_elf(data)
        _, _, vp = sys._resolve("/usr/local/bin/curl")
        assert program == vp.program and needed == vp.needed

    def test_tmp_world_writable(self, world):
        sys = world.syscalls(world.spawn_process("alice", "/home/alice"))
        sys.write_whole("/tmp/alice-scratch", b"ok")

    def test_shill_module_installed_by_default(self, world):
        assert world.shill_installed

    def test_baseline_world_without_module(self):
        assert not build_world(install_shill=False).shill_installed

    def test_libraries_present(self, world):
        sys = world.syscalls(world.spawn_process("root", "/"))
        assert sys.stat("/lib/libc.so.7").size > 0
        assert sys.stat("/libexec/ld-elf.so.1").size > 0


class TestFixtures:
    def test_grading_fixture_layout(self):
        kernel = build_world()
        paths = add_grading_fixture(kernel, students=3, tests=2)
        sys = kernel.syscalls(kernel.spawn_process("tester", "/home/tester"))
        assert len(sys.contents(paths["submissions"])) == 3
        assert len(sys.contents(paths["tests"])) == 4  # .in + .expected
        assert sys.contents(paths["working"]) == []

    def test_grading_malicious_flags(self):
        kernel = build_world()
        paths = add_grading_fixture(kernel, students=3, tests=1,
                                    malicious_reader=True, malicious_writer=True)
        sys = kernel.syscalls(kernel.spawn_process("tester", "/"))
        s0 = sys.read_whole(f"{paths['submissions']}/student00/main.ml").decode()
        s1 = sys.read_whole(f"{paths['submissions']}/student01/main.ml").decode()
        assert "readfile" in s0 and "writefile" in s1

    def test_usr_src_counts_accurate(self):
        kernel = build_world()
        counts = add_usr_src(kernel, subsystems=2, files_per_dir=10)
        sys = kernel.syscalls(kernel.spawn_process("root", "/"))
        total = c = 0
        stack = ["/usr/src"]
        mac = 0
        while stack:
            d = stack.pop()
            for entry in sys.contents(d):
                path = f"{d}/{entry}"
                if sys.stat(path).is_dir:
                    stack.append(path)
                else:
                    total += 1
                    if path.endswith(".c"):
                        c += 1
                        if b"mac_" in sys.read_whole(path):
                            mac += 1
        assert (total, c, mac) == (counts["total"], counts["c_files"], counts["mac_files"])

    def test_emacs_tarball_contents(self):
        blob = emacs_tarball(sources=4)
        members = dict(tar_extract_members(gzip_decompress(blob)))
        assert "emacs-24.3/configure" in members
        assert members["emacs-24.3/configure"].startswith(b"#!ELF")
        assert sum(1 for m in members if m.endswith(".c")) == 4

    def test_emacs_mirror_deterministic(self):
        k1, k2 = build_world(), build_world()
        assert add_emacs_mirror(k1) == add_emacs_mirror(k2)

    def test_web_content(self):
        kernel = build_world()
        paths = add_web_content(kernel, file_kb=2, small_files=3)
        sys = kernel.syscalls(kernel.spawn_process("root", "/"))
        assert sys.stat(paths["big"]).size == 2048
        assert len([e for e in sys.contents("/var/www") if e.startswith("page")]) == 3
