"""shill/io and shill/filesys standard-library scripts."""

from __future__ import annotations

import pytest

from repro.capability.caps import FsCap
from repro.lang.values import SysErrorVal
from repro.sandbox.privileges import PrivSet
from repro.stdlib.filesys import exists, resolve, resolve_chain
from repro.stdlib.io_ import _format, appendf, writef


@pytest.fixture
def root_cap(kernel):
    sys = kernel.syscalls(kernel.spawn_process("alice", "/home/alice"))
    return FsCap(sys, kernel.vfs.root, PrivSet.full(), "/")


class TestFormat:
    def test_display_directive(self):
        assert _format("hello ~a!", ("world",)) == "hello world!"

    def test_multiple_directives(self):
        assert _format("~a + ~a = ~a", (1, 2, 3)) == "1 + 2 = 3"

    def test_newline_and_tilde(self):
        assert _format("a~nb~~c", ()) == "a\nb~c"

    def test_too_few_args(self):
        with pytest.raises(ValueError):
            _format("~a ~a", ("only-one",))

    def test_too_many_args(self):
        with pytest.raises(ValueError):
            _format("no directives", ("extra",))

    def test_bool_displays_shill_style(self):
        assert _format("~a", (True,)) == "true"


class TestWritefAppendf:
    def test_writef(self, root_cap):
        cap = resolve(root_cap, "home/alice/dog.jpg")
        writef(cap, "score: ~a~n", 42)
        assert cap.read() == b"score: 42\n"

    def test_appendf(self, root_cap):
        cap = resolve(root_cap, "home/alice/dog.jpg")
        writef(cap, "one~n")
        appendf(cap, "two~n")
        assert cap.read() == b"one\ntwo\n"


class TestResolve:
    def test_resolve_multi_component(self, root_cap):
        cap = resolve(root_cap, "home/alice/dog.jpg")
        assert isinstance(cap, FsCap) and cap.read() == b"JPEGDATA-DOG"

    def test_resolve_missing_is_syserror_value(self, root_cap):
        result = resolve(root_cap, "home/alice/nothing")
        assert isinstance(result, SysErrorVal) and result.name == "ENOENT"

    def test_resolve_chain_returns_every_hop(self, root_cap):
        chain = resolve_chain(root_cap, "home/alice")
        assert [c.try_path() for c in chain] == ["/", "/home", "/home/alice"]

    def test_exists(self, root_cap):
        home = resolve(root_cap, "home/alice")
        assert exists(home, "dog.jpg")
        assert not exists(home, "nope")
