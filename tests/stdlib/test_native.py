"""Native wallets and pkg_native — including the paper's two grading
anecdotes (ocamlc's stdlib dir and ocamlyacc's /tmp)."""

from __future__ import annotations

import pytest

from repro.capability.caps import PipeFactoryCap
from repro.errors import ShillRuntimeError
from repro.lang.runner import ShillRuntime
from repro.stdlib.native import (
    create_wallet,
    make_pkg_native,
    populate_native_wallet,
)
from repro.world import build_world


@pytest.fixture
def world():
    return build_world()


@pytest.fixture
def rt(world):
    return ShillRuntime(world, user="root", cwd="/root")


def make_wallet(rt, deps=None):
    wallet = create_wallet()
    populate_native_wallet(
        wallet,
        rt.open_dir("/"),
        "/bin:/usr/bin:/usr/local/bin",
        "/lib:/usr/lib:/usr/local/lib",
        PipeFactoryCap(rt.sys),
        deps=deps,
    )
    return wallet


class TestPopulate:
    def test_path_dirs_resolved(self, rt):
        wallet = make_wallet(rt)
        paths = [cap.try_path() for cap in wallet.get("PATH")]
        assert paths == ["/bin", "/usr/bin", "/usr/local/bin"]

    def test_lib_dirs_attenuated_readonly(self, rt):
        from repro.sandbox.privileges import Priv

        wallet = make_wallet(rt)
        for cap in wallet.get("LD_LIBRARY_PATH"):
            assert cap.privs.has(Priv.READ) and not cap.privs.has(Priv.WRITE)

    def test_prefixes_are_traversal_only(self, rt):
        from repro.sandbox.privileges import Priv

        wallet = make_wallet(rt)
        for cap in wallet.get("prefixes"):
            assert cap.privs.privs() == {Priv.LOOKUP}
            assert cap.privs.effective_modifier(Priv.LOOKUP) == frozenset()

    def test_rtld_packaged(self, rt):
        wallet = make_wallet(rt)
        (rtld,) = wallet.get("rtld")
        assert rtld.try_path() == "/libexec/ld-elf.so.1"

    def test_known_deps_resolved(self, rt):
        wallet = make_wallet(rt)
        deps = [cap.try_path() for cap in wallet.get("deps:ocamlc")]
        assert deps == ["/usr/local/lib/ocaml"]

    def test_custom_deps_extend_defaults(self, rt):
        wallet = make_wallet(rt, deps={"mytool": ["etc/passwd"]})
        assert [c.try_path() for c in wallet.get("deps:mytool")] == ["/etc/passwd"]
        assert wallet.get("deps:ocamlc")  # defaults kept

    def test_wallet_requires_dir_cap(self, rt):
        with pytest.raises(ShillRuntimeError):
            populate_native_wallet(create_wallet(), "not-a-cap", "/bin", "/lib")

    def test_pipe_factory_stored(self, rt):
        wallet = make_wallet(rt)
        assert isinstance(wallet.get_one("pipe_factory"), PipeFactoryCap)


class TestPkgNative:
    def test_runs_executable(self, rt):
        wallet = make_wallet(rt)
        echo = make_pkg_native(rt)("echo", wallet)
        read_cap, write_cap = PipeFactoryCap(rt.sys).create()
        status = rt.call(echo, ["hello"], stdout=write_cap)
        assert status == 0
        assert read_cap.read() == b"hello\n"

    def test_ldd_sandbox_counted(self, rt):
        """pkg_native invokes ldd in a sandbox — the Download profile's
        'one for pkg-native'."""
        wallet = make_wallet(rt)
        before = rt.profile["sandbox_count"]
        make_pkg_native(rt)("cat", wallet)
        assert rt.profile["sandbox_count"] == before + 1

    def test_missing_executable(self, rt):
        wallet = make_wallet(rt)
        with pytest.raises(ShillRuntimeError) as exc:
            make_pkg_native(rt)("no-such-prog", wallet)
        assert "not found" in str(exc.value)

    def test_result_contract_rejects_non_list(self, rt):
        from repro.errors import ContractViolation

        wallet = make_wallet(rt)
        cat = make_pkg_native(rt)("cat", wallet)
        with pytest.raises(ContractViolation):
            rt.call(cat, "not-a-list")

    def test_wrapper_needs_native_wallet(self, rt):
        with pytest.raises(ShillRuntimeError):
            make_pkg_native(rt)("cat", create_wallet(kind="ocaml"))


class TestPaperAnecdotes:
    """Section 4.1: "ocamlc reported that it was unable to read a file in
    /usr/local/lib/ocaml ... Adding the directory to the wallet as a
    dependency for OCaml executables fixed the issue but revealed
    another: ocamlyacc could not write to /tmp."""

    def _compile(self, rt, wallet, extras):
        sys = rt.sys
        sys.write_whole("/root/prog.ml", b"print hi\n")
        ocamlc = make_pkg_native(rt)("ocamlc", wallet)
        src = rt.open_file("/root/prog.ml")
        out_dir = rt.open_dir("/root")
        return rt.call(ocamlc, ["-o", "/root/prog.byte", src], extras=[out_dir] + extras)

    def test_ocamlc_fails_without_stdlib_dep(self, rt):
        wallet = make_wallet(rt)
        # Sabotage: drop the ocaml dependency entries from the wallet.
        wallet._entries.pop("deps:ocamlc", None)
        status = self._compile(rt, wallet, [])
        assert status != 0
        denials = "\n".join(e.format() for e in rt.last_session.log.denials())
        assert "ocaml" in denials

    def test_ocamlc_succeeds_with_stdlib_dep(self, rt):
        wallet = make_wallet(rt)
        assert self._compile(rt, wallet, []) == 0

    def test_ocamlyacc_fails_without_tmp(self, rt):
        rt.sys.write_whole("/root/parser.mly", b"rules\n")
        wallet = make_wallet(rt)
        yacc = make_pkg_native(rt)("ocamlyacc", wallet)
        src = rt.open_file("/root/parser.mly")
        status = rt.call(yacc, [src], extras=[rt.open_dir("/root")])
        assert status != 0  # scratch write to /tmp denied

    def test_ocamlyacc_succeeds_with_tmp(self, rt):
        rt.sys.write_whole("/root/parser.mly", b"rules\n")
        wallet = make_wallet(rt)
        yacc = make_pkg_native(rt)("ocamlyacc", wallet)
        src = rt.open_file("/root/parser.mly")
        tmp = rt.open_dir("/tmp")
        status = rt.call(yacc, [src], extras=[rt.open_dir("/root"), tmp])
        assert status == 0
        assert b"generated" in rt.sys.read_whole("/root/parser.ml")
