"""Shared fixtures: a small booted kernel with users and a tiny tree.

The full world image (libraries, binaries, /usr/src, fixtures) has its own
builder in :mod:`repro.world.image`; these fixtures deliberately stay tiny
so kernel/sandbox unit tests read clearly.
"""

from __future__ import annotations

import pytest

from repro.kernel import Kernel
from repro.kernel.vfs import VType


@pytest.fixture
def kernel() -> Kernel:
    """A kernel with users alice/bob and this tree (modes in comments)::

        /home/alice/dog.jpg      alice 0644 "JPEGDATA-DOG"
        /home/alice/notes.txt    alice 0600 "alice's secrets"
        /home/bob/cat.txt        bob   0644 "meow"
        /tmp                     root  1777
    """
    k = Kernel()
    k.users.add_user("alice", 1001, 1001)
    k.users.add_user("bob", 1002, 1002)
    root = k.vfs.root

    home = k.vfs.create(root, "home", VType.VDIR, 0o755, 0, 0)
    alice = k.vfs.create(home, "alice", VType.VDIR, 0o755, 1001, 1001)
    bob = k.vfs.create(home, "bob", VType.VDIR, 0o755, 1002, 1002)
    k.vfs.create(root, "tmp", VType.VDIR, 0o777, 0, 0)

    dog = k.vfs.create(alice, "dog.jpg", VType.VREG, 0o644, 1001, 1001)
    assert dog.data is not None
    dog.data.extend(b"JPEGDATA-DOG")

    notes = k.vfs.create(alice, "notes.txt", VType.VREG, 0o600, 1001, 1001)
    assert notes.data is not None
    notes.data.extend(b"alice's secrets")

    cat = k.vfs.create(bob, "cat.txt", VType.VREG, 0o644, 1002, 1002)
    assert cat.data is not None
    cat.data.extend(b"meow")
    return k


@pytest.fixture
def alice_sys(kernel: Kernel):
    proc = kernel.spawn_process("alice", "/home/alice")
    return kernel.syscalls(proc)


@pytest.fixture
def bob_sys(kernel: Kernel):
    proc = kernel.spawn_process("bob", "/home/bob")
    return kernel.syscalls(proc)


@pytest.fixture
def root_sys(kernel: Kernel):
    proc = kernel.spawn_process("root", "/")
    return kernel.syscalls(proc)
