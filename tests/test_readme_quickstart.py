"""The README's quickstart code block, executed verbatim as a test."""

from __future__ import annotations

import pathlib
import re


def test_readme_quickstart_block_runs(capsys):
    readme = pathlib.Path(__file__).resolve().parent.parent / "README.md"
    text = readme.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.S)
    assert blocks, "README must contain a python quickstart block"
    code = blocks[0]
    namespace: dict = {}
    exec(compile(code, "README.md", "exec"), namespace)  # noqa: S102
    out = capsys.readouterr().out
    assert "/home/alice/Documents/dog.jpg" in out
