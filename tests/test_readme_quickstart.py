"""The README's python code blocks, executed verbatim as tests."""

from __future__ import annotations

import pathlib
import re


def _python_blocks() -> list[str]:
    readme = pathlib.Path(__file__).resolve().parent.parent / "README.md"
    return re.findall(r"```python\n(.*?)```", readme.read_text(), flags=re.S)


def test_readme_quickstart_block_runs(capsys):
    blocks = _python_blocks()
    assert blocks, "README must contain a python quickstart block"
    code = blocks[0]
    namespace: dict = {}
    exec(compile(code, "README.md", "exec"), namespace)  # noqa: S102
    out = capsys.readouterr().out
    assert "/home/alice/Documents/dog.jpg" in out


def test_readme_batch_block_runs(capsys):
    blocks = _python_blocks()
    assert len(blocks) >= 2, "README must contain the batching example"
    namespace: dict = {}
    exec(compile(blocks[1], "README.md", "exec"), namespace)  # noqa: S102
    out = capsys.readouterr().out
    assert "dog.jpg" in out
    assert "'jobs': 8" in out
