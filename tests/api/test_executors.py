"""The Executor protocol: pluggable strategies behind one Batch façade.

Pins the redesign's contracts: every executor produces byte-identical
fingerprint lists; ``stream``/``as_completed`` surface results as
futures land (submission order vs completion order); engine failures
propagate as :class:`BatchExecutionError` with job attribution through
every consumption shape; the result cache is injectable; and the store
executor boots a second process's world straight from disk.
"""

from __future__ import annotations

import sys

import pytest

from repro.api import (
    Batch,
    BatchExecutionError,
    BoundedCache,
    ProcessExecutor,
    ScriptRegistry,
    SequentialExecutor,
    SnapshotStore,
    StoreExecutor,
    ThreadExecutor,
    World,
    clear_boot_cache,
    clear_result_cache,
    resolve_executor,
    result_cache_size,
)
from repro.api.executors import EXECUTOR_CHOICES, ExecutorJob, JobTemplate

WALK_AMBIENT = """\
#lang shill/ambient
docs = open_dir("~/Documents");
entries = contents(docs);
"""

HELLO_AMBIENT = '#lang shill/ambient\nappend(stdout, "hello\\n");\n'

FIND_JPG_CAP = """\
#lang shill/cap
provide find_jpg :
  {cur : dir(+contents, +lookup, +path) \\/ file(+path),
   out : file(+append)} -> void;
find_jpg = fun(cur, out) {
  if is_file(cur) && has_ext(cur, "jpg") then
    append(out, path(cur) + "\\n");
  if is_dir(cur) then
    for name in contents(cur) {
      child = lookup(cur, name);
      if !is_syserror(child) then find_jpg(child, out);
    }
}
"""

FIND_JPG_AMBIENT = """\
#lang shill/ambient
require "find_jpg.cap";
docs = open_dir("~/Documents");
find_jpg(docs, stdout);
"""


def _jpeg_world() -> World:
    return World().for_user("alice").with_jpeg_samples()


@pytest.fixture(autouse=True)
def _fresh_result_cache():
    clear_result_cache()
    yield
    clear_result_cache()


def _executors(tmp_path):
    return {
        "sequential": SequentialExecutor(),
        "thread": ThreadExecutor(workers=2),
        "process": ProcessExecutor(workers=2),
        "store": StoreExecutor(store=SnapshotStore(tmp_path / "store"), workers=2),
    }


class TestProtocol:
    def test_resolve_executor_names(self):
        for name in ("sequential", "thread", "process"):
            assert resolve_executor(name).name == name
        assert "store" in EXECUTOR_CHOICES

    def test_resolve_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_executor("gpu")

    def test_run_rejects_executor_plus_legacy_spelling(self):
        batch = Batch(_jpeg_world()).add(WALK_AMBIENT)
        with pytest.raises(ValueError, match="not both"):
            batch.run(executor=SequentialExecutor(), backend="thread")
        with pytest.raises(ValueError, match="executor's to own"):
            batch.run(executor=SequentialExecutor(), workers=2)

    def test_parallel_boolean_is_deprecated(self):
        batch = Batch(_jpeg_world(), cache=False).add(WALK_AMBIENT)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            batch.run(parallel=True)

    def test_submit_requires_bind(self):
        with pytest.raises(RuntimeError, match="not bound"):
            SequentialExecutor().submit(
                ExecutorJob(index=0, name="j", source=HELLO_AMBIENT))

    def test_executor_submit_as_completed_directly(self):
        """The raw protocol, no Batch: bind, submit, drain handles."""
        world = _jpeg_world().boot()
        with ThreadExecutor(workers=2) as executor:
            executor.bind(JobTemplate.for_world(world))
            handles = [executor.submit(ExecutorJob(index=i, name=f"j{i}",
                                                   source=HELLO_AMBIENT))
                       for i in range(3)]
            seen = {h.index: h.result() for h in executor.as_completed()}
        assert sorted(seen) == [0, 1, 2]
        assert all(seen[i].stdout == "hello\n" for i in seen)
        assert all(h.done() for h in handles)

    def test_executor_map_in_submission_order(self):
        world = _jpeg_world().boot()
        with SequentialExecutor() as executor:
            executor.bind(JobTemplate.for_world(world))
            jobs = [ExecutorJob(index=i, name=f"j{i}", source=HELLO_AMBIENT)
                    for i in range(3)]
            results = executor.map(jobs)
        assert [r.stdout for r in results] == ["hello\n"] * 3


class TestEquivalence:
    def test_all_executors_fingerprint_identically(self, tmp_path):
        registry = ScriptRegistry().add("find_jpg.cap", FIND_JPG_CAP)

        def run(executor):
            clear_result_cache()
            batch = Batch(_jpeg_world(), scripts=registry, cache=False)
            for i in range(4):
                batch.add(FIND_JPG_AMBIENT, name=f"find{i}")
                batch.add(WALK_AMBIENT, name=f"walk{i}")
            with executor:
                return batch.run(executor=executor)

        executors = _executors(tmp_path)
        baseline = run(executors.pop("sequential"))
        assert "dog.jpg" in baseline[0].stdout
        for name, executor in executors.items():
            assert [r.fingerprint() for r in run(executor)] == \
                [r.fingerprint() for r in baseline], name

    def test_backend_store_string_resolves(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "envstore"))
        [result] = Batch(_jpeg_world(), cache=False).add(WALK_AMBIENT).run(backend="store")
        assert result.ok
        assert (tmp_path / "envstore" / "blobs").exists()


class TestStreaming:
    def _batch(self, n=4):
        batch = Batch(_jpeg_world(), cache=False)
        for i in range(n):
            batch.add(HELLO_AMBIENT if i % 2 else WALK_AMBIENT, name=f"j{i}")
        return batch

    @pytest.mark.parametrize("backend", ["sequential", "thread", "process"])
    def test_stream_matches_run_in_submission_order(self, backend):
        expected = [r.fingerprint() for r in self._batch().run(backend=backend)]
        streamed = list(self._batch().stream(backend=backend, workers=2))
        assert [r.fingerprint() for r in streamed] == expected

    def test_stream_is_an_iterator_not_a_list(self):
        stream = self._batch().stream()
        assert iter(stream) is stream
        first = next(stream)
        assert first is not None
        rest = list(stream)
        assert len(rest) == 3

    @pytest.mark.parametrize("backend", ["sequential", "thread", "process"])
    def test_as_completed_yields_every_job_with_attribution(self, backend):
        batch = self._batch()
        pairs = list(batch.as_completed(backend=backend, workers=2))
        assert {job.name for job, _result in pairs} == {f"j{i}" for i in range(4)}
        by_name = {job.name: result for job, result in pairs}
        expected = self._batch().run()
        for i in range(4):
            assert by_name[f"j{i}"].fingerprint() == expected[i].fingerprint()

    def test_as_completed_serves_cache_hits_first(self):
        Batch(_jpeg_world()).add(WALK_AMBIENT).run()
        batch = Batch(_jpeg_world()).add(HELLO_AMBIENT, name="fresh") \
                                    .add(WALK_AMBIENT, name="cached")
        pairs = list(batch.as_completed())
        assert [job.name for job, _ in pairs] == ["cached", "fresh"]
        assert batch.stats["cache_hits"] == 1


class TestFailureSurfacing:
    """Satellite: BatchExecutionError attribution through the streaming
    shapes, on both in-process and process executors."""

    @pytest.fixture()
    def _exploding_session(self, monkeypatch):
        from repro.api import sessions

        real = sessions.Session.run_ambient

        def maybe_explode(self, source, name="<ambient>"):
            if "BOOM" in source:
                raise RuntimeError("engine bug")
            return real(self, source, name)

        monkeypatch.setattr(sessions.Session, "run_ambient", maybe_explode)

    def _batch(self):
        return (Batch(_jpeg_world(), cache=False)
                .add(WALK_AMBIENT, name="good")
                .add("# BOOM\n" + WALK_AMBIENT, name="boom")
                .add(WALK_AMBIENT, name="good2"))

    def test_stream_propagates_engine_error_with_job_id(self, _exploding_session):
        received = []
        with pytest.raises(BatchExecutionError) as excinfo:
            for result in self._batch().stream():
                received.append(result)
        assert excinfo.value.job_name == "boom"
        assert excinfo.value.user == "alice"
        assert "RuntimeError: engine bug" in excinfo.value.traceback_text
        # Results before the failing job streamed out before the raise.
        assert len(received) == 1 and received[0].ok

    def test_as_completed_drains_siblings_then_raises(self, _exploding_session):
        received = []
        with pytest.raises(BatchExecutionError) as excinfo:
            for job, result in self._batch().as_completed():
                received.append((job.name, result.ok))
        assert excinfo.value.job_name == "boom"
        assert ("good", True) in received and ("good2", True) in received

    @pytest.mark.skipif(sys.platform != "linux",
                        reason="relies on fork-start workers inheriting the patch")
    def test_stream_propagates_worker_engine_error(self, _exploding_session):
        with pytest.raises(BatchExecutionError) as excinfo:
            list(self._batch().stream(backend="process", workers=2))
        assert excinfo.value.job_name == "boom"
        assert "RuntimeError: engine bug" in excinfo.value.traceback_text


class TestInjectableResultCache:
    """Satellite: Batch(result_cache=...) isolates shared state."""

    def test_private_cache_leaves_module_cache_untouched(self):
        private = BoundedCache(128)
        batch = Batch(_jpeg_world(), result_cache=private)
        for i in range(3):
            batch.add(WALK_AMBIENT, name=f"j{i}")
        batch.run()
        assert batch.stats == {"jobs": 3, "cache_hits": 2, "forks": 1}
        assert len(private) == 1
        assert result_cache_size() == 0

    def test_private_cache_is_shared_across_batches_by_handle(self):
        private = BoundedCache(128)
        Batch(_jpeg_world(), result_cache=private).add(WALK_AMBIENT).run()
        second = Batch(_jpeg_world(), result_cache=private).add(WALK_AMBIENT)
        second.run()
        assert second.stats["cache_hits"] == 1

    def test_module_cache_does_not_serve_private_batches(self):
        Batch(_jpeg_world()).add(WALK_AMBIENT).run()
        assert result_cache_size() == 1
        private = Batch(_jpeg_world(), result_cache=BoundedCache(8)).add(WALK_AMBIENT)
        private.run()
        assert private.stats["cache_hits"] == 0


class TestStoreExecutor:
    def test_cold_boot_builds_and_links(self, tmp_path):
        clear_boot_cache()
        store = SnapshotStore(tmp_path / "store")
        executor = StoreExecutor(store=store, workers=2)
        with executor:
            [result] = Batch(_jpeg_world(), cache=False).add(WALK_AMBIENT) \
                                                        .run(executor=executor)
        assert result.ok
        assert executor.boot_info.source in ("build", "booted")
        assert len(store) == 1
        assert len(store.world_links()) == 1

    def test_second_boot_comes_from_disk_with_zero_build_ops(self, tmp_path):
        """The acceptance criterion, in-process: same world digest, fresh
        boot caches (as a new process would have) — the template restores
        from the store and performs no template-build kernel ops."""
        clear_boot_cache()
        store = SnapshotStore(tmp_path / "store")
        first = StoreExecutor(store=store, workers=2)
        with first:
            cold = Batch(_jpeg_world(), cache=False).add(WALK_AMBIENT) \
                                                    .run(executor=first)
        assert first.boot_info.source == "build"
        assert first.boot_info.build_ops_total > 0

        clear_boot_cache()   # forget the in-process template...
        clear_result_cache()
        second = StoreExecutor(store=store, workers=2)
        with second:
            warm = Batch(_jpeg_world(), cache=False).add(WALK_AMBIENT) \
                                                    .run(executor=second)
        assert second.boot_info.source == "store"
        assert second.boot_info.build_ops == \
            {key: 0 for key in second.boot_info.build_ops}
        assert [r.fingerprint() for r in warm] == [r.fingerprint() for r in cold]

    def test_store_worlds_reuse_in_process_boot_cache_afterwards(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        with StoreExecutor(store=store) as executor:
            Batch(_jpeg_world(), cache=False).add(WALK_AMBIENT).run(executor=executor)
        clear_boot_cache()
        with StoreExecutor(store=store) as executor:
            executor.prepare(_jpeg_world())
            assert executor.boot_info.source == "store"
        # ...and the adopted template now serves plain boots too.
        world = _jpeg_world().boot()
        assert world.pristine

    def test_mutated_world_is_never_linked_under_its_digest(self, tmp_path):
        """Regression: a post-boot mutation makes the machine something
        the config digest does not describe — the store must address it
        by content only, or every future boot of that configuration in
        a fresh process would silently receive the mutated image."""
        store = SnapshotStore(tmp_path / "store")
        world = _jpeg_world().boot()
        world.write_file("/tmp/dirty", b"x")
        assert not world.pristine
        with StoreExecutor(store=store, workers=2) as executor:
            [result] = Batch(world, cache=False).add(WALK_AMBIENT) \
                                                .run(executor=executor)
        assert result.ok
        assert store.world_links() == {}
        assert len(store) == 1  # the blob exists, content-addressed only

    def test_stale_world_version_links_are_misses(self, tmp_path):
        """Regression: a persistent store outliving a world-build code
        change must not serve images built by the old code — the link's
        version stamp turns them into misses."""
        from repro.world import WORLD_IMAGE_VERSION

        clear_boot_cache()
        store = SnapshotStore(tmp_path / "store")
        with StoreExecutor(store=store) as executor:
            executor.prepare(_jpeg_world())
        digest = _jpeg_world().digest
        snapshot, meta = store.resolve_world(digest)
        meta["world_version"] = WORLD_IMAGE_VERSION - 1
        store.link_world(digest, snapshot, meta)
        clear_boot_cache()
        with StoreExecutor(store=store) as executor:
            executor.prepare(_jpeg_world())
            assert executor.boot_info.source == "build"  # stale link ignored
        _snap, relinked = store.resolve_world(digest)
        assert relinked["world_version"] == WORLD_IMAGE_VERSION

    def test_prepare_reports_cached_for_warm_boot_cache(self):
        """A warm in-process boot cache forked the template — prepare
        must not claim the full build cost happened in this call."""
        clear_boot_cache()
        info = SequentialExecutor().prepare(_jpeg_world())
        assert info.source == "build" and info.build_ops_total > 0
        info2 = SequentialExecutor().prepare(_jpeg_world())
        assert info2.source == "cached" and info2.build_ops == {}

    def test_unpicklable_keyed_fixture_does_not_crash_store_runs(self, tmp_path):
        """Regression: a keyed setup fixture that cannot pickle (a
        lambda) must not abort a script batch — script jobs never read
        fixtures, so the value is simply absent from workers and links."""
        store = SnapshotStore(tmp_path / "store")
        world = _jpeg_world().with_setup(lambda kernel: (lambda: 42), key="cb")
        assert world.digest is not None
        with StoreExecutor(store=store, workers=2) as executor:
            [result] = Batch(world, cache=False).add(WALK_AMBIENT) \
                                                .run(executor=executor)
        assert result.ok
        # The link exists, just without the exotic fixture record.
        [(_wd, _snap)] = store.world_links().items()
        _digest, meta = store.resolve_world(world.digest)
        assert meta["fixtures"] == {}

    def test_undigestible_world_still_runs_via_store(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        world = _jpeg_world().with_setup(lambda kernel: None)
        assert world.digest is None
        with StoreExecutor(store=store, workers=2) as executor:
            [result] = Batch(world, cache=False).add(WALK_AMBIENT) \
                                                .run(executor=executor)
        assert result.ok
        assert store.world_links() == {}  # nothing to key a link on

    def test_adopt_template_requires_digest_and_unbooted(self, tmp_path):
        from repro.kernel.kernel import Kernel

        with pytest.raises(ValueError, match="digestible"):
            _jpeg_world().with_setup(lambda k: None).adopt_template(Kernel())
        booted = _jpeg_world().boot()
        with pytest.raises(RuntimeError, match="already booted"):
            booted.adopt_template(Kernel())


class TestExecutorReuse:
    def test_one_process_executor_serves_many_batches(self):
        with ProcessExecutor(workers=2) as executor:
            first = Batch(_jpeg_world(), cache=False).add(WALK_AMBIENT) \
                                                     .run(executor=executor)
            second = Batch(_jpeg_world(), cache=False).add(HELLO_AMBIENT) \
                                                      .run(executor=executor)
        assert first[0].ok and second[0].stdout == "hello\n"

    def test_rebinding_with_different_scripts_rebuilds_workers(self):
        """Regression: the worker pool bakes in the script registry at
        init, so a same-world batch with *different* scripts must not
        reuse stale workers (its `require` would miss)."""
        registry = ScriptRegistry().add("find_jpg.cap", FIND_JPG_CAP)
        with ProcessExecutor(workers=2) as executor:
            [bare] = Batch(_jpeg_world(), cache=False).add(WALK_AMBIENT) \
                                                      .run(executor=executor)
            [scripted] = (Batch(_jpeg_world(), scripts=registry, cache=False)
                          .add(FIND_JPG_AMBIENT).run(executor=executor))
        assert bare.ok
        assert scripted.ok, scripted.stderr
        assert "dog.jpg" in scripted.stdout

    def test_pool_map_accepts_executor_instances(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        world = _jpeg_world()
        with StoreExecutor(store=store, workers=2) as executor:
            results = world.pool(workers=2).map(_count_docs, executor=executor)
        assert results == [2, 2]

    def test_pool_accepts_store_backend_string(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "envstore"))
        results = _jpeg_world().pool(workers=2, backend="store").map(_count_docs)
        assert results == [2, 2]

    def test_pool_map_process_failures_are_typed(self):
        world = _jpeg_world()
        with pytest.raises(BatchExecutionError, match="map0"):
            world.pool(workers=1, backend="process").map(_boom)

    def test_pool_map_rejects_executor_plus_backend(self):
        pool = _jpeg_world().pool(workers=1)
        with pytest.raises(ValueError, match="not both"):
            pool.map(_count_docs, backend="thread",
                     executor=SequentialExecutor())

    def test_shared_executor_batches_do_not_swallow_each_other(self):
        """Regression: Batch drains exactly its own handles, so a
        caller's direct submission (or a sibling batch's) survives the
        batch run on a shared executor."""
        world = _jpeg_world().boot()
        with ThreadExecutor(workers=2) as executor:
            executor.bind(JobTemplate.for_world(world))
            mine = executor.submit(ExecutorJob(index=0, name="mine",
                                               source=HELLO_AMBIENT))
            results = Batch(_jpeg_world(), cache=False).add(WALK_AMBIENT) \
                                                       .add(WALK_AMBIENT) \
                                                       .run(executor=executor)
            drained = list(executor.as_completed())
        assert len(results) == 2
        assert [h.job.name for h in drained] == ["mine"]
        assert mine.result().stdout == "hello\n"

    def test_two_batches_interleaved_on_one_executor(self):
        """Two as_completed streams over one executor each see exactly
        their own jobs."""
        with ThreadExecutor(workers=2) as executor:
            a = Batch(_jpeg_world(), cache=False)
            b = Batch(_jpeg_world(), cache=False)
            for i in range(3):
                a.add(HELLO_AMBIENT, name=f"a{i}")
                b.add(WALK_AMBIENT, name=f"b{i}")
            stream_a = a.as_completed(executor=executor)
            stream_b = b.as_completed(executor=executor)
            got_a = [job.name for job, _r in stream_a]
            got_b = [job.name for job, _r in stream_b]
        assert sorted(got_a) == ["a0", "a1", "a2"]
        assert sorted(got_b) == ["b0", "b1", "b2"]

    def test_job_raised_timeout_error_is_a_typed_failure(self):
        """Regression: with no wait-timeout, a TimeoutError out of the
        job itself is a job failure, not a protocol timeout."""
        world = _jpeg_world().boot()
        with ThreadExecutor(workers=1) as executor:
            executor.bind(JobTemplate.for_world(world))
            handle = executor.submit(ExecutorJob(index=0, name="timeouty",
                                                 fn=_raise_timeout))
            with pytest.raises(BatchExecutionError, match="timeouty"):
                handle.result()


def _count_docs(world: World) -> int:
    return len(world.syscalls().contents("/home/alice/Documents"))


def _boom(world: World) -> None:
    raise RuntimeError("mapped function failed")


def _raise_timeout(world: World) -> None:
    raise TimeoutError("simulated network timeout inside the job")
