"""The process backend: GIL-free batches with byte-identical results.

``Batch(backend="process")`` pickles the booted template once, fans the
(script, user) jobs out to worker processes that restore-and-fork
locally, and merges frozen results home in submission order.  These
tests pin the contract: fingerprints identical to the sequential
backend for every case-study world, result caching and op counters
working across the process boundary, and typed errors that name the
failing job.
"""

from __future__ import annotations

import sys

import pytest

from repro.api import (
    Batch,
    BatchExecutionError,
    RunResult,
    ScriptRegistry,
    World,
    clear_result_cache,
)
from repro.casestudies.probes import case_study_batches

WALK_AMBIENT = """\
#lang shill/ambient
docs = open_dir("~/Documents");
entries = contents(docs);
"""

FIND_JPG_CAP = """\
#lang shill/cap
provide find_jpg :
  {cur : dir(+contents, +lookup, +path) \\/ file(+path),
   out : file(+append)} -> void;
find_jpg = fun(cur, out) {
  if is_file(cur) && has_ext(cur, "jpg") then
    append(out, path(cur) + "\\n");
  if is_dir(cur) then
    for name in contents(cur) {
      child = lookup(cur, name);
      if !is_syserror(child) then find_jpg(child, out);
    }
}
"""

FIND_JPG_AMBIENT = """\
#lang shill/ambient
require "find_jpg.cap";
docs = open_dir("~/Documents");
find_jpg(docs, stdout);
"""

#: One probe batch per case-study world (each module's ``probe_batch``
#: queues straight-line jobs touching that world's fixture), so the jobs
#: observe fixture state across the process boundary.  The table is
#: shared with the benchmark equivalence gate — same worlds, one place.
CASE_STUDY_BATCHES = case_study_batches()


@pytest.fixture(autouse=True)
def _fresh_result_cache():
    clear_result_cache()
    yield
    clear_result_cache()


def _jpeg_world() -> World:
    return World().for_user("alice").with_jpeg_samples()


class TestProcessBackendDeterminism:
    @pytest.mark.parametrize("name", sorted(CASE_STUDY_BATCHES))
    def test_process_matches_sequential_for_case_study_worlds(self, name):
        """The acceptance criterion: byte-identical fingerprint lists for
        all four case-study worlds."""
        build = CASE_STUDY_BATCHES[name]

        def run(backend):
            clear_result_cache()
            return build().run(backend=backend, workers=2)

        sequential = run("sequential")
        process = run("process")
        assert all(r.ok for r in sequential), sequential[0].stderr
        assert [r.fingerprint() for r in process] == \
            [r.fingerprint() for r in sequential]

    def test_all_three_backends_agree_with_scripts(self):
        registry = ScriptRegistry().add("find_jpg.cap", FIND_JPG_CAP)

        def run(backend):
            clear_result_cache()
            batch = Batch(_jpeg_world(), scripts=registry, cache=False)
            for i in range(4):
                batch.add(FIND_JPG_AMBIENT, name=f"find{i}")
                batch.add(WALK_AMBIENT, name=f"walk{i}")
            return batch.run(backend=backend, workers=2)

        sequential = run("sequential")
        for backend in ("thread", "process"):
            assert [r.fingerprint() for r in run(backend)] == \
                [r.fingerprint() for r in sequential], backend
        assert "dog.jpg" in sequential[0].stdout

    def test_failed_jobs_are_deterministic_across_the_boundary(self):
        bad = '#lang shill/ambient\nx = open_file("/does/not/exist");\n'

        def run(backend):
            clear_result_cache()
            return (Batch(_jpeg_world(), cache=False)
                    .add(WALK_AMBIENT, name="good")
                    .add(bad, name="bad")
                    .run(backend=backend))

        good_s, bad_s = run("sequential")
        good_p, bad_p = run("process")
        assert bad_s.status == 1 and "SysError" in bad_s.stderr
        assert bad_p.fingerprint() == bad_s.fingerprint()
        assert good_p.fingerprint() == good_s.fingerprint()
        # The failure's host traceback came home from the worker.
        assert "Traceback" in bad_p.traceback
        assert "SysError" in bad_p.traceback

    def test_unknown_user_fails_that_job_alone(self):
        results = (Batch(_jpeg_world(), cache=False)
                   .add(WALK_AMBIENT, user="alice")
                   .add(WALK_AMBIENT, user="nosuchuser")
                   .run(backend="process"))
        assert results[0].ok
        assert results[1].status == 1 and "no such user" in results[1].stderr


class TestProcessBackendCache:
    def test_cache_works_across_the_process_boundary(self):
        """Duplicate jobs dispatch once; worker results land in the
        coordinator's cache; a second batch is served without any pool."""
        batch = Batch(_jpeg_world())
        for i in range(5):
            batch.add(WALK_AMBIENT, name=f"j{i}")
        batch.run(backend="process", workers=2)
        assert batch.stats == {"jobs": 5, "cache_hits": 4, "forks": 1}

        second = Batch(_jpeg_world()).add(WALK_AMBIENT)
        second.run(backend="process")
        assert second.stats == {"jobs": 1, "cache_hits": 1, "forks": 0}

    def test_sequential_results_serve_process_runs_and_vice_versa(self):
        first = Batch(_jpeg_world()).add(WALK_AMBIENT)
        [r1] = first.run(backend="sequential")
        second = Batch(_jpeg_world()).add(WALK_AMBIENT)
        [r2] = second.run(backend="process")
        assert second.stats["cache_hits"] == 1
        assert r2.fingerprint() == r1.fingerprint()


class TestBatchErrors:
    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            Batch(_jpeg_world()).add(WALK_AMBIENT).run(backend="gpu")

    def test_engine_error_raises_typed_batch_error(self, monkeypatch):
        """A non-ReproError out of the engine is not a script result: it
        re-raises as BatchExecutionError naming the (script, user) job."""
        from repro.api import sessions

        def explode(self, source, name="<ambient>"):
            raise RuntimeError("engine bug")

        monkeypatch.setattr(sessions.Session, "run_ambient", explode)
        batch = Batch(_jpeg_world(), cache=False).add(WALK_AMBIENT, name="boom")
        with pytest.raises(BatchExecutionError) as excinfo:
            batch.run(backend="sequential")
        err = excinfo.value
        assert err.job_name == "boom"
        assert err.user == "alice"
        assert "RuntimeError: engine bug" in err.traceback_text
        assert "boom" in str(err)

    @pytest.mark.skipif(sys.platform != "linux",
                        reason="relies on fork-start workers inheriting the patch")
    def test_engine_error_crosses_the_process_boundary(self, monkeypatch):
        from repro.api import sessions

        def explode(self, source, name="<ambient>"):
            raise RuntimeError("engine bug in worker")

        monkeypatch.setattr(sessions.Session, "run_ambient", explode)
        batch = Batch(_jpeg_world(), cache=False).add(WALK_AMBIENT, name="boom")
        with pytest.raises(BatchExecutionError) as excinfo:
            batch.run(backend="process")
        assert excinfo.value.job_name == "boom"
        assert "RuntimeError: engine bug in worker" in excinfo.value.traceback_text


class TestBatchErrorPickling:
    def test_batch_execution_error_round_trips(self):
        """Users wrap Batch.run in their own multiprocessing layers, so
        the typed error must survive pickling with all its attributes."""
        import pickle

        err = BatchExecutionError("job3", "alice", "Traceback: boom\n")
        clone = pickle.loads(pickle.dumps(err))
        assert clone.job_name == "job3"
        assert clone.user == "alice"
        assert clone.traceback_text == "Traceback: boom\n"
        assert str(clone) == str(err)


class TestRunResultPickling:
    def test_results_round_trip_through_pickle(self):
        import pickle

        [result] = Batch(_jpeg_world(), cache=False).add(WALK_AMBIENT).run()
        clone = pickle.loads(pickle.dumps(result))
        assert clone.fingerprint() == result.fingerprint()
        assert dict(clone.profile) == dict(result.profile)
        assert dict(clone.ops) == dict(result.ops)

    def test_traceback_is_not_part_of_the_fingerprint(self):
        a = RunResult(status=1, stderr="x\n", traceback="Traceback A")
        b = RunResult(status=1, stderr="x\n", traceback="Traceback B")
        assert a.fingerprint() == b.fingerprint()


class TestWorldPoolBackends:
    def test_pool_process_map_runs_module_level_functions(self):
        world = _jpeg_world()
        results = world.pool(workers=2, backend="process").map(_count_docs)
        assert results == [2, 2]

    def test_pool_map_backend_override_and_compat(self):
        world = _jpeg_world()
        pool = world.pool(workers=2)
        assert pool.map(_count_docs) == [2, 2]                     # thread
        assert pool.map(_count_docs, parallel=False) == [2, 2]     # sequential
        assert pool.map(_count_docs, backend="process") == [2, 2]

    def test_pool_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            _jpeg_world().pool(backend="gpu")

    def test_pool_process_forks_are_isolated_from_base(self):
        world = _jpeg_world()
        world.boot()
        world.pool(workers=2, backend="process").map(_scribble)
        assert world.read_file("/home/alice/Documents/notes.txt") == b"not a jpeg"


def _count_docs(world: World) -> int:
    return len(world.syscalls().contents("/home/alice/Documents"))


def _scribble(world: World) -> None:
    world.write_file("/home/alice/Documents/notes.txt", b"scribbled")
