"""ScriptRegistry: sources from strings, files, and directories."""

from __future__ import annotations

import pytest

from repro.api import ScriptRegistry


def test_add_string_sources():
    reg = ScriptRegistry().add("a.cap", "#lang shill/cap\n").add("b.ambient", "#lang shill/ambient\n")
    assert "a.cap" in reg and "b.ambient" in reg
    assert reg.get("a.cap").startswith("#lang shill/cap")
    assert len(reg) == 2


def test_init_from_mapping_copies():
    base = {"a.cap": "src"}
    reg = ScriptRegistry(base)
    base["a.cap"] = "mutated"
    assert reg.get("a.cap") == "src"


def test_add_file_uses_basename(tmp_path):
    f = tmp_path / "hello.cap"
    f.write_text("#lang shill/cap\n")
    reg = ScriptRegistry().add_file(f)
    assert reg.get("hello.cap") == "#lang shill/cap\n"


def test_add_file_with_explicit_name(tmp_path):
    f = tmp_path / "whatever.txt"
    f.write_text("src")
    assert ScriptRegistry().add_file(f, name="renamed.cap").get("renamed.cap") == "src"


def test_add_dir_picks_only_script_suffixes(tmp_path):
    (tmp_path / "one.cap").write_text("1")
    (tmp_path / "two.ambient").write_text("2")
    (tmp_path / "notes.txt").write_text("skip me")
    reg = ScriptRegistry().add_dir(tmp_path)
    assert sorted(reg) == ["one.cap", "two.ambient"]


def test_add_dir_recursive_rejects_colliding_basenames(tmp_path):
    (tmp_path / "a").mkdir()
    (tmp_path / "b").mkdir()
    (tmp_path / "a" / "util.cap").write_text("A")
    (tmp_path / "b" / "util.cap").write_text("B")
    with pytest.raises(ValueError, match="duplicate script name"):
        ScriptRegistry().add_dir(tmp_path, recursive=True)


def test_add_dir_rejects_cross_call_collisions_too(tmp_path):
    (tmp_path / "a").mkdir()
    (tmp_path / "b").mkdir()
    (tmp_path / "a" / "util.cap").write_text("A")
    (tmp_path / "b" / "util.cap").write_text("B")
    reg = ScriptRegistry().add_dir(tmp_path / "a")
    with pytest.raises(ValueError, match="duplicate script name"):
        reg.add_dir(tmp_path / "b")
    # Re-adding identical content is not a conflict.
    reg.add_dir(tmp_path / "a")


def test_add_dir_rejects_non_directory(tmp_path):
    with pytest.raises(NotADirectoryError):
        ScriptRegistry().add_dir(tmp_path / "missing")


def test_merged_does_not_mutate_operands():
    a = ScriptRegistry({"a.cap": "1"})
    b = ScriptRegistry({"b.cap": "2"})
    merged = a.merged(b)
    assert sorted(merged) == ["a.cap", "b.cap"]
    assert len(a) == 1 and len(b) == 1
