"""RunResult field fidelity: stdout vs stderr, denials, profile keys."""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import PROFILE_KEYS, ScriptRegistry, Sandbox, World

WRITE_BOTH = """\
#lang shill/ambient
append(stdout, "to stdout\\n");
append(stderr, "to stderr\\n");
"""

EXEC_CAT = """\
#lang shill/cap
require shill/native;
provide run_cat : {wallet : native_wallet, target : file(+read, +path),
                   out : file(+write, +append)} -> is_num;
run_cat = fun(wallet, target, out) {
  cat = pkg_native("cat", wallet);
  cat([target], stdout = out);
}
"""

EXEC_AMBIENT = """\
#lang shill/ambient
require shill/native;
require "run_cat.cap";
root = open_dir("/");
wallet = create_wallet();
populate_native_wallet(wallet, root,
                       "/bin:/usr/bin:/usr/local/bin",
                       "/lib:/usr/lib:/usr/local/lib",
                       pipe_factory);
target = open_file("/etc/locale.conf");
run_cat(wallet, target, stdout);
"""


class TestAmbientRunResults:
    def test_stdout_and_stderr_are_distinct(self):
        result = World().boot().session().run_ambient(WRITE_BOTH)
        assert result.stdout == "to stdout\n"
        assert result.stderr == "to stderr\n"

    def test_result_is_frozen(self):
        result = World().boot().session().run_ambient(WRITE_BOTH)
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.stdout = "tampered"
        with pytest.raises(TypeError):
            result.profile["total"] = 0.0

    def test_profile_carries_documented_keys(self):
        result = World().boot().session().run_ambient(WRITE_BOTH)
        assert tuple(sorted(result.profile)) == tuple(sorted(PROFILE_KEYS))
        assert result.profile["total"] > 0
        assert result.profile["remaining"] <= result.profile["total"]

    def test_successful_run_reports_ok_and_no_sandboxes(self):
        result = World().boot().session().run_ambient(WRITE_BOTH)
        assert result.ok and result.status == 0
        assert result.sandbox_count == 0
        assert result.denials == ()

    def test_exec_counts_sandboxes_per_run(self):
        session = World().boot().session(
            scripts=ScriptRegistry().add("run_cat.cap", EXEC_CAT))
        first = session.run_ambient(EXEC_AMBIENT, "a.ambient")
        # pkg_native's ldd probe + the cat sandbox itself
        assert first.sandbox_count == 2
        assert "LANG=C.UTF-8" in first.stdout
        # A second run on the same session reports only its own sandboxes
        # and its own output slice.
        second = session.run_ambient(WRITE_BOTH, "b.ambient")
        assert second.sandbox_count == 0
        assert second.stdout == "to stdout\n"
        assert session.sandbox_count == 2

    def test_session_result_snapshot_accumulates(self):
        session = World().boot().session()
        session.run_ambient(WRITE_BOTH, "a.ambient")
        session.run_ambient(WRITE_BOTH, "b.ambient")
        snapshot = session.result()
        assert snapshot.stdout == "to stdout\nto stdout\n"
        assert snapshot.stderr == "to stderr\nto stderr\n"

    def test_per_run_profile_is_a_delta(self):
        session = World().boot().session(
            scripts=ScriptRegistry().add("run_cat.cap", EXEC_CAT))
        first = session.run_ambient(EXEC_AMBIENT, "a.ambient")
        assert first.profile["sandbox_exec"] > 0
        second = session.run_ambient(WRITE_BOTH, "b.ambient")
        # The second (sandbox-free) run must not inherit run one's
        # sandbox timings, and its total covers only itself.
        assert second.profile["sandbox_exec"] == 0.0
        assert second.profile["sandbox_setup"] == 0.0
        assert second.profile["total"] < first.profile["total"]

    def test_sessions_on_a_shared_kernel_keep_audit_trails_apart(self):
        world = World().boot()
        quiet = world.session()
        noisy = world.session(
            scripts=ScriptRegistry().add("run_cat.cap", EXEC_CAT))
        noisy.run_ambient(EXEC_AMBIENT, "a.ambient")
        assert noisy.sandbox_count == 2
        # The bystander session reports none of its neighbour's sandbox
        # sessions in its own audit snapshot.
        assert quiet.result().denials == ()
        assert quiet.result().auto_granted == ()
        assert quiet.denials == ()


class TestSandboxRunResults:
    POLICY_OK = (
        "/ : +lookup with {}\n"
        "/etc : +lookup with {}\n"
        "/lib : +lookup, +read, +stat, +path\n"
        "/libexec : +lookup, +read, +stat, +path\n"
        "/etc/locale.conf : +read, +stat, +path\n"
    )

    def test_allowed_command_captures_stdout(self):
        world = World().boot()
        result = world.sandbox(self.POLICY_OK).exec(["/bin/cat", "/etc/locale.conf"])
        assert result.ok
        assert "LANG=C.UTF-8" in result.stdout
        assert result.sandbox_count == 1

    def test_denied_command_reports_denial_entries(self):
        world = World().boot()
        result = world.sandbox("").exec(["/bin/cat", "/etc/passwd"])
        assert not result.ok
        assert result.denied
        # The empty policy stops cat at the very first resolution step.
        assert all(entry.kind == "deny" for entry in result.denials)
        assert any("missing +" in line for line in result.denial_lines())

    def test_debug_mode_reports_auto_grants(self):
        world = World().boot()
        result = world.sandbox("", debug=True).exec(["/bin/cat", "/etc/passwd"])
        assert result.ok
        assert any("+read" in line for line in result.auto_granted)

    def test_session_shell_uses_session_user(self):
        session = World().for_user("alice").boot().session()
        sandbox = session.shell(self.POLICY_OK)
        assert isinstance(sandbox, Sandbox)
        assert sandbox.user == "alice"
        assert sandbox.exec(["/bin/cat", "/etc/locale.conf"]).ok

    def test_stdin_bytes_reach_the_command(self):
        world = World().boot()
        policy = (
            "/ : +lookup with {}\n"
            "/lib : +lookup, +read, +stat, +path\n"
            "/libexec : +lookup, +read, +stat, +path\n"
        )
        result = world.sandbox(policy).exec(["/bin/cat"], stdin=b"piped through\n")
        assert result.ok
        assert result.stdout == "piped through\n"
