"""The Batch runner: per-job forks, determinism, and the result cache."""

from __future__ import annotations

import pytest

from repro.api import (
    Batch,
    ScriptRegistry,
    World,
    clear_result_cache,
    result_cache_size,
)

WALK_AMBIENT = """\
#lang shill/ambient
docs = open_dir("~/Documents");
entries = contents(docs);
"""

FIND_JPG_CAP = """\
#lang shill/cap
provide find_jpg :
  {cur : dir(+contents, +lookup, +path) \\/ file(+path),
   out : file(+append)} -> void;
find_jpg = fun(cur, out) {
  if is_file(cur) && has_ext(cur, "jpg") then
    append(out, path(cur) + "\\n");
  if is_dir(cur) then
    for name in contents(cur) {
      child = lookup(cur, name);
      if !is_syserror(child) then find_jpg(child, out);
    }
}
"""

FIND_JPG_AMBIENT = """\
#lang shill/ambient
require "find_jpg.cap";
docs = open_dir("~/Documents");
find_jpg(docs, stdout);
"""

WRITE_AMBIENT = """\
#lang shill/ambient
out = open_file("~/Documents/notes.txt");
append(out, "batched\\n");
"""


def _jpeg_world() -> World:
    return World().for_user("alice").with_jpeg_samples()


@pytest.fixture(autouse=True)
def _fresh_result_cache():
    clear_result_cache()
    yield
    clear_result_cache()


class TestBatchBasics:
    def test_results_in_submission_order(self):
        registry = ScriptRegistry().add("find_jpg.cap", FIND_JPG_CAP)
        batch = (
            Batch(_jpeg_world(), scripts=registry, cache=False)
            .add(FIND_JPG_AMBIENT, name="find")
            .add(WALK_AMBIENT, name="walk")
        )
        results = batch.run()
        assert len(results) == 2
        assert "dog.jpg" in results[0].stdout
        assert results[1].stdout == ""
        assert all(r.ok for r in results)

    def test_jobs_run_against_isolated_forks(self):
        world = _jpeg_world()
        batch = Batch(world, cache=False)
        for i in range(3):
            batch.add(WRITE_AMBIENT, name=f"w{i}")
        results = batch.run()
        # Each job appended to its own fork: the base world's file is
        # untouched and every job saw the same starting state.
        assert world.read_file("/home/alice/Documents/notes.txt") == b"not a jpeg"
        assert len({r.fingerprint() for r in results}) == 1

    def test_per_user_jobs(self):
        whoami = '#lang shill/ambient\nh = open_dir("~");\nappend(stdout, path(h));\n'
        world = World().with_users("carol").with_jpeg_samples(owner="alice")
        batch = Batch(world, cache=False)
        batch.add(whoami, user="alice")
        batch.add(whoami, user="carol")
        alice_run, carol_run = batch.run()
        assert alice_run.stdout == "/home/alice"
        assert carol_run.stdout == "/home/carol"

    def test_batch_requires_a_world(self):
        from repro.kernel.kernel import Kernel

        with pytest.raises(TypeError):
            Batch(Kernel())

    def test_ops_are_captured_per_run(self):
        registry = ScriptRegistry().add("find_jpg.cap", FIND_JPG_CAP)
        [result] = Batch(_jpeg_world(), scripts=registry).add(FIND_JPG_AMBIENT).run()
        assert result.ops["vnode_ops"] > 0

    def test_failing_job_does_not_abort_siblings(self):
        """A script error becomes a failed RunResult; other jobs keep
        their results (they run on isolated forks anyway)."""
        bad = '#lang shill/ambient\nx = open_file("/does/not/exist");\n'
        batch = (
            Batch(_jpeg_world(), cache=False)
            .add(WALK_AMBIENT, name="good")
            .add(bad, name="bad")
            .add(WALK_AMBIENT, name="good2")
        )
        good, failed, good2 = batch.run()
        assert good.ok and good2.ok
        assert failed.status == 1 and "SysError" in failed.stderr
        # ...and failures are deterministic like any other result
        parallel = (
            Batch(_jpeg_world(), cache=False)
            .add(WALK_AMBIENT, name="good").add(bad, name="bad")
            .add(WALK_AMBIENT, name="good2")
            .run(parallel=True, workers=3)
        )
        assert [r.fingerprint() for r in parallel] == \
            [r.fingerprint() for r in (good, failed, good2)]

    def test_unknown_user_job_is_isolated_too(self):
        """An unknown job user fails that job alone (there is no session
        to snapshot, so only the error is reported)."""
        batch = (
            Batch(_jpeg_world(), cache=False)
            .add(WALK_AMBIENT, user="alice")
            .add(WALK_AMBIENT, user="nosuchuser")
        )
        good, failed = batch.run()
        assert good.ok
        assert failed.status == 1 and "no such user" in failed.stderr


class TestDeterminism:
    def _results(self, parallel: bool):
        registry = ScriptRegistry().add("find_jpg.cap", FIND_JPG_CAP)
        batch = Batch(_jpeg_world(), scripts=registry, cache=False)
        for i in range(8):
            batch.add(FIND_JPG_AMBIENT, user="alice", name=f"find{i}")
            batch.add(WALK_AMBIENT, user="alice", name=f"walk{i}")
        return batch.run(parallel=parallel, workers=4)

    def test_parallel_matches_sequential_byte_for_byte(self):
        clear_result_cache()
        sequential = self._results(parallel=False)
        clear_result_cache()
        parallel = self._results(parallel=True)
        assert [r.fingerprint() for r in parallel] == \
            [r.fingerprint() for r in sequential]

    def test_repeat_runs_are_identical(self):
        clear_result_cache()
        first = self._results(parallel=False)
        clear_result_cache()
        second = self._results(parallel=False)
        assert [r.fingerprint() for r in first] == \
            [r.fingerprint() for r in second]


class TestResultCache:
    def test_identical_jobs_hit_the_cache(self):
        batch = Batch(_jpeg_world())
        for i in range(5):
            batch.add(WALK_AMBIENT, name=f"j{i}")
        batch.run()
        stats = batch.stats
        assert stats == {"jobs": 5, "cache_hits": 4, "forks": 1}
        assert result_cache_size() == 1

    def test_cache_shared_across_batches_with_equal_worlds(self):
        Batch(_jpeg_world()).add(WALK_AMBIENT).run()
        second = Batch(_jpeg_world()).add(WALK_AMBIENT).run()
        batch = Batch(_jpeg_world()).add(WALK_AMBIENT)
        assert batch.run() == second
        assert batch.stats["cache_hits"] == 1

    def test_mutated_world_results_never_enter_the_cache(self):
        world = _jpeg_world().boot()
        world.write_file("/tmp/dirty", b"x")
        batch = Batch(world).add(WALK_AMBIENT).add(WALK_AMBIENT)
        batch.run()
        # Identical queued jobs still dedup within the batch (they fork
        # the same drifted kernel), but nothing lands in the shared
        # cache: the results no longer describe the template digest.
        assert batch.stats["cache_hits"] == 1
        assert result_cache_size() == 0

    def test_cache_distinguishes_users_scripts_and_worlds(self):
        registry = ScriptRegistry().add("find_jpg.cap", FIND_JPG_CAP)
        Batch(_jpeg_world(), scripts=registry).add(FIND_JPG_AMBIENT).run()
        assert result_cache_size() == 1
        # Different registered scripts -> different key (even same source).
        other = ScriptRegistry().add("find_jpg.cap", FIND_JPG_CAP + "\n# v2\n")
        Batch(_jpeg_world(), scripts=other).add(FIND_JPG_AMBIENT).run()
        assert result_cache_size() == 2
        # Different world config -> different key.
        Batch(World().for_user("tester").with_jpeg_samples(),
              scripts=registry).add(FIND_JPG_AMBIENT).run()
        assert result_cache_size() == 3

    def test_cache_disabled(self):
        batch = Batch(_jpeg_world(), cache=False).add(WALK_AMBIENT).add(WALK_AMBIENT)
        batch.run()
        assert batch.stats == {"jobs": 2, "cache_hits": 0, "forks": 2}
        assert result_cache_size() == 0


class TestDependencyAwareCache:
    """The dependency-aware verdict probe: cached results survive world
    mutations that provably cannot intersect their static footprint."""

    def test_disjoint_patch_serves_from_cache_with_zero_kernel_ops(self):
        world = _jpeg_world()
        [first] = Batch(world).add(WALK_AMBIENT, name="walk").run()
        world.patch_file("/tmp/unrelated.txt", b"disjoint mutation")
        assert not world.pristine
        batch = Batch(world).add(WALK_AMBIENT, name="walk")
        before = world.kernel.stats.snapshot()
        [second] = batch.run()
        after = world.kernel.stats.snapshot()
        assert batch.verdicts == {0: "hit"}
        assert batch.stats["cache_hits"] == 1
        assert second.fingerprint() == first.fingerprint()
        # The whole answer came from the cache: no fork, and not one
        # kernel op moved on the live world.
        assert batch.stats["forks"] == 0
        nonzero = {k: v
                   for k, v in world.kernel.stats.delta(before, after).items()
                   if v}
        assert nonzero == {}

    def test_intersecting_patch_invalidates_with_blame(self):
        world = _jpeg_world()
        Batch(world).add(WALK_AMBIENT, name="walk").run()
        world.patch_file("/home/alice/Documents/extra.jpg", b"jpegdata")
        batch = Batch(world).add(WALK_AMBIENT, name="walk")
        batch.run()
        assert batch.verdicts[0] == \
            "invalidated-by:/home/alice/Documents/extra.jpg"
        assert batch.stats["cache_hits"] == 0
        assert batch.cache_report["invalidated"] == 1

    def test_invalidated_result_reflects_the_mutation(self):
        registry = ScriptRegistry().add("find_jpg.cap", FIND_JPG_CAP)
        world = _jpeg_world()
        [first] = (Batch(world, scripts=registry)
                   .add(FIND_JPG_AMBIENT, name="find").run())
        world.patch_file("/home/alice/Documents/extra.jpg", b"jpegdata")
        [second] = (Batch(world, scripts=registry)
                    .add(FIND_JPG_AMBIENT, name="find").run())
        assert "extra.jpg" not in first.stdout
        assert "extra.jpg" in second.stdout

    def test_process_spawning_mutation_invalidates_as_drift(self):
        world = _jpeg_world()
        Batch(world).add(WALK_AMBIENT, name="walk").run()
        world.write_file("/tmp/unrelated.txt", b"x")  # spawns a process
        batch = Batch(world).add(WALK_AMBIENT, name="walk")
        batch.run()
        assert batch.verdicts[0].startswith("invalidated-by:")
        assert batch.stats["cache_hits"] == 0

    def test_unresolved_require_is_uncacheable(self):
        world = _jpeg_world()
        source = 'require "nowhere.cap";\n'
        ambient = "#lang shill/ambient\n" + source
        Batch(world).add(ambient, name="mystery").run()
        world.patch_file("/tmp/unrelated.txt", b"x")
        batch = Batch(world).add(ambient, name="mystery")
        batch.run()
        assert batch.verdicts[0].startswith("uncacheable:")
        assert batch.cache_report["uncacheable"] == 1

    def test_soundness_escape_invalidates_and_audits(self):
        from repro.api import batch as batch_mod

        world = _jpeg_world()
        [_] = Batch(world).add(WALK_AMBIENT, name="walk").run()
        # Forge an under-declared contract: tamper with the recorded
        # touched set so one touch falls outside the static footprint.
        [(key, (stored, _touched))] = list(batch_mod._RESULT_CACHE._data.items())
        batch_mod._RESULT_CACHE._data[key] = (stored, (("read", "/etc/passwd"),))
        world.patch_file("/tmp/unrelated.txt", b"disjoint mutation")
        batch = Batch(world).add(WALK_AMBIENT, name="walk")
        batch.run()
        assert batch.verdicts[0] == "invalidated-by:escape:read:/etc/passwd"
        assert batch.stats["cache_hits"] == 0
        [event] = batch.audit_events
        assert "escaped the static footprint" in event and "walk" in event

    def test_verdicts_identical_across_executors(self):
        fingerprints = {}
        verdicts = {}
        for name in ("sequential", "thread", "process"):
            clear_result_cache()
            world = _jpeg_world()
            Batch(world).add(WALK_AMBIENT, name="walk").run(backend=name)
            world.patch_file("/tmp/unrelated.txt", b"disjoint mutation")
            batch = Batch(world).add(WALK_AMBIENT, name="walk")
            [result] = batch.run(backend=name)
            verdicts[name] = batch.verdicts[0]
            fingerprints[name] = result.fingerprint()
        assert set(verdicts.values()) == {"hit"}
        assert len(set(fingerprints.values())) == 1
