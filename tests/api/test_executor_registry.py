"""The executor registry: register once, usable everywhere at once.

The api_redesign promise: ``register_executor(name, factory)`` makes a
strategy constructible by ``create_executor``, visible in
``EXECUTOR_CHOICES``, and therefore valid as a ``Batch`` backend string
— with the legacy ``resolve_executor`` spelling surviving as a
one-warning deprecation shim.
"""

from __future__ import annotations

import warnings

import pytest

from repro.api import (
    EXECUTOR_CHOICES,
    Batch,
    SequentialExecutor,
    World,
    create_executor,
    register_executor,
    resolve_executor,
)
from repro.api.executors.base import _EXECUTOR_REGISTRY

HELLO = '#lang shill/ambient\nappend(stdout, "hello\\n");\n'


@pytest.fixture
def scratch_registry():
    """Let a test register names and forget them afterwards."""
    before = dict(_EXECUTOR_REGISTRY)
    yield
    _EXECUTOR_REGISTRY.clear()
    _EXECUTOR_REGISTRY.update(before)


class TestRegistry:
    def test_builtins_are_registered_in_order(self):
        assert list(EXECUTOR_CHOICES)[:4] == ["sequential", "thread",
                                              "process", "store"]
        assert "remote" in EXECUTOR_CHOICES
        assert "serve" in EXECUTOR_CHOICES

    def test_choices_is_a_live_view(self, scratch_registry):
        assert "toy" not in EXECUTOR_CHOICES
        register_executor("toy", lambda **_: SequentialExecutor())
        assert "toy" in EXECUTOR_CHOICES
        assert "toy" in tuple(EXECUTOR_CHOICES)
        assert EXECUTOR_CHOICES[-1] == "toy"

    def test_create_executor_forwards_options(self):
        executor = create_executor("thread", workers=2)
        assert executor.name == "thread" and executor.workers == 2
        executor.close()

    def test_create_executor_emits_no_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            create_executor("sequential").close()

    def test_unknown_name_lists_the_choices(self):
        with pytest.raises(ValueError, match="sequential.*thread"):
            create_executor("nonesuch")

    def test_names_must_be_nonempty_strings(self):
        with pytest.raises(ValueError, match="non-empty"):
            register_executor("", lambda **_: None)

    def test_factories_must_be_callable(self):
        with pytest.raises(TypeError, match="not callable"):
            register_executor("broken", None)


class TestEndToEnd:
    def test_registered_executor_works_as_a_batch_backend(
            self, scratch_registry):
        """The whole point: a third-party strategy, registered once,
        reachable through Batch's plain backend= string."""
        built = []

        class CountingExecutor(SequentialExecutor):
            name = "counting"

        def factory(workers=None, **_):
            executor = CountingExecutor(workers=workers)
            built.append(executor)
            return executor

        register_executor("counting", factory)
        world = World().for_user("alice").with_jpeg_samples()
        [result] = Batch(world, cache=False).add(HELLO).run(backend="counting")
        assert result.stdout == "hello\n"
        assert len(built) == 1 and isinstance(built[0], CountingExecutor)

    def test_reregistering_a_name_replaces_it(self, scratch_registry):
        register_executor("toy", lambda **_: SequentialExecutor(workers=1))
        register_executor("toy", lambda **_: SequentialExecutor(workers=7))
        executor = create_executor("toy")
        assert executor.workers == 7
        executor.close()


class TestDeprecationShim:
    def test_resolve_executor_warns_exactly_once(self):
        with warnings.catch_warnings(record=True) as seen:
            warnings.simplefilter("always")
            executor = resolve_executor("sequential")
        executor.close()
        deprecations = [w for w in seen
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "create_executor" in str(deprecations[0].message)

    def test_resolve_executor_still_constructs_correctly(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            executor = resolve_executor("thread", workers=3)
        assert executor.name == "thread" and executor.workers == 3
        executor.close()

    def test_batch_default_path_does_not_warn(self):
        """Batch.run() and backend= strings ride the non-deprecated
        create_executor path — no warning for users who never typed
        resolve_executor."""
        world = World().for_user("alice").with_jpeg_samples()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            [result] = Batch(world, cache=False).add(HELLO).run()
            [result2] = Batch(world, cache=False).add(HELLO) \
                .run(backend="thread")
        assert result.stdout == result2.stdout == "hello\n"
