"""Deprecation shims: the engine stays importable where it always was."""

from __future__ import annotations

import pytest


def test_shillruntime_imports_from_historical_location():
    from repro.lang.runner import ShillRuntime
    from repro.world import build_world

    runtime = ShillRuntime(build_world(), user="root", cwd="/root")
    assert runtime.profile["sandbox_count"] == 0


def test_api_session_wraps_the_same_engine():
    from repro.api import Session, World
    from repro.lang.runner import ShillRuntime

    session = Session(World().boot().kernel)
    assert isinstance(session.runtime, ShillRuntime)


def test_repro_api_shillruntime_alias_warns():
    import repro.api as api
    from repro.lang.runner import ShillRuntime

    with pytest.warns(DeprecationWarning, match="deprecated alias"):
        assert api.ShillRuntime is ShillRuntime


def test_repro_api_build_world_alias_warns():
    import repro.api as api
    from repro.world import build_world

    with pytest.warns(DeprecationWarning, match="deprecated alias"):
        assert api.build_world is build_world


def test_top_level_reexports():
    import repro

    assert repro.World is repro.api.World
    assert repro.Session is repro.api.Session
    assert repro.RunResult is repro.api.RunResult
    with pytest.raises(AttributeError):
        repro.NoSuchName


def test_casestudy_results_keep_runtime_property():
    from repro.api import World
    from repro.casestudies.findgrep import run_simple
    from repro.lang.runner import ShillRuntime

    world = World().with_usr_src(subsystems=1, files_per_dir=4).boot()
    result = run_simple(world.kernel)
    with pytest.warns(DeprecationWarning, match="deprecated alias"):
        engine = result.runtime
    assert isinstance(engine, ShillRuntime)
    assert engine.profile["sandbox_count"] == result.run.sandbox_count
