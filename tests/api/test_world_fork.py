"""World snapshot/fork: isolation, copy-on-write, and the boot cache."""

from __future__ import annotations

import pytest

from repro.api import World, boot_cache_size, clear_boot_cache


def _find_vnode(world: World, path: str):
    kernel = world.kernel
    node = kernel.vfs.root
    for comp in [p for p in path.split("/") if p]:
        node = kernel.vfs.lookup(node, comp)
    return node


class TestForkIsolation:
    def test_writes_do_not_leak_into_template_or_siblings(self):
        base = World().with_jpeg_samples(owner="alice").boot()
        fork_a = base.fork()
        fork_b = base.fork()

        fork_a.write_file("/home/alice/Documents/dog.jpg", b"REWRITTEN-IN-A")

        assert base.read_file("/home/alice/Documents/dog.jpg").startswith(b"JPEG")
        assert fork_b.read_file("/home/alice/Documents/dog.jpg").startswith(b"JPEG")
        assert fork_a.read_file("/home/alice/Documents/dog.jpg") == b"REWRITTEN-IN-A"

    def test_new_files_and_unlinks_stay_in_the_fork(self):
        base = World().boot()
        fork = base.fork()
        fork.write_file("/tmp/only-in-fork", b"x")
        fork.syscalls().unlink("/etc/resolv.conf")

        with pytest.raises(Exception):
            base.read_file("/tmp/only-in-fork")
        assert base.read_file("/etc/resolv.conf")
        with pytest.raises(Exception):
            fork.read_file("/etc/resolv.conf")

    def test_chmod_chown_stay_in_the_fork(self):
        base = World().boot()
        fork = base.fork()
        fork.syscalls("root").chmod("/etc/passwd", 0o600)
        assert fork.syscalls().stat("/etc/passwd").mode == 0o600
        assert base.syscalls().stat("/etc/passwd").mode == 0o644

    def test_user_adds_stay_in_the_fork(self):
        base = World().boot()
        fork = base.fork()
        fork.kernel.users.add_user("mallory", 3001, 3001)
        assert fork.kernel.users.lookup("mallory").uid == 3001
        with pytest.raises(KeyError):
            base.kernel.users.lookup("mallory")

    def test_audit_records_stay_in_the_fork(self):
        base = World().boot()
        fork = base.fork()
        # A denied run inside the fork appends audit records there only.
        sandbox = fork.sandbox("")
        result = sandbox.exec(["/bin/cat", "/etc/passwd"])
        assert result.denied
        fork_records = fork.kernel.shill_policy().sessions.audit_records()
        base_records = base.kernel.shill_policy().sessions.audit_records()
        assert len(fork_records) > len(base_records)

    def test_sessions_on_template_unaffected_by_fork_runs(self):
        base = World().for_user("alice").with_jpeg_samples().boot()
        fork = base.fork()
        fork.session().run_ambient(
            '#lang shill/ambient\nd = open_dir("~/Documents");\nx = contents(d);\n')
        assert not base.kernel.procs.live_processes()


class TestCopyOnWrite:
    def test_buffers_shared_until_first_write(self):
        base = World().with_jpeg_samples(owner="alice").boot()
        fork = base.fork()
        path = "/home/alice/Documents/dog.jpg"
        base_vp = _find_vnode(base, path)
        fork_vp = _find_vnode(fork, path)
        assert fork_vp.data is base_vp.data  # shared, no copy yet
        assert fork_vp.data_shared and base_vp.data_shared

        fork.write_file(path, b"NEW")
        fork_vp = _find_vnode(fork, path)
        assert fork_vp.data is not base_vp.data
        assert bytes(base_vp.data) != b"NEW"

    def test_hard_links_survive_the_fork(self):
        base = World().with_file("/srv/a.txt", b"shared").boot()
        base.syscalls("root").link("/srv/a.txt", "/srv/b.txt")
        fork = base.fork()
        a = _find_vnode(fork, "/srv/a.txt")
        b = _find_vnode(fork, "/srv/b.txt")
        assert a is b
        assert a.nlink == 2


class TestBootCache:
    def test_identical_configs_share_one_template(self):
        clear_boot_cache()
        w1 = World().with_usr_src(subsystems=1, files_per_dir=2).boot()
        w2 = World().with_usr_src(subsystems=1, files_per_dir=2).boot()
        assert boot_cache_size() == 1
        assert w1.kernel is not w2.kernel
        assert w1.fixtures == w2.fixtures

    def test_cached_boots_are_isolated(self):
        w1 = World().with_jpeg_samples(owner="alice").boot()
        w2 = World().with_jpeg_samples(owner="alice").boot()
        w1.write_file("/home/alice/Documents/dog.jpg", b"gone")
        assert w2.read_file("/home/alice/Documents/dog.jpg").startswith(b"JPEG")

    def test_fixture_values_are_isolated_too(self):
        """Mutating one world's fixtures record must not reach the cache
        template or sibling worlds (fixture values are mutable lists)."""
        w1 = World().with_jpeg_samples(owner="alice").boot()
        w1.fixtures["jpeg_samples"].append("/polluted")
        w2 = World().with_jpeg_samples(owner="alice").boot()
        assert "/polluted" not in w2.fixtures["jpeg_samples"]
        fork = w1.fork()
        fork.fixtures["jpeg_samples"].append("/fork-only")
        assert "/fork-only" not in w1.fixtures["jpeg_samples"]

    def test_different_configs_different_digests(self):
        a = World().with_usr_src(subsystems=1)
        b = World().with_usr_src(subsystems=2)
        assert a.digest != b.digest
        assert a.digest == World().with_usr_src(subsystems=1).digest

    def test_default_user_is_part_of_the_digest(self):
        # jpeg ownership defaults to the world's user, so the digest
        # must distinguish the two configurations.
        a = World().for_user("alice").with_jpeg_samples()
        b = World().for_user("tester").with_jpeg_samples()
        assert a.digest != b.digest

    def test_with_setup_worlds_are_never_cached(self):
        world = World().with_setup(lambda kernel: None)
        assert world.digest is None
        clear_boot_cache()
        world.boot()
        assert boot_cache_size() == 0
        assert not world.pristine

    def test_keyed_setup_worlds_regain_the_digest(self):
        """with_setup(fn, key=...) folds the key into the digest: the
        caller promises equal keys build equal worlds, and in exchange
        gets boot-cache / result-cache / snapshot-store eligibility
        back (the former ROADMAP known-limit)."""
        def setup(kernel):
            return "probed"

        a = World().with_setup(setup, key="probe-v1")
        b = World().with_setup(setup, key="probe-v1")
        c = World().with_setup(setup, key="probe-v2")
        assert a.digest is not None
        assert a.digest == b.digest
        assert a.digest != c.digest
        assert a.digest != World().digest  # a keyed step is not a no-op

    def test_keyed_setup_worlds_hit_the_boot_cache(self):
        calls = []

        def setup(kernel):
            calls.append(1)
            return len(calls)

        clear_boot_cache()
        first = World().with_setup(setup, key="counted").boot()
        second = World().with_setup(setup, key="counted").boot()
        assert calls == [1]            # second boot forked the template
        assert boot_cache_size() == 1
        assert first.pristine and second.pristine
        assert second.fixtures["counted"] == 1

    def test_keyed_setup_with_uncopyable_fixture_boots_privately(self):
        """Regression: a fixture value that refuses deep-copy (a lock, a
        handle) must keep the boot out of the template cache — not crash
        it."""
        import threading

        def setup(kernel):
            return threading.Lock()

        clear_boot_cache()
        world = World().with_setup(setup, key="locky").boot()
        assert boot_cache_size() == 0          # kept private, no crash
        assert world.digest is not None        # digest (and result cache) hold
        assert world.pristine
        world.session().run_ambient('#lang shill/ambient\nh = open_dir("/");\n')

    def test_keyed_setup_worlds_are_result_cache_eligible(self):
        from repro.api import Batch, clear_result_cache

        def setup(kernel):
            return None

        clear_result_cache()
        try:
            src = '#lang shill/ambient\ndocs = open_dir("/tmp");\n'
            def build():
                return World().with_setup(setup, key="rc")
            Batch(build()).add(src).run()
            batch = Batch(build()).add(src)
            batch.run()
            assert batch.stats == {"jobs": 1, "cache_hits": 1, "forks": 0}
        finally:
            clear_result_cache()

    def test_pristine_tracks_mutation(self):
        world = World().with_jpeg_samples(owner="alice").boot()
        assert world.pristine
        world.write_file("/tmp/dirty", b"x")
        assert not world.pristine

    def test_pristine_tracks_metadata_mutation(self):
        world = World().with_jpeg_samples(owner="alice").boot()
        world.syscalls("alice").chmod("/home/alice/Documents/dog.jpg", 0o600)
        assert not world.pristine

    def test_pristine_tracks_builder_overwrite(self):
        from repro.world.image import WorldBuilder

        world = World().boot()
        WorldBuilder(world.kernel).write_file("/etc/resolv.conf", b"changed")
        assert not world.pristine

    def test_pristine_tracks_kernel_config(self):
        """Non-VFS configuration — users, device interposition, network
        hooks — must break pristine too: it changes what runs observe,
        so cached results would be stale."""
        for mutate in (
            lambda w: w.kernel.users.add_user("eve", 5001, 5001),
            lambda w: setattr(w.kernel, "interpose_devices", True),
            lambda w: w.kernel.network.register_listen_hook(("0.0.0.0", 1), lambda s: None),
            lambda w: w.kernel.sysctl.set(w.kernel.spawn_process("root", "/"),
                                          "kern.hostname", "other"),
        ):
            world = World().with_jpeg_samples(owner="alice").boot()
            assert world.pristine
            mutate(world)
            assert not world.pristine

    def test_pristine_tracks_watermark_drift(self):
        """Running anything on the base world advances pid/sid
        watermarks; audit lines embed sids, so cached results would no
        longer match an uncached rerun."""
        world = World().for_user("alice").with_jpeg_samples().boot()
        assert world.pristine
        world.session().run_ambient(
            '#lang shill/ambient\nd = open_dir("~/Documents");\nx = contents(d);\n')
        assert not world.pristine

    def test_vids_deterministic_across_identical_forks(self):
        """Identical operations on sibling forks allocate identical vids
        (vids surface in Stat and audit fallbacks, so the parallel ==
        sequential guarantee needs them reproducible)."""
        base = World().boot()
        forks = [base.fork() for _ in range(2)]
        for fork in forks:
            fork.write_file("/tmp/fresh.txt", b"x")
        vids = [_find_vnode(fork, "/tmp/fresh.txt").vid for fork in forks]
        assert vids[0] == vids[1]

    def test_fork_of_pristine_world_is_pristine(self):
        world = World().with_jpeg_samples(owner="alice").boot()
        assert world.fork().pristine

    def test_listen_hooks_do_not_cross_forks(self):
        """Listen hooks close over the registering kernel's run state
        (the Apache bench's flood driver), so a fork must start without
        them — inheriting one would let the fork's listen() drive
        syscalls on the parent kernel."""
        base = World().boot()
        fired = []
        base.kernel.network.register_listen_hook(("0.0.0.0", 81),
                                                 lambda sock: fired.append(sock))
        fork = base.fork()
        from repro.kernel.sockets import AddressFamily, SocketType

        sys = fork.syscalls("root")
        fd = sys.socket(AddressFamily.AF_INET, SocketType.SOCK_STREAM)
        sys.bind(fd, ("0.0.0.0", 81))
        sys.listen(fd)
        assert fired == []

    def test_fork_preserves_every_mac_policy(self):
        """A fork enforces everything the template enforced — including
        third-party MAC policies loaded via kldload."""
        from repro.kernel.mac import MacPolicy

        class ThirdParty(MacPolicy):
            name = "third-party"

        base = World().boot()
        kernel = base.kernel
        kernel.kld.kldload(kernel.spawn_process("root", "/"),
                           "third-party", ThirdParty())
        fork = kernel.fork()
        assert [p.name for p in fork.mac.policies] == ["shill", "third-party"]


class TestPool:
    def test_pool_hands_out_independent_booted_forks(self):
        pool = World().with_jpeg_samples(owner="alice").pool(workers=3)
        assert len(pool) == 3
        pool[0].write_file("/home/alice/Documents/dog.jpg", b"w0")
        assert pool[1].read_file("/home/alice/Documents/dog.jpg").startswith(b"JPEG")

    def test_pool_map_runs_on_every_worker(self):
        pool = World().pool(workers=2)
        outs = pool.map(lambda w: w.read_file("/etc/passwd"), parallel=True)
        assert len(outs) == 2 and outs[0] == outs[1]

    def test_pool_requires_a_worker(self):
        with pytest.raises(ValueError):
            World().pool(workers=0)
