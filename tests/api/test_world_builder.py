"""World builder combinations."""

from __future__ import annotations

import pytest

from repro.api import FIXTURE_CHOICES, World


class TestBuilder:
    def test_boot_is_idempotent(self):
        world = World().boot()
        assert world.boot() is world
        assert world.booted

    def test_configure_after_boot_rejected(self):
        world = World().boot()
        with pytest.raises(RuntimeError):
            world.with_jpeg_samples()

    def test_without_shill_is_baseline_machine(self):
        assert not World().without_shill().boot().kernel.shill_installed
        assert World().boot().kernel.shill_installed

    def test_steps_apply_in_declaration_order(self):
        world = (
            World()
            .with_usr_src(subsystems=1, files_per_dir=4)
            .with_symlink("/etc/passwd", "/usr/src/sys00/dir0/evil.c")
            .boot()
        )
        sys = world.syscalls()
        assert sys.readlink("/usr/src/sys00/dir0/evil.c") == "/etc/passwd"

    def test_with_users_creates_missing_user_with_home(self):
        world = World().with_users("mallory").boot()
        cred = world.kernel.users.lookup("mallory")
        assert cred.uid >= 2001
        home = world.syscalls().stat("/home/mallory")
        assert home.uid == cred.uid

    def test_with_users_existing_user_is_noop(self):
        world = World().with_users("alice").boot()
        assert world.kernel.users.lookup("alice").uid == 1001

    def test_for_user_sets_session_default(self):
        world = World().for_user("alice").boot()
        assert world.session().user == "alice"
        assert world.session().cwd == "/home/alice"

    def test_for_user_unknown_user_is_created(self):
        world = World().for_user("carol").boot()
        assert world.kernel.users.lookup("carol").uid >= 2001


class TestFixtures:
    def test_jpeg_owner_follows_default_user(self):
        world = World().for_user("tester").with_jpeg_samples().boot()
        stat = world.syscalls().stat("/home/tester/Documents/dog.jpg")
        assert stat.uid == world.kernel.users.lookup("tester").uid

    def test_jpeg_owner_defaults_to_world_user_with_root_home(self):
        world = World().with_jpeg_samples().boot()  # default user: root
        assert world.read_file("/root/Documents/dog.jpg").startswith(b"JPEG")

    def test_fixture_results_recorded(self):
        world = (
            World()
            .with_grading_fixture(students=2, tests=1)
            .with_usr_src(subsystems=1, files_per_dir=4)
            .boot()
        )
        assert world.fixtures["grading"]["submissions"] == "/home/tester/submissions"
        assert world.fixtures["usr_src"]["total"] == 8

    def test_with_fixture_none_is_noop(self):
        world = World().with_fixture("none").boot()
        with pytest.raises(Exception):
            world.read_file("/home/alice/Documents/dog.jpg")

    def test_with_fixture_dispatch(self):
        world = World().with_fixture("jpeg", owner="alice").boot()
        assert world.read_file("/home/alice/Documents/dog.jpg")

    def test_with_fixture_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown fixture"):
            World().with_fixture("nonsense")

    def test_every_documented_choice_accepted(self):
        for name in FIXTURE_CHOICES:
            World().with_fixture(name)  # must not raise


class TestContentHelpers:
    def test_with_file_and_dir_and_owner(self):
        world = (
            World()
            .with_dir("/srv/data", owner="alice")
            .with_file("/srv/data/hello.txt", "hi there", owner="alice")
            .boot()
        )
        assert world.read_file("/srv/data/hello.txt") == b"hi there"
        assert world.syscalls().stat("/srv/data/hello.txt").uid == 1001

    def test_ownerless_content_follows_default_user(self):
        world = (
            World()
            .for_user("alice")
            .with_file("/home/alice/notes.txt", "mine")
            .boot()
        )
        assert world.syscalls().stat("/home/alice/notes.txt").uid == 1001
        # ...so the default user can actually write what the world gave them
        world.syscalls("alice").write_whole("/home/alice/notes.txt", b"updated")

    def test_for_user_without_create_fails_on_unknown_user(self):
        with pytest.raises(KeyError, match="no such user"):
            World().for_user("tpyo", create=False).boot().session()

    def test_write_and_read_file_roundtrip_after_boot(self):
        world = World().boot()
        world.write_file("/tmp/x.txt", "later")
        assert world.read_file("/tmp/x.txt") == b"later"

    def test_with_setup_escape_hatch_records_value(self):
        world = World().with_setup(lambda kernel: kernel.shill_installed,
                                   key="probe").boot()
        assert world.fixtures["probe"] is True


class TestEnsureDirNonClobbering:
    def test_reensure_keeps_boot_attributes(self):
        """A second ensure_dir with default args must not reset the
        sticky 0o777/owner the boot image gave /tmp."""
        from repro.world.image import WorldBuilder

        world = World().boot()
        WorldBuilder(world.kernel).ensure_dir("/tmp")
        stat = world.syscalls().stat("/tmp")
        assert stat.mode == 0o777
        assert stat.uid == 0

    def test_reensure_keeps_explicit_owner(self):
        world = World().with_dir("/srv/data", mode=0o700, owner="alice").boot()
        from repro.world.image import WorldBuilder

        WorldBuilder(world.kernel).ensure_dir("/srv/data")
        stat = world.syscalls("root").stat("/srv/data")
        assert stat.mode == 0o700
        assert stat.uid == 1001

    def test_writing_a_file_keeps_parent_attributes(self):
        """write_file ensures the parent directory exists; that must not
        strip the parent's ownership (the old behaviour re-chowned the
        fixture dirs to root on every file write)."""
        world = World().with_grading_fixture(students=1, tests=1).boot()
        tester = world.kernel.users.lookup("tester")
        stat = world.syscalls("root").stat("/home/tester/submissions/student00")
        assert stat.uid == tester.uid
