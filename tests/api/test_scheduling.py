"""The SchedulingPolicy protocol: built-ins, customs, and the shim."""

from __future__ import annotations

import warnings

import pytest

from repro.api import (
    LeastLoaded,
    RoundRobin,
    SchedulingPolicy,
    StoreWarmth,
    resolve_policy,
)
from repro.remote.hostpool import HostPool


def _pool(n=3, policy=None) -> HostPool:
    return HostPool([f"10.0.0.{i}:7000" for i in range(n)], policy=policy)


class TestProtocol:
    def test_builtins_satisfy_the_protocol(self):
        for policy in (RoundRobin(), LeastLoaded(), StoreWarmth()):
            assert isinstance(policy, SchedulingPolicy)

    def test_any_object_with_score_satisfies_it(self):
        class Whatever:
            def score(self, host, job, telemetry):
                return 0.0

        assert isinstance(Whatever(), SchedulingPolicy)

    def test_score_less_objects_do_not(self):
        class Nope:
            pass

        assert not isinstance(Nope(), SchedulingPolicy)


class TestBuiltins:
    def test_round_robin_cycles_the_ring(self):
        pool = _pool(3, policy=RoundRobin())
        order = [str(pool.pick().spec) for _ in range(6)]
        assert order[:3] == order[3:]          # a full cycle repeats
        assert len(set(order[:3])) == 3        # and visits everyone

    def test_least_loaded_prefers_idle_hosts(self):
        pool = _pool(2, policy=LeastLoaded())
        busy, idle = pool.hosts
        busy.inflight = 5
        assert pool.pick() is idle

    def test_store_warmth_prefers_prepared_hosts(self):
        pool = _pool(3, policy=StoreWarmth())
        warm = pool.hosts[2]
        warm.prepared.add("key-1")
        assert pool.pick(wire_key="key-1") is warm
        # For a template nobody holds, load breaks the tie instead.
        warm.inflight = 1
        assert pool.pick(wire_key="key-2") is not warm

    def test_reprs_name_the_policy(self):
        assert "RoundRobin" in repr(RoundRobin())
        assert "LeastLoaded" in repr(LeastLoaded())
        assert "StoreWarmth" in repr(StoreWarmth())


class TestResolvePolicy:
    def test_none_defaults_to_round_robin(self):
        assert isinstance(resolve_policy(None), RoundRobin)

    def test_objects_pass_through_untouched(self):
        policy = LeastLoaded()
        assert resolve_policy(policy) is policy

    def test_strings_resolve_with_exactly_one_deprecation_warning(self):
        for name, kind in (("round-robin", RoundRobin),
                           ("least-loaded", LeastLoaded),
                           ("store-warmth", StoreWarmth)):
            with warnings.catch_warnings(record=True) as seen:
                warnings.simplefilter("always")
                policy = resolve_policy(name)
            assert isinstance(policy, kind)
            deprecations = [w for w in seen
                            if issubclass(w.category, DeprecationWarning)]
            assert len(deprecations) == 1, name
            assert name in str(deprecations[0].message)

    def test_unknown_string_is_an_error_not_a_warning(self):
        with pytest.raises(ValueError, match="flip-a-coin"):
            resolve_policy("flip-a-coin")

    def test_score_less_object_rejected(self):
        with pytest.raises(TypeError, match="score"):
            resolve_policy(object())


class TestCustomPolicies:
    def test_custom_policy_drives_the_pool(self):
        """The API promise: any score() callable shapes scheduling."""
        class Pinned:
            def __init__(self, favourite: str):
                self.favourite = favourite

            def score(self, host, job, telemetry):
                return 1.0 if str(host.spec) == self.favourite else 0.0

        pool = _pool(3, policy=Pinned("10.0.0.1:7000"))
        for _ in range(4):
            assert str(pool.pick().spec) == "10.0.0.1:7000"

    def test_telemetry_carries_the_documented_keys(self):
        seen = {}

        class Recorder:
            def score(self, host, job, telemetry):
                seen.update(telemetry)
                return 0.0

        pool = _pool(2, policy=Recorder())
        pool.pick(job={"name": "j0"}, wire_key="k")
        assert set(seen) >= {"ring_position", "ring_size", "rotation",
                             "inflight", "jobs_done", "warm", "strikes",
                             "retired"}

    def test_policy_objects_reach_executors(self, tmp_path):
        """RemoteExecutor accepts a policy object, no strings involved."""
        from repro.api import RemoteExecutor

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            executor = RemoteExecutor(["127.0.0.1:1"], policy=LeastLoaded(),
                                      store=tmp_path / "s")
        assert isinstance(executor.hosts.policy, LeastLoaded)
        executor.close()
