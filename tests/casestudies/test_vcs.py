"""VCS case study: functionality, capability confinement, policy flips."""

from __future__ import annotations

import pytest

from repro.casestudies.vcs import (
    SCRIPTS,
    probe_batch,
    read_token_sandboxed,
    run_commit,
    run_log,
    run_status,
    vcs_world,
)
from repro.errors import ContractViolation

def _object_names(world) -> list[str]:
    kernel = world.kernel
    sys = kernel.syscalls(kernel.spawn_process("root", "/"))
    fd = sys.open("/home/alice/project/.vcs/objects")
    try:
        return sorted(sys.getdents(fd))
    finally:
        sys.close(fd)


@pytest.fixture
def world():
    return vcs_world().boot()


class TestFunctionality:
    def test_status_reports_history_and_tracked_files(self, world):
        out = run_status(world).output
        assert out.startswith("# on commit 2\n")  # seeded history = 2
        assert "tracked: /home/alice/project/README\n" in out
        for i in range(4):
            assert f"tracked: /home/alice/project/src/mod{i}.c\n" in out
        # The metadata directory is never itself tracked.
        assert ".vcs" not in out.replace("# on", "")

    def test_commit_snapshots_appends_and_advances_head(self, world):
        result = run_commit(world, msg="add feature")
        assert result.output == "committed 3\n"
        log = run_log(world).output
        assert log.splitlines() == [
            "commit 1 seed-commit-1",
            "commit 2 seed-commit-2",
            "commit 3 add feature",
        ]
        objects = _object_names(world)
        assert "c3-0-README" in objects
        assert "c3-4-mod3.c" in objects
        assert len([o for o in objects if o.startswith("c3-")]) == 5

    def test_commits_accumulate_monotonically(self, world):
        assert run_commit(world, msg="one").output == "committed 3\n"
        assert run_commit(world, msg="two").output == "committed 4\n"
        assert run_status(world).output.startswith("# on commit 4\n")


class TestConfinement:
    def test_commit_never_touches_the_deploy_token(self, world):
        """The token lives outside every capability handed to the
        scripts; the dynamic footprint proves no code path reached it."""
        result = run_commit(world)
        touched = {path for _, path in result.run.touched}
        assert touched, "commit must record its dynamic footprint"
        assert not any("secrets" in path for path in touched)
        assert all(kind == "read" or "/.vcs/" in path
                   for kind, path in result.run.touched)

    def test_token_is_unreachable_from_an_empty_sandbox(self, world):
        result = read_token_sandboxed(world)
        assert result.status != 0
        assert result.denials
        assert "hunter2" not in result.stdout

    def test_scripts_lint_clean(self):
        from repro.analysis import lint_scripts

        reports = lint_scripts(dict(SCRIPTS), registry=dict(SCRIPTS))
        for name, report in reports.items():
            assert report.errors == (), (name, report.errors)


class TestPolicyFlips:
    def test_allow_rule_flips_the_token_denial_without_code_changes(self):
        world = vcs_world().with_policy_rules([], default="allow").boot()
        result = read_token_sandboxed(world)
        assert result.status == 0
        assert result.stdout == "hunter2-deploy-token\n"

    def test_deny_rule_freezes_history_but_not_status(self):
        """A declarative freeze of the commit log turns commits into
        contract violations blamed on the policy engine, while the
        read-only status path keeps working."""
        world = vcs_world().with_policy_rules([
            {"name": "freeze-history", "effect": "deny",
             "operations": ["append"],
             "paths": ["/home/alice/project/.vcs/log"]},
        ]).boot()
        assert run_status(world).run.ok
        with pytest.raises(ContractViolation) as exc:
            run_commit(world)
        assert "policy-engine:rules" in str(exc.value)
        # History is untouched: the log still ends at the seeded commits.
        assert run_log(world).output.splitlines()[-1] == "commit 2 seed-commit-2"


class TestExecutorEquivalence:
    def test_probe_batch_matches_across_sequential_and_thread(self):
        sequential = [r.fingerprint() for r in probe_batch().run(backend="sequential")]
        threaded = [r.fingerprint() for r in probe_batch().run(backend="thread")]
        assert sequential == threaded
