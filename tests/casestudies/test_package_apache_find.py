"""Package-management, Apache, and Find case studies."""

from __future__ import annotations

import pytest

from repro.casestudies.apache import apache_bench, baseline_bench
from repro.casestudies.findgrep import run_baseline, run_fine, run_simple
from repro.casestudies.package_mgmt import PackageManager, run_full_ambient
from repro.world import (
    add_emacs_mirror,
    add_usr_src,
    add_web_content,
    build_world,
)


def rootsys(kernel):
    return kernel.syscalls(kernel.spawn_process("root", "/"))


class TestPackageManagement:
    @pytest.fixture
    def world(self):
        kernel = build_world()
        add_emacs_mirror(kernel)
        return kernel

    def test_full_cycle(self, world):
        pm = PackageManager(world)
        pm.download()
        sys = rootsys(world)
        assert sys.stat("/root/downloads/emacs-24.3.tar.gz").size > 0
        pm.unpack()
        assert "configure" in sys.contents("/root/downloads/emacs-24.3")
        pm.configure()
        assert "Makefile" in sys.contents("/root/downloads/emacs-24.3")
        pm.build()
        assert "emacs" in sys.contents("/root/downloads/emacs-24.3")
        pm.install()
        assert sys.read_whole("/usr/local/emacs/bin/emacs").startswith(b"#!ELF")
        pm.uninstall()
        assert sys.contents("/usr/local/emacs/bin") == []

    def test_ambient_script_runs_whole_lifecycle(self, world):
        session = run_full_ambient(world)
        sys = rootsys(world)
        assert sys.contents("/usr/local/emacs/bin") == []  # uninstalled at the end
        assert session.sandbox_count > 0

    def test_download_needs_socket_factory(self, world):
        """Only download can reach the network; a download attempt without
        the socket factory capability fails inside the sandbox."""
        from repro.errors import ContractViolation

        pm = PackageManager(world)
        with pytest.raises((ContractViolation, RuntimeError)):
            pm.session.runtime.call(
                pm.exports["download"],
                pm._wallet_value(),
                "not-a-socket-factory",
                pm.session.runtime.open_dir(pm.downloads),
            )

    def test_install_cannot_touch_existing_prefix_files(self, world):
        """"the install function is restricted from reading, altering, or
        removing any existing files in the installation directory" — a
        canary placed in the prefix survives, and a sandbox with the
        install grant cannot read it."""
        pm = PackageManager(world)  # creates the (empty) prefix directory
        sys = rootsys(world)
        sys.write_whole("/usr/local/emacs/canary.txt", b"precious")
        pm.download()
        pm.unpack()
        pm.configure()
        pm.build()
        pm.install()
        assert sys.read_whole("/usr/local/emacs/canary.txt") == b"precious"
        # Direct probe: cat the canary under the install-time prefix grant.
        from repro.sandbox.privileges import Priv, PrivSet

        prefix = pm.session.runtime.open_dir(pm.prefix)
        install_privs = PrivSet.of(Priv.PATH, Priv.STAT).adding(
            Priv.LOOKUP, Priv.CREATE_FILE, Priv.CREATE_DIR
        ).with_modifier(Priv.LOOKUP, ())
        probe = prefix.attenuated(install_privs, blame="probe")
        from repro.capability.caps import PipeFactoryCap
        from repro.stdlib.native import make_pkg_native

        cat_wrapped = make_pkg_native(pm.session.runtime)("cat", pm._wallet_value())
        rend, wend = PipeFactoryCap(pm.session.runtime.sys).create()
        status = pm.session.runtime.call(
            cat_wrapped, ["/usr/local/emacs/canary.txt"], stderr=wend, extras=[probe]
        )
        assert status == 1  # EACCES inside the sandbox
        assert b"EACCES" in rend.read()

    def test_uninstall_removes_only_listed_files(self, world):
        sys = rootsys(world)
        pm = PackageManager(world)
        pm.download()
        pm.unpack()
        pm.configure()
        pm.build()
        pm.install()
        sys.write_whole("/usr/local/emacs/share/user-notes.txt", b"keep me")
        pm.uninstall()
        assert sys.read_whole("/usr/local/emacs/share/user-notes.txt") == b"keep me"
        assert "DOC" not in sys.contents("/usr/local/emacs/share")


class TestApache:
    @pytest.fixture
    def world(self):
        kernel = build_world()
        add_web_content(kernel, file_kb=8, small_files=2)
        return kernel

    def test_serves_and_logs(self, world):
        result = apache_bench(world, requests=6, path="/big.bin")
        assert len(result.responses) == 6
        body_len = 8 * 1024
        for response in result.responses:
            assert response.startswith(b"HTTP/1.0 200 OK")
            assert len(response) >= body_len
        assert result.log_text.count("GET /big.bin 200") == 6

    def test_matches_baseline_responses(self):
        k1 = build_world(install_shill=False)
        add_web_content(k1, file_kb=4, small_files=1)
        k2 = build_world()
        add_web_content(k2, file_kb=4, small_files=1)
        base = baseline_bench(k1, requests=3, path="/page0.html")
        sandboxed = apache_bench(k2, requests=3, path="/page0.html")
        assert base == sandboxed.responses

    def test_cannot_escape_docroot(self, world):
        """A request that traverses out of the DocumentRoot is refused by
        the sandbox: resolution reaches /etc/passwd but the session has no
        privileges on it, so httpd answers 404."""
        result = apache_bench(world, requests=1, path="/../etc/passwd")
        assert result.responses[0].startswith(b"HTTP/1.0 404")

    def test_not_isolated_from_rest_of_system(self, world):
        """"concurrently executing programs can dynamically add new web
        content or view logs as they are generated" — content added after
        the sandbox is created is servable, and the log stays readable."""
        sys = rootsys(world)
        sys.write_whole("/var/www/late.html", b"<html>added late</html>")
        result = apache_bench(world, requests=2, path="/late.html")
        assert all(b"added late" in r for r in result.responses)
        assert "GET /late.html 200" in result.log_text


class TestFind:
    @pytest.fixture
    def world(self):
        kernel = build_world()
        self.counts = add_usr_src(kernel, subsystems=3, files_per_dir=8)
        return kernel

    def test_all_three_versions_agree(self, world):
        base = run_baseline(world, out_path="/root/m0.txt")
        simple = run_simple(world, out_path="/root/m1.txt")
        fine = run_fine(world, out_path="/root/m2.txt")
        assert base == simple.output == fine.output
        assert self.counts["mac_files"] == len({line.split(":")[0] for line in base.splitlines()})

    def test_fine_version_one_sandbox_per_c_file(self, world):
        fine = run_fine(world)
        # one ldd sandbox (pkg_native) + one grep sandbox per .c file
        assert fine.run.sandbox_count == 1 + self.counts["c_files"]

    def test_simple_version_two_sandboxes(self, world):
        simple = run_simple(world)
        # one ldd sandbox + one find sandbox (grep runs inside it)
        assert simple.run.sandbox_count == 2

    def test_symlink_out_of_tree_is_confined(self, world):
        """A planted symlink /usr/src/.../evil.c -> /etc/passwd matches the
        filter, but grep's sandbox has no capability for the target, so
        nothing leaks."""
        sys = rootsys(world)
        sys.symlink("/etc/passwd", "/usr/src/sys00/dir0/evil.c")
        fine = run_fine(world, out_path="/root/m3.txt")
        assert "alice" not in fine.output  # /etc/passwd contents absent
