"""Grading case study: functionality plus the paper's security claims."""

from __future__ import annotations

import pytest

from repro.casestudies.grading import (
    run_baseline_grading,
    run_sandboxed_grading,
    run_shill_grading,
)
from repro.world import add_grading_fixture, build_world

STUDENTS = 5
TESTS = 3


@pytest.fixture
def world():
    kernel = build_world()
    add_grading_fixture(kernel, students=STUDENTS, tests=TESTS)
    return kernel


@pytest.fixture
def honest_world():
    kernel = build_world()
    add_grading_fixture(
        kernel, students=STUDENTS, tests=TESTS, malicious_reader=False, malicious_writer=False
    )
    return kernel


def read(kernel, path: str) -> bytes:
    sys = kernel.syscalls(kernel.spawn_process("root", "/"))
    return sys.read_whole(path)


class TestFunctionality:
    def test_honest_submissions_all_pass_everywhere(self, honest_world):
        kernel = honest_world
        expected = {f"student{i:02d}": f"student{i:02d}: {TESTS}/{TESTS}\n" for i in range(STUDENTS)}
        # Run the SHILL version; it must match what an unconfined run gives.
        result = run_shill_grading(kernel)
        assert result.grades == expected

    def test_shellscript_grader_matches_native_grader(self, world):
        """The grader as a *real shell script* (run by the simulated
        /bin/sh via shebang, sandboxed) produces the same grades as the
        native grade.sh program."""
        from repro.casestudies.grading import run_shellscript_grading

        kernel1 = build_world()
        add_grading_fixture(kernel1, students=STUDENTS, tests=TESTS)
        kernel2 = build_world()
        add_grading_fixture(kernel2, students=STUDENTS, tests=TESTS)
        shellscript = run_shellscript_grading(kernel1)
        native = run_sandboxed_grading(kernel2)
        assert shellscript.grades == native.grades

    def test_shellscript_grader_protects_test_suite(self):
        from repro.casestudies.grading import run_shellscript_grading

        kernel = build_world()
        paths = add_grading_fixture(kernel, students=STUDENTS, tests=TESTS)
        run_shellscript_grading(kernel)
        assert read(kernel, f"{paths['tests']}/test0.expected") != b"cheated"

    def test_sandboxed_version_grades_match_shill_version(self, world):
        kernel1 = build_world()
        add_grading_fixture(kernel1, students=STUDENTS, tests=TESTS)
        kernel2 = build_world()
        add_grading_fixture(kernel2, students=STUDENTS, tests=TESTS)
        sandboxed = run_sandboxed_grading(kernel1)
        shill = run_shill_grading(kernel2)
        assert sandboxed.grades == shill.grades

    def test_shill_version_sandbox_count(self, honest_world):
        """Per student: one ocamlc + one ocamlrun per test; plus pkg_native's
        two ldd sandboxes."""
        result = run_shill_grading(honest_world)
        expected = 2 + STUDENTS * (1 + TESTS)
        assert result.run.sandbox_count == expected


class TestSecurity:
    def test_baseline_lets_malicious_writer_corrupt_tests(self):
        """Without SHILL, student01's writefile tampers with the test suite."""
        kernel = build_world(install_shill=False)
        paths = add_grading_fixture(kernel, students=STUDENTS, tests=TESTS)
        run_baseline_grading(kernel)
        assert read(kernel, f"{paths['tests']}/test0.expected") == b"cheated"

    def test_sandboxed_version_protects_test_suite(self):
        kernel = build_world()
        paths = add_grading_fixture(kernel, students=STUDENTS, tests=TESTS)
        run_sandboxed_grading(kernel)
        assert read(kernel, f"{paths['tests']}/test0.expected") != b"cheated"

    def test_shill_version_protects_test_suite(self):
        kernel = build_world()
        paths = add_grading_fixture(kernel, students=STUDENTS, tests=TESTS)
        run_shill_grading(kernel)
        assert read(kernel, f"{paths['tests']}/test0.expected") != b"cheated"

    def test_sandboxed_version_cannot_stop_cross_student_read(self):
        """The coarse sandbox gives grade.sh the whole submissions tree, so
        student00's readfile of another submission SUCCEEDS (its stolen
        text lands in the test output).  This is exactly the gap the
        fine-grained version closes."""
        kernel = build_world()
        paths = add_grading_fixture(kernel, students=STUDENTS, tests=TESTS)
        run_sandboxed_grading(kernel)
        out = read(kernel, f"{paths['working']}/student00/test0.out").decode()
        assert "solve" in out  # the victim's main.ml contents leaked

    def test_shill_version_stops_cross_student_read(self):
        """Fine-grained isolation: student00's sandbox has no capability
        for any other student's submission, so readfile fails."""
        kernel = build_world()
        paths = add_grading_fixture(kernel, students=STUDENTS, tests=TESTS)
        result = run_shill_grading(kernel)
        out = read(kernel, f"{paths['working']}/student00/test0.out").decode()
        assert "solve" not in out
        # ...and the student scored zero rather than crashing the grader:
        assert result.grades["student00"].startswith("student00: 0/")

    def test_malicious_students_score_zero_under_shill(self):
        kernel = build_world()
        add_grading_fixture(kernel, students=STUDENTS, tests=TESTS)
        result = run_shill_grading(kernel)
        assert result.grades["student00"].startswith("student00: 0/")
        assert result.grades["student01"].startswith("student01: 0/")
        # Honest students are unaffected:
        for i in range(2, STUDENTS):
            assert result.grades[f"student{i:02d}"] == f"student{i:02d}: {TESTS}/{TESTS}\n"

    def test_tmp_isolation_preexisting_files_protected(self):
        """"we used a contract on the /tmp capability to specify that
        sandboxed processes can only read, modify, or delete files or
        directories they create" — a pre-existing /tmp file survives the
        whole grading run untouched and was never readable."""
        kernel = build_world()
        add_grading_fixture(kernel, students=3, tests=2,
                            malicious_reader=False, malicious_writer=False)
        sys = kernel.syscalls(kernel.spawn_process("root", "/"))
        sys.write_whole("/tmp/other-users-scratch", b"precious")
        # A submission that attacks /tmp directly:
        sys.write_whole(
            "/home/tester/submissions/student02/main.ml",
            b"writefile /tmp/other-users-scratch clobbered\nsolve\n",
        )
        run_sandboxed_grading(kernel)
        assert sys.read_whole("/tmp/other-users-scratch") == b"precious"

    def test_grade_files_isolated_per_student(self):
        """Each grade file is created by the grader with an append-only
        modifier; submissions' sandboxes never receive it."""
        kernel = build_world()
        paths = add_grading_fixture(kernel, students=3, tests=2,
                                    malicious_reader=False, malicious_writer=False)
        # A submission that tries to overwrite its own grade file:
        sys = kernel.syscalls(kernel.spawn_process("tester", "/home/tester"))
        sys.write_whole(
            f"{paths['submissions']}/student02/main.ml",
            f"writefile {paths['grades']}/student02 100/100\nsolve\n".encode(),
        )
        result = run_shill_grading(kernel)
        grade = result.grades["student02"]
        assert "100/100" not in grade
        assert grade.startswith("student02: 0/")
