"""Figure 11: system-call microbenchmarks, "SHILL installed" vs "Sandboxed".

The paper's table: pread-1B, pread-1MB, create-unlink, and
open-read-close with path lengths 1 and 5, measuring the overhead of
privilege checking during sandboxed execution.  Headline findings
reproduced here:

* every operation is somewhat slower inside a sandbox (privilege-map
  checks on each MAC hook);
* "overhead increases linearly in the length of the path (i.e., linearly
  with the number of lookup system calls required)" — asserted as: the
  absolute overhead at depth 5 exceeds the overhead at depth 1.
"""

from __future__ import annotations

import time

from conftest import record_row
from repro.kernel import O_CREAT, O_RDONLY, O_TRUNC, O_WRONLY
from repro.sandbox.privileges import PrivSet
from repro.world import build_world
from repro.world.image import WorldBuilder

ITERS = 4000
PREAD_BIG_ITERS = 200


def _micro_world():
    kernel = build_world()
    builder = WorldBuilder(kernel)
    builder.write_file("/bench/file1.txt", b"x" * 64)
    builder.ensure_dir("/bench/d1/d2/d3/d4")
    builder.write_file("/bench/d1/d2/d3/d4/file5.txt", b"y" * 64)
    builder.write_file("/bench/big.bin", b"B" * (1024 * 1024))
    builder.ensure_dir("/bench/scratch", mode=0o777)
    return kernel


def _installed_sys(kernel):
    return kernel.syscalls(kernel.spawn_process("root", "/bench"))


def _sandboxed_sys(kernel):
    """A session granted everything the microbenchmarks touch."""
    policy = kernel.shill_policy()
    launcher = kernel.spawn_process("root", "/bench")
    child = kernel.procs.fork(launcher)
    session = policy.sessions.shill_init(child)
    sys = kernel.syscalls(launcher)
    full = PrivSet.full()
    for path in ("/", "/bench", "/bench/file1.txt", "/bench/big.bin",
                 "/bench/d1", "/bench/d1/d2", "/bench/d1/d2/d3", "/bench/d1/d2/d3/d4",
                 "/bench/d1/d2/d3/d4/file5.txt", "/bench/scratch"):
        _, _, vp = sys._resolve(path)
        policy.sessions.grant(session, vp, full)
    child_sys = kernel.syscalls(child)
    child_sys.shill_enter()
    return child_sys


def _time_op(op, iters: int) -> float:
    start = time.perf_counter()
    for _ in range(iters):
        op()
    return (time.perf_counter() - start) / iters


def _pread_1b(sys):
    fd = sys.open("/bench/file1.txt", O_RDONLY)
    return lambda: sys.pread(fd, 1, 0)


def _pread_1mb(sys):
    fd = sys.open("/bench/big.bin", O_RDONLY)
    return lambda: sys.pread(fd, 1 << 20, 0)


def _create_unlink(sys):
    def op():
        fd = sys.open("/bench/scratch/tmpfile", O_WRONLY | O_CREAT | O_TRUNC)
        sys.close(fd)
        sys.unlink("/bench/scratch/tmpfile")

    return op


def _open_read_close(sys, path):
    def op():
        fd = sys.open(path, O_RDONLY)
        sys.read(fd, 1)
        sys.close(fd)

    return op


def _measure_pair(name, make_op, iters):
    kernel = _micro_world()
    installed = _time_op(make_op(_installed_sys(kernel)), iters)
    sandboxed = _time_op(make_op(_sandboxed_sys(kernel)), iters)
    record_row(
        f"micro {name:22s} installed={installed * 1e6:8.2f}us "
        f"sandboxed={sandboxed * 1e6:8.2f}us "
        f"overhead={(sandboxed - installed) * 1e6:+7.2f}us ({sandboxed / installed:5.2f}x)"
    )
    return installed, sandboxed


def test_fig11_pread(benchmark):
    i1, s1 = _measure_pair("pread-1B", _pread_1b, ITERS)
    im, sm = _measure_pair("pread-1MB", _pread_1mb, PREAD_BIG_ITERS)
    # Relative overhead shrinks as the operation gets bigger (1MB copies
    # dwarf the privilege check), mirroring the paper's 18% -> 1% spread.
    assert (sm / im) < (s1 / i1) * 1.5
    kernel = _micro_world()
    sys = _sandboxed_sys(kernel)
    op = _pread_1b(sys)
    benchmark.pedantic(lambda: [op() for _ in range(100)], rounds=3, iterations=1)


def test_fig11_create_unlink(benchmark):
    installed, sandboxed = _measure_pair("create-unlink", _create_unlink, ITERS // 4)
    assert sandboxed > 0 and installed > 0
    kernel = _micro_world()
    op = _create_unlink(_sandboxed_sys(kernel))
    benchmark.pedantic(lambda: [op() for _ in range(50)], rounds=3, iterations=1)


def test_fig11_open_read_close_lookup_scaling(benchmark):
    i1, s1 = _measure_pair(
        "open-read-close (1)", lambda sys: _open_read_close(sys, "file1.txt"), ITERS
    )
    i5, s5 = _measure_pair(
        "open-read-close (5)", lambda sys: _open_read_close(sys, "d1/d2/d3/d4/file5.txt"), ITERS
    )
    # Deeper paths cost more...
    assert s5 > s1
    # ...and the *sandbox overhead* grows with the number of lookups
    # (each component pays a privilege-map check + propagation hook).
    overhead_1 = s1 - i1
    overhead_5 = s5 - i5
    assert overhead_5 > overhead_1 * 0.9, (overhead_1, overhead_5)
    kernel = _micro_world()
    op = _open_read_close(_sandboxed_sys(kernel), "d1/d2/d3/d4/file5.txt")
    benchmark.pedantic(lambda: [op() for _ in range(100)], rounds=3, iterations=1)


def test_fig11_lookup_depth_sweep(benchmark):
    """The paper's follow-up experiment: "overhead increases linearly in
    the length of the path (i.e., linearly with the number of lookup
    system calls required)."  Sweep depths 1..8 and check the per-depth
    MAC-check count is exactly linear (the deterministic core of the
    wall-clock claim), plus a monotonicity spot-check on time."""
    from repro.kernel import O_RDONLY as RD
    from repro.world import build_world as bw
    from repro.world.image import WorldBuilder

    depths = [1, 2, 4, 8]
    checks = {}
    times = {}
    for depth in depths:
        kernel = bw()
        builder = WorldBuilder(kernel)
        path = "/".join(f"s{i}" for i in range(depth - 1))
        full_dir = "/sweep" + ("/" + path if path else "")
        builder.ensure_dir(full_dir)
        builder.write_file(f"{full_dir}/leaf.txt", b"x")
        policy = kernel.shill_policy()
        launcher = kernel.spawn_process("root", "/sweep")
        child = kernel.procs.fork(launcher)
        session = policy.sessions.shill_init(child)
        sys0 = kernel.syscalls(launcher)
        node = "/sweep"
        from repro.sandbox.privileges import PrivSet as PS

        for prefix in [node] + [f"{node}/{'/'.join(path.split('/')[:i + 1])}"
                                for i in range(depth - 1) if path]:
            _, _, vp = sys0._resolve(prefix)
            policy.sessions.grant(session, vp, PS.full())
        _, _, leaf = sys0._resolve(f"{full_dir}/leaf.txt")
        policy.sessions.grant(session, leaf, PS.full())
        sys = kernel.syscalls(child)
        sys.shill_enter()
        rel = (path + "/" if path else "") + "leaf.txt"
        before = kernel.stats.mac_checks
        fd = sys.open(rel, RD)
        sys.close(fd)
        checks[depth] = kernel.stats.mac_checks - before
        start = time.perf_counter()
        for _ in range(1500):
            sys.close(sys.open(rel, RD))
        times[depth] = (time.perf_counter() - start) / 1500

    record_row(
        "micro lookup-depth sweep: "
        + "  ".join(f"d{d}: {checks[d]} checks, {times[d] * 1e6:6.2f}us" for d in depths)
    )
    # Exactly one extra lookup check per extra component:
    for a, b in zip(depths, depths[1:]):
        assert checks[b] - checks[a] == b - a
    # Wall-clock grows with depth (endpoints; middle points may be noisy):
    assert times[8] > times[1]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig11_deterministic_check_counts(benchmark):
    """Beyond wall-clock: the deterministic counter view.  A sandboxed
    open at depth 5 performs strictly more MAC checks than at depth 1."""

    def checks_for(path: str) -> int:
        kernel = _micro_world()
        sys = _sandboxed_sys(kernel)
        before = kernel.stats.mac_checks
        fd = sys.open(path, O_RDONLY)
        sys.close(fd)
        return kernel.stats.mac_checks - before

    shallow = checks_for("file1.txt")
    deep = checks_for("d1/d2/d3/d4/file5.txt")
    record_row(f"micro mac-checks per open: depth1={shallow} depth5={deep}")
    assert deep == shallow + 4  # one vnode_check_lookup per extra component
    benchmark.pedantic(lambda: checks_for("d1/d2/d3/d4/file5.txt"), rounds=3, iterations=1)
