"""Shared benchmark plumbing.

``REPRO_BENCH_RUNS`` (default 3) controls the per-configuration sample
count of the comparison harness; the paper used 50.

Besides the human-readable tables printed at session end, the Figure 9
cells are written to a JSON file (``REPRO_BENCH_JSON``, default
``BENCH_fig9.json`` in the working directory) — a machine-readable
trajectory of means, confidence intervals, and deterministic kernel op
counts that the CI benchmark job uploads as an artifact.
"""

from __future__ import annotations

import json
import os

import pytest

RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "3"))

_rows: list[str] = []
_cells: dict[str, dict[str, dict]] = {}


def record_row(row: str) -> None:
    _rows.append(row)


def record_cell(bench: str, config: str, sample) -> None:
    """Store one (benchmark, configuration) cell for the JSON artifact."""
    _cells.setdefault(bench, {})[config] = {
        "mean_s": sample.mean,
        "ci95_s": sample.ci95,
        "runs": len(sample.seconds),
        "ops": sample.op_counts,
    }


def _markdown_summary() -> str:
    """A small markdown table of the measured cells, for CI's
    ``$GITHUB_STEP_SUMMARY`` panel."""
    configs: list[str] = []
    for cells in _cells.values():
        for config in cells:
            if config not in configs:
                configs.append(config)
    lines = ["### Benchmark cells (mean ms, deterministic op counts in CI artifact)", ""]
    lines.append("| benchmark | " + " | ".join(configs) + " |")
    lines.append("|---" * (len(configs) + 1) + "|")
    for bench, cells in _cells.items():
        row = [bench]
        for config in configs:
            cell = cells.get(config)
            row.append("—" if cell is None else f"{cell['mean_s'] * 1000:.2f}")
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    lines.append(f"_{RUNS} run(s) per cell; op-count gate: "
                 "`benchmarks/check_baseline_ops.py`_")
    return "\n".join(lines) + "\n"


@pytest.fixture(scope="session", autouse=True)
def print_tables_at_end():
    yield
    if _rows:
        print("\n" + "=" * 100)
        print("Reproduced evaluation tables (see EXPERIMENTS.md for the paper-vs-measured record)")
        print("=" * 100)
        for row in _rows:
            print(row)
    if _cells:
        from repro.bench import FIG9_BENCHMARKS

        path = os.environ.get("REPRO_BENCH_JSON", "BENCH_fig9.json")
        payload = {
            "runs_per_cell": RUNS,
            # Aborted / filtered runs write whatever completed; the
            # expected row list + flag make truncation detectable.
            "expected_benchmarks": list(FIG9_BENCHMARKS),
            "complete": set(_cells) >= set(FIG9_BENCHMARKS),
            "benchmarks": _cells,
        }
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nFigure 9 cells written to {path}")
        summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
        if summary_path:
            with open(summary_path, "a") as fh:
                fh.write(_markdown_summary())
