"""Shared benchmark plumbing.

``REPRO_BENCH_RUNS`` (default 3) controls the per-configuration sample
count of the comparison harness; the paper used 50.
"""

from __future__ import annotations

import os

import pytest

RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "3"))

_rows: list[str] = []


def record_row(row: str) -> None:
    _rows.append(row)


@pytest.fixture(scope="session", autouse=True)
def print_tables_at_end():
    yield
    if _rows:
        print("\n" + "=" * 100)
        print("Reproduced evaluation tables (see EXPERIMENTS.md for the paper-vs-measured record)")
        print("=" * 100)
        for row in _rows:
            print(row)
