"""Gate CI on the shipped corpus's lint findings.

The static analyzer (``repro lint``) runs over every shipped SHILL
script — the demo plus the four case-study suites — and the per-script
rule-code counts are committed as ``benchmarks/baseline_lint.json``.
CI fails when a script *gains* diagnostics (a contract or script change
introduced a new least-privilege gap or a guaranteed violation) or when
a baselined script disappears from the corpus; *losing* diagnostics
only warns, so a genuine fix prompts a baseline refresh instead of
breaking the build.

Usage::

    python benchmarks/check_baseline_lint.py [LINT.json]
    python benchmarks/check_baseline_lint.py --refresh

With no argument the corpus is linted in-process (needs ``repro`` on
``PYTHONPATH``); passing ``LINT.json`` reuses the output of
``python -m repro lint --corpus --format json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

BASELINE_PATH = pathlib.Path(__file__).parent / "baseline_lint.json"

_README = [
    "Per-script lint rule-code counts for the shipped SHILL corpus (demo +",
    "four case-study suites).  CI's lint-scripts job fails when any script",
    "gains diagnostics over these values, or when a baselined script goes",
    "missing; losing diagnostics warns.  To refresh after an intentional",
    "change:",
    "  PYTHONPATH=src python benchmarks/check_baseline_lint.py --refresh",
    "then commit the updated baseline_lint.json alongside the change.",
]


def _measure_inline() -> dict:
    """Lint the shipped corpus in-process, shaped like the CLI JSON."""
    from repro.analysis.corpus import lint_corpus
    from repro.analysis.lint import render_json

    return render_json(lint_corpus())


def _counts(report_json: dict) -> dict[str, dict[str, int]]:
    """script name -> {rule code -> count} (clean scripts keep an empty
    dict, so a vanished script is distinguishable from a clean one)."""
    out: dict[str, dict[str, int]] = {}
    for entry in report_json.get("scripts", []):
        counts: dict[str, int] = {}
        for diag in entry.get("diagnostics", []):
            code = diag["code"]
            counts[code] = counts.get(code, 0) + 1
        out[entry["script"]] = dict(sorted(counts.items()))
    return dict(sorted(out.items()))


def refresh(measured: dict[str, dict[str, int]]) -> None:
    total = sum(sum(c.values()) for c in measured.values())
    payload = {
        "_readme": _README,
        "scripts": measured,
        "summary": {"scripts": len(measured), "diagnostics": total},
    }
    BASELINE_PATH.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    print(f"baseline_lint.json refreshed: {len(measured)} scripts, "
          f"{total} diagnostic(s)")


def compare(measured: dict[str, dict[str, int]]) -> int:
    baseline = json.loads(BASELINE_PATH.read_text())
    expected: dict[str, dict[str, int]] = baseline["scripts"]
    regressions: list[str] = []
    warnings: list[str] = []
    for script, base_counts in expected.items():
        actual = measured.get(script)
        if actual is None:
            regressions.append(f"{script}: script missing from corpus")
            continue
        for code in sorted(set(base_counts) | set(actual)):
            base_value = base_counts.get(code, 0)
            value = actual.get(code, 0)
            if value > base_value:
                regressions.append(
                    f"{script}/{code}: {base_value} -> {value} (new findings)")
            elif value < base_value:
                warnings.append(
                    f"{script}/{code}: {base_value} -> {value} "
                    "(improved — refresh the baseline)")
    for script, counts in measured.items():
        if script in expected:
            continue
        if counts:
            regressions.append(
                f"{script}: new corpus script with findings {counts} — "
                "fix it or refresh the baseline")
        else:
            warnings.append(f"{script}: new clean script not in baseline — refresh")
    for line in warnings:
        print(f"WARN  {line}")
    for line in regressions:
        print(f"FAIL  {line}")
    if regressions:
        print(f"\n{len(regressions)} lint regression(s) over the corpus "
              "baseline.  If intentional, refresh it (see baseline_lint.json "
              "_readme).")
        return 1
    print(f"lint gate passed: {len(expected)} scripts match the baseline "
          f"({sum(sum(c.values()) for c in expected.values())} known finding(s)).")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("lint_json", nargs="?", default=None,
                        help="output of `repro lint --corpus --format json` "
                             "(default: lint the corpus in-process)")
    parser.add_argument("--refresh", action="store_true",
                        help="rewrite baseline_lint.json from the measured run")
    args = parser.parse_args(argv)
    if args.lint_json is not None:
        path = pathlib.Path(args.lint_json)
        if not path.exists():
            print(f"lint report {path} not found — did the lint step crash "
                  "before writing it?", file=sys.stderr)
            return 2
        report_json = json.loads(path.read_text())
    else:
        report_json = _measure_inline()
    measured = _counts(report_json)
    if not measured:
        print("no scripts in the lint report", file=sys.stderr)
        return 2
    if args.refresh:
        refresh(measured)
        return 0
    if not BASELINE_PATH.exists():
        print(f"missing {BASELINE_PATH}; run with --refresh first", file=sys.stderr)
        return 2
    return compare(measured)


if __name__ == "__main__":
    raise SystemExit(main())
