"""Figure 10: performance breakdown of Uninstall, Download, Grading, Find.

Reproduces the table's structure (total / startup / sandbox setup /
sandboxed execution / remaining) and its headline observations:

* "The Grading benchmark creates 5,371 sandboxes, Find creates 15,292,
  Uninstall creates one, and Download creates two" — at our scale the
  *ordering* holds: Find creates the most sandboxes (one per .c file),
  Grading many (per compile/test), Download exactly two (ldd +
  curl), Uninstall's command sandbox count is two (ldd + rm; the paper
  counts one because its pkg-native result was cached);
* "Racket startup cost is responsible for the high overhead of Download
  and Uninstall" — startup is a large share of their non-exec time;
* for Grading and Find, "most time outside of sandboxed execution is
  spent enforcing security guarantees: checking contracts and setting up
  sandboxes".
"""

from __future__ import annotations

from conftest import RUNS, record_row
from repro.bench.breakdown import (
    breakdown_download,
    breakdown_find,
    breakdown_grading,
    breakdown_uninstall,
)
from repro.bench.configs import SCALE, _emacs_kernel, _find_kernel, _grading_kernel


def test_fig10_breakdown_table(benchmark) -> None:
    rows = {
        "Uninstall": breakdown_uninstall(_emacs_kernel("download", True)),
        "Download": breakdown_download(_emacs_kernel("download", True)),
        "Grading": breakdown_grading(_grading_kernel(True)),
        "Find": breakdown_find(_find_kernel(True)),
    }
    record_row("Figure 10 breakdown:")
    for bd in rows.values():
        record_row("  " + bd.row())

    # Sandbox-count ordering (paper: 15,292 / 5,371 / 2 / 1).
    assert rows["Find"].sandbox_count > rows["Grading"].sandbox_count
    assert rows["Grading"].sandbox_count > rows["Download"].sandbox_count
    assert rows["Download"].sandbox_count == 2  # ldd + curl, as in the paper
    assert rows["Uninstall"].sandbox_count == 2  # ldd + rm

    # Expected sandbox counts scale with the workload.
    expected_grading = 2 + SCALE.grading_students * (1 + SCALE.grading_tests)
    assert rows["Grading"].sandbox_count == expected_grading

    # Every component is accounted for (remaining is non-negative by
    # construction; totals dominate their parts).
    for bd in rows.values():
        assert bd.total + 1e-9 >= bd.startup + bd.sandbox_setup + bd.sandbox_exec

    benchmark.pedantic(
        lambda: breakdown_download(_emacs_kernel("download", True)),
        rounds=max(RUNS, 2), iterations=1,
    )


def test_fig10_grading_find_security_dominated(benchmark) -> None:
    """For the sandbox-heavy benchmarks, setup + remaining (contract
    checking, script execution) is a substantial share of non-exec time."""
    grading = breakdown_grading(_grading_kernel(True))
    find = breakdown_find(_find_kernel(True))
    for bd in (grading, find):
        non_exec = bd.total - bd.sandbox_exec
        security = bd.sandbox_setup + bd.remaining
        assert security > 0.3 * non_exec, bd.row()
    benchmark.pedantic(lambda: breakdown_grading(_grading_kernel(True)), rounds=2, iterations=1)
