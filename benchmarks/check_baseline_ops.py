"""Gate CI on deterministic kernel op counts, not wall-clock.

Wall-clock assertions flake on shared runners; the kernel op counters
(``KernelStats``) are exact and reproducible, so perf regressions show
up as *op-count* growth long before timing noise can hide them.  This
script compares a fresh ``BENCH_fig9.json`` against the committed
``benchmarks/baseline_ops.json`` and fails on any counter that grew more
than the tolerance (default 10%).

Usage::

    python benchmarks/check_baseline_ops.py [BENCH_fig9.json]
    python benchmarks/check_baseline_ops.py --refresh [BENCH_fig9.json]

``--refresh`` regenerates the baseline from the measured run (see the
``_readme`` key of the baseline file for the full recipe).  Shrunken
counters (improvements) warn instead of failing — commit a refreshed
baseline so the gate tracks the better numbers.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

BASELINE_PATH = pathlib.Path(__file__).parent / "baseline_ops.json"

_README = [
    "Deterministic kernel op counts per Figure 9 cell (plus the Batch-Find",
    "backend row).  CI's bench-ops step fails when a fresh run's counters",
    "grow more than `tolerance` over these values — the noise-free stand-in",
    "for wall-clock perf gates.  To refresh after an intentional change:",
    "  PYTHONPATH=src REPRO_BENCH_JSON=BENCH_fig9.json python -m pytest -q benchmarks",
    "  python benchmarks/check_baseline_ops.py --refresh BENCH_fig9.json",
    "then commit the updated baseline_ops.json alongside the change.",
]


def _load_measured(path: pathlib.Path) -> dict[str, dict[str, dict[str, int]]]:
    payload = json.loads(path.read_text())
    measured: dict[str, dict[str, dict[str, int]]] = {}
    for bench, configs in payload.get("benchmarks", {}).items():
        for config, cell in configs.items():
            ops = cell.get("ops") or {}
            if ops:
                measured.setdefault(bench, {})[config] = {
                    key: int(value) for key, value in sorted(ops.items())
                }
    return measured


def refresh(measured: dict, tolerance: float) -> None:
    payload = {
        "_readme": _README,
        "tolerance": tolerance,
        "benchmarks": measured,
    }
    BASELINE_PATH.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    cells = sum(len(configs) for configs in measured.values())
    print(f"baseline_ops.json refreshed: {len(measured)} benchmarks, {cells} cells")


def compare(measured: dict) -> int:
    baseline = json.loads(BASELINE_PATH.read_text())
    tolerance = float(baseline.get("tolerance", 0.10))
    regressions: list[str] = []
    warnings: list[str] = []
    for bench, configs in baseline["benchmarks"].items():
        for config, expected in configs.items():
            actual = measured.get(bench, {}).get(config)
            if actual is None:
                regressions.append(f"{bench}/{config}: cell missing from measured run")
                continue
            for counter, base_value in expected.items():
                if counter not in actual:
                    # A renamed/dropped counter must fail loudly, or the
                    # gate silently stops covering it forever.
                    regressions.append(
                        f"{bench}/{config}/{counter}: counter missing from "
                        "measured run (renamed? refresh the baseline)")
                    continue
                value = actual[counter]
                if value == base_value:
                    continue
                limit = base_value * tolerance
                delta = value - base_value
                where = f"{bench}/{config}/{counter}: {base_value} -> {value}"
                if delta > limit:
                    regressions.append(f"{where} (+{delta}, > {tolerance:.0%})")
                elif -delta > limit:
                    warnings.append(f"{where} ({delta}; improved — refresh the baseline)")
            for counter in actual:
                if counter not in expected:
                    warnings.append(
                        f"{bench}/{config}/{counter}: new counter not in baseline — refresh")
    for bench, configs in measured.items():
        for config in configs:
            if config not in baseline["benchmarks"].get(bench, {}):
                warnings.append(f"{bench}/{config}: new cell not in baseline — refresh")
    for line in warnings:
        print(f"WARN  {line}")
    for line in regressions:
        print(f"FAIL  {line}")
    if regressions:
        print(f"\n{len(regressions)} op-count regression(s) beyond {tolerance:.0%}. "
              "If intentional, refresh the baseline (see baseline_ops.json _readme).")
        return 1
    print(f"bench-ops gate passed: every counter within {tolerance:.0%} of baseline "
          f"({sum(len(c) for c in baseline['benchmarks'].values())} cells).")
    return 0


#: counters worth a step-summary column (the rest stay in the JSON)
_SUMMARY_COUNTERS = ("vnode_ops", "total_syscalls", "mac_checks",
                     "mac_denials", "dcache_hits")


def summarize(measured: dict) -> None:
    """Print a markdown per-cell op-delta table (measured vs baseline)
    for the CI step summary.  Purely informational — the gate is
    :func:`compare`."""
    baseline = json.loads(BASELINE_PATH.read_text())["benchmarks"]

    def fmt(bench: str, config: str, counter: str) -> str:
        value = measured.get(bench, {}).get(config, {}).get(counter)
        base = baseline.get(bench, {}).get(config, {}).get(counter)
        if value is None:
            return "—"
        if base is None or base == value:
            return f"{value:,}"
        sign = "+" if value > base else ""
        delta = f"{sign}{value - base:,}"
        if base:
            delta += f", {sign}{(value - base) / base:.1%}"
        return f"{value:,} ({delta})"

    print("| cell | " + " | ".join(_SUMMARY_COUNTERS) + " |")
    print("|---" * (len(_SUMMARY_COUNTERS) + 1) + "|")
    cells = {(b, c) for b, cfgs in measured.items() for c in cfgs}
    cells |= {(b, c) for b, cfgs in baseline.items() for c in cfgs}
    for bench, config in sorted(cells):
        row = [fmt(bench, config, counter) for counter in _SUMMARY_COUNTERS]
        print(f"| {bench}/{config} | " + " | ".join(row) + " |")
    print("\nDeltas are vs the committed `benchmarks/baseline_ops.json`; "
          "the gating comparison runs in the bench-ops step.")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench_json", nargs="?", default="BENCH_fig9.json",
                        help="measured run (default: BENCH_fig9.json)")
    parser.add_argument("--refresh", action="store_true",
                        help="rewrite baseline_ops.json from the measured run")
    parser.add_argument("--summary", choices=["markdown"],
                        help="print a per-cell op-delta table instead of gating")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="relative growth allowed before failing (refresh "
                             "stores this; compare uses the stored value)")
    args = parser.parse_args(argv)
    bench_path = pathlib.Path(args.bench_json)
    if not bench_path.exists():
        print(f"measured run {bench_path} not found — did the benchmark "
              "pytest step crash before writing it?", file=sys.stderr)
        return 2
    measured = _load_measured(bench_path)
    if not measured:
        print(f"no op counts found in {args.bench_json}", file=sys.stderr)
        return 2
    if args.refresh:
        refresh(measured, args.tolerance)
        return 0
    if not BASELINE_PATH.exists():
        print(f"missing {BASELINE_PATH}; run with --refresh first", file=sys.stderr)
        return 2
    if args.summary:
        summarize(measured)
        return 0
    return compare(measured)


if __name__ == "__main__":
    raise SystemExit(main())
