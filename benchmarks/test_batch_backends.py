"""Batch backends, measured: sequential vs thread vs process-parallel.

The thread backend serialises interpreter work on the GIL, so it buys
concurrency but not cores; the process backend ships a picklable kernel
snapshot to each worker and is the only backend that scales with the
machine.  This file pins that claim the same way Figure 9 pins its rows:

* **op-gated equivalence** — every backend executes the identical
  deterministic kernel work (summed per-job op counts equal) and
  returns byte-identical results (``RunResult.fingerprint()``);
* **reported wall-clock** — per-backend means land in the printed table
  and in ``BENCH_fig9.json`` as the ``Batch-Find`` row, whose
  ``process-parallel`` column is the new cell next to the sequential
  and thread ones;
* **the speedup criterion** — on a 2+-core runner the process backend
  must beat the thread backend by >= 1.5x (best-of-rounds, like the fork
  engine's 2x criterion); single-core machines report the ratio without
  asserting, since there is nothing to scale onto.
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import RUNS, record_cell, record_row
from repro.api import Batch, ScriptRegistry, clear_result_cache
from repro.bench.harness import Sample
from repro.casestudies.findgrep import usr_src_world

WORKERS = 2
JOBS = 10
REPEATS = 3

WALK_CAP = """\
#lang shill/cap
provide walk :
  {cur : dir(+contents, +lookup, +path) \\/ file(+path, +read),
   out : file(+append)} -> void;
walk = fun(cur, out) {
  if is_file(cur) && has_ext(cur, "c") then
    append(out, path(cur) + "\\n");
  if is_dir(cur) then
    for name in contents(cur) {
      child = lookup(cur, name);
      if !is_syserror(child) then walk(child, out);
    }
}
"""

#: Each job walks the full /usr/src fixture six times — enough
#: interpreter + MAC work (~100ms) that parallelism, not pool overhead,
#: dominates the comparison.
WALK_AMBIENT = "#lang shill/ambient\n" + 'require "walk.cap";\n' + \
    'src = open_dir("/usr/src");\n' + "walk(src, stdout);\n" * 6

#: fig9-style cell names; "process-parallel" is the new column.
BACKEND_CELLS = {
    "sequential": "sequential",
    "thread": "thread",
    "process": "process-parallel",
}


def _build_batch() -> Batch:
    batch = Batch(usr_src_world(True),
                  scripts=ScriptRegistry().add("walk.cap", WALK_CAP),
                  cache=False)
    for i in range(JOBS):
        batch.add(WALK_AMBIENT, name=f"walk{i}")
    return batch


def _sum_ops(results) -> dict[str, int]:
    totals: dict[str, int] = {}
    for result in results:
        for key, value in result.ops.items():
            totals[key] = totals.get(key, 0) + value
    return totals


def _measure_backend(backend: str, repeats: int = REPEATS):
    """Time ``repeats`` batch runs; returns (Sample, fingerprint list)."""
    sample = Sample(BACKEND_CELLS[backend])
    fingerprints: list[bytes] = []
    for _ in range(repeats):
        clear_result_cache()
        batch = _build_batch()
        start = time.perf_counter()
        results = batch.run(backend=backend, workers=WORKERS)
        sample.seconds.append(time.perf_counter() - start)
        sample.ops.append(_sum_ops(results))
        fingerprints = [r.fingerprint() for r in results]
    return sample, fingerprints


@pytest.fixture(scope="module")
def backend_samples():
    """One measured (Sample, fingerprints) pair per backend, shared by
    the equivalence and speedup tests so the workload runs once."""
    measured = {b: _measure_backend(b) for b in BACKEND_CELLS}
    cells = {}
    for backend, (sample, _prints) in measured.items():
        cells[BACKEND_CELLS[backend]] = sample
        record_cell("Batch-Find", BACKEND_CELLS[backend], sample)
    base = cells["sequential"]
    row = [f"{'Batch-Find':12s}"]
    for name, sample in cells.items():
        row.append(f"{name}={sample.mean * 1000:8.2f}ms"
                   f" ({sample.ratio_to(base):4.2f}x)")
    record_row("  ".join(row) +
               f"  [{JOBS} jobs x {WORKERS} workers, {os.cpu_count()} cores]")
    return measured


def test_backends_are_op_identical(backend_samples):
    """The deterministic gate: every backend did exactly the same kernel
    work and produced byte-identical results — the wall-clock columns
    compare like with like."""
    base_sample, base_prints = backend_samples["sequential"]
    assert base_prints, "sequential run produced no results"
    for backend, (sample, prints) in backend_samples.items():
        assert prints == base_prints, f"{backend}: fingerprints diverged"
        assert sample.op_counts == base_sample.op_counts, (
            f"{backend}: op counts diverged"
        )
        assert sample.op_counts["sandboxes_created"] == 0
        assert sample.op_counts["vnode_ops"] > 0


def test_process_beats_thread_on_multicore(backend_samples):
    """The acceptance criterion: >= 1.5x over the thread backend on a
    2+-core runner (best-of-rounds; a single GC pause inside one timed
    round can dwarf the pool overhead)."""
    thread_best = min(backend_samples["thread"][0].seconds)
    process_best = min(backend_samples["process"][0].seconds)
    ratio = thread_best / process_best
    cores = os.cpu_count() or 1
    record_row(
        f"Batch process-parallel speedup: thread {thread_best * 1000:8.2f}ms, "
        f"process {process_best * 1000:8.2f}ms ({ratio:.2f}x on {cores} cores)"
    )
    if cores < 2:
        pytest.skip(f"speedup criterion needs 2+ cores, runner has {cores} "
                    f"(measured {ratio:.2f}x, reported above)")
    assert ratio >= 1.5, (
        f"process backend should be >=1.5x faster than threads on "
        f"{cores} cores, measured {ratio:.2f}x"
    )


def test_snapshot_cost_is_amortised(benchmark, backend_samples):
    """The one-time template pickle is the process backend's fixed cost;
    it must stay below one job's work (so fan-out wins immediately) —
    gated against the measured sequential per-job cost, not wall-clock
    alone, so a snapshot-cost blow-up fails loudly."""
    from repro.kernel.serialize import snapshot_kernel

    world = usr_src_world(True).boot()
    payloads: list[bytes] = []
    benchmark.pedantic(lambda: payloads.append(snapshot_kernel(world.kernel)),
                       rounds=max(RUNS, 2), iterations=1)
    snapshot_best = benchmark.stats.stats.min
    per_job = min(backend_samples["sequential"][0].seconds) / JOBS
    record_row(f"Kernel snapshot (usr_src world): {len(payloads[-1]) / 1024:.0f} KiB, "
               f"{snapshot_best * 1000:.2f}ms vs {per_job * 1000:.2f}ms/job")
    assert snapshot_best < per_job, (
        f"one-time snapshot ({snapshot_best * 1000:.2f}ms) should undercut a "
        f"single job ({per_job * 1000:.2f}ms) or fan-out never breaks even"
    )
