"""Batch executors, measured: sequential vs thread vs process vs store
vs remote vs serve.

The thread executor serialises interpreter work on the GIL, so it buys
concurrency but not cores; the process executor ships a picklable kernel
snapshot to each worker; the store executor boots workers from a
persistent on-disk snapshot store instead of re-pickling per run; the
remote executor shards jobs across *agent host* subprocesses over the
wire protocol, each agent booting from its own store; the serve
executor reaches the same agents through a long-lived *gateway*
subprocess the agents announce themselves to.  This file pins the
claims the same way Figure 9 pins its rows:

* **op-gated equivalence** — every executor executes the identical
  deterministic kernel work (summed per-job op counts equal) and
  returns byte-identical results (``RunResult.fingerprint()``), for the
  measured Find workload *and* for all four case-study worlds;
* **reported wall-clock** — per-executor means land in the printed table
  and in ``BENCH_fig9.json`` as the ``Batch-Find`` row (``remote`` and
  ``serve`` are the new columns next to sequential / thread /
  process-parallel / store);
* **the speedup criterion** — on a 2+-core runner the process backend
  must beat the thread backend by >= 1.5x (best-of-rounds, like the fork
  engine's 2x criterion); single-core machines report the ratio without
  asserting, since there is nothing to scale onto;
* **the warm-agent criterion** — an agent restarted over its own store
  boots a linked world with **zero** world-build kernel ops and no blob
  transfer (the ``Remote-Boot`` row, op-gated like ``Store-Boot``).
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import RUNS, record_cell, record_row
from repro.api import (
    Batch,
    ProcessExecutor,
    RemoteExecutor,
    ScriptRegistry,
    SequentialExecutor,
    ServeExecutor,
    SnapshotStore,
    StoreExecutor,
    ThreadExecutor,
    clear_boot_cache,
    clear_result_cache,
)
from repro.bench.harness import Sample
from repro.casestudies.findgrep import usr_src_world
from repro.casestudies.probes import case_study_batches
from repro.remote.agent import spawn_local_agent
from repro.serve import spawn_local_gateway

WORKERS = 2
JOBS = 10
REPEATS = 3
AGENTS = 2

WALK_CAP = """\
#lang shill/cap
provide walk :
  {cur : dir(+contents, +lookup, +path) \\/ file(+path, +read),
   out : file(+append)} -> void;
walk = fun(cur, out) {
  if is_file(cur) && has_ext(cur, "c") then
    append(out, path(cur) + "\\n");
  if is_dir(cur) then
    for name in contents(cur) {
      child = lookup(cur, name);
      if !is_syserror(child) then walk(child, out);
    }
}
"""

#: Each job walks the full /usr/src fixture six times — enough
#: interpreter + MAC work (~100ms) that parallelism, not pool overhead,
#: dominates the comparison.
WALK_AMBIENT = "#lang shill/ambient\n" + 'require "walk.cap";\n' + \
    'src = open_dir("/usr/src");\n' + "walk(src, stdout);\n" * 6

#: fig9-style cell names; "remote" and "serve" are the new columns.
BACKEND_CELLS = {
    "sequential": "sequential",
    "thread": "thread",
    "process": "process-parallel",
    "store": "store",
    "remote": "remote",
    "serve": "serve",
}


def _store_root(tmp_path_factory) -> str:
    """The persistent store the store-executor cells boot from:
    ``$REPRO_STORE`` when set (CI caches that directory), a session tmp
    dir otherwise."""
    return os.environ.get("REPRO_STORE") or str(
        tmp_path_factory.mktemp("snapshot-store"))


def _make_executor(backend: str, store_root: str, hosts=(), gateway=None):
    return {
        "sequential": lambda: SequentialExecutor(),
        "thread": lambda: ThreadExecutor(workers=WORKERS),
        "process": lambda: ProcessExecutor(workers=WORKERS),
        "store": lambda: StoreExecutor(store=SnapshotStore(store_root),
                                       workers=WORKERS),
        "remote": lambda: RemoteExecutor(list(hosts),
                                         store=SnapshotStore(store_root)),
        "serve": lambda: ServeExecutor(gateway,
                                       store=SnapshotStore(store_root),
                                       concurrency=WORKERS),
    }[backend]()


@pytest.fixture(scope="module")
def remote_hosts(tmp_path_factory):
    """Two real agent subprocesses — the smallest cluster — shared by
    every remote cell in this module (their stores warm up across
    batches exactly as a long-lived cluster's would)."""
    root = tmp_path_factory.mktemp("agents")
    agents = [spawn_local_agent(root / f"agent{i}") for i in range(AGENTS)]
    yield [addr for _proc, addr in agents]
    for proc, _addr in agents:
        proc.kill()
    for proc, _addr in agents:
        proc.wait(timeout=10)


@pytest.fixture(scope="module")
def serve_gateway(tmp_path_factory):
    """One real gateway subprocess fronting two announced agents — the
    smallest served fleet — shared by every serve cell in this module."""
    root = tmp_path_factory.mktemp("serve")
    gw_proc, gw = spawn_local_gateway(root / "gateway")
    agents = [spawn_local_agent(root / f"agent{i}", announce=gw)
              for i in range(AGENTS)]
    procs = [gw_proc] + [proc for proc, _addr in agents]
    yield gw
    for proc in procs:
        proc.kill()
    for proc in procs:
        proc.wait(timeout=10)


def _build_batch() -> Batch:
    batch = Batch(usr_src_world(True),
                  scripts=ScriptRegistry().add("walk.cap", WALK_CAP),
                  cache=False)
    for i in range(JOBS):
        batch.add(WALK_AMBIENT, name=f"walk{i}")
    return batch


def _sum_ops(results) -> dict[str, int]:
    totals: dict[str, int] = {}
    for result in results:
        for key, value in result.ops.items():
            totals[key] = totals.get(key, 0) + value
    return totals


def _measure_backend(backend: str, store_root: str, hosts=(), gateway=None,
                     repeats: int = REPEATS):
    """Time ``repeats`` batch runs; returns (Sample, fingerprint list)."""
    sample = Sample(BACKEND_CELLS[backend])
    fingerprints: list[bytes] = []
    for _ in range(repeats):
        clear_result_cache()
        batch = _build_batch()
        with _make_executor(backend, store_root, hosts, gateway) as executor:
            start = time.perf_counter()
            results = batch.run(executor=executor)
            sample.seconds.append(time.perf_counter() - start)
        sample.ops.append(_sum_ops(results))
        fingerprints = [r.fingerprint() for r in results]
    return sample, fingerprints


@pytest.fixture(scope="module")
def backend_samples(tmp_path_factory, remote_hosts, serve_gateway):
    """One measured (Sample, fingerprints) pair per executor, shared by
    the equivalence and speedup tests so the workload runs once."""
    store_root = _store_root(tmp_path_factory)
    measured = {b: _measure_backend(b, store_root, remote_hosts,
                                    serve_gateway)
                for b in BACKEND_CELLS}
    cells = {}
    for backend, (sample, _prints) in measured.items():
        cells[BACKEND_CELLS[backend]] = sample
        record_cell("Batch-Find", BACKEND_CELLS[backend], sample)
    base = cells["sequential"]
    row = [f"{'Batch-Find':12s}"]
    for name, sample in cells.items():
        row.append(f"{name}={sample.mean * 1000:8.2f}ms"
                   f" ({sample.ratio_to(base):4.2f}x)")
    record_row("  ".join(row) +
               f"  [{JOBS} jobs x {WORKERS} workers, {os.cpu_count()} cores]")
    return measured


def test_backends_are_op_identical(backend_samples):
    """The deterministic gate: every backend did exactly the same kernel
    work and produced byte-identical results — the wall-clock columns
    compare like with like."""
    base_sample, base_prints = backend_samples["sequential"]
    assert base_prints, "sequential run produced no results"
    for backend, (sample, prints) in backend_samples.items():
        assert prints == base_prints, f"{backend}: fingerprints diverged"
        assert sample.op_counts == base_sample.op_counts, (
            f"{backend}: op counts diverged"
        )
        assert sample.op_counts["sandboxes_created"] == 0
        assert sample.op_counts["vnode_ops"] > 0


def test_process_beats_thread_on_multicore(backend_samples):
    """The acceptance criterion: >= 1.5x over the thread backend on a
    2+-core runner (best-of-rounds; a single GC pause inside one timed
    round can dwarf the pool overhead)."""
    thread_best = min(backend_samples["thread"][0].seconds)
    process_best = min(backend_samples["process"][0].seconds)
    ratio = thread_best / process_best
    cores = os.cpu_count() or 1
    record_row(
        f"Batch process-parallel speedup: thread {thread_best * 1000:8.2f}ms, "
        f"process {process_best * 1000:8.2f}ms ({ratio:.2f}x on {cores} cores)"
    )
    if cores < 2:
        pytest.skip(f"speedup criterion needs 2+ cores, runner has {cores} "
                    f"(measured {ratio:.2f}x, reported above)")
    assert ratio >= 1.5, (
        f"process backend should be >=1.5x faster than threads on "
        f"{cores} cores, measured {ratio:.2f}x"
    )


def test_snapshot_cost_is_amortised(benchmark, backend_samples):
    """The one-time template pickle is the process backend's fixed cost;
    it must stay below one job's work (so fan-out wins immediately) —
    gated against the measured sequential per-job cost, not wall-clock
    alone, so a snapshot-cost blow-up fails loudly."""
    from repro.kernel.serialize import snapshot_kernel

    world = usr_src_world(True).boot()
    payloads: list[bytes] = []
    benchmark.pedantic(lambda: payloads.append(snapshot_kernel(world.kernel)),
                       rounds=max(RUNS, 2), iterations=1)
    snapshot_best = benchmark.stats.stats.min
    per_job = min(backend_samples["sequential"][0].seconds) / JOBS
    record_row(f"Kernel snapshot (usr_src world): {len(payloads[-1]) / 1024:.0f} KiB, "
               f"{snapshot_best * 1000:.2f}ms vs {per_job * 1000:.2f}ms/job")
    assert snapshot_best < per_job, (
        f"one-time snapshot ({snapshot_best * 1000:.2f}ms) should undercut a "
        f"single job ({per_job * 1000:.2f}ms) or fan-out never breaks even"
    )


#: The four case-study worlds, as their modules' probe batches — the
#: same table the unit suite uses (one source, no drift).
CASE_STUDY_BATCHES = case_study_batches()


@pytest.mark.parametrize("name", sorted(CASE_STUDY_BATCHES))
def test_every_executor_agrees_on_case_study_worlds(name, tmp_path_factory,
                                                    remote_hosts,
                                                    serve_gateway):
    """The acceptance criterion: all executors — sequential, thread,
    process, store, remote (2 local agent hosts), serve (a gateway over
    2 announced agents) — produce byte-identical fingerprint lists for
    each of the paper's four case-study worlds."""
    build = CASE_STUDY_BATCHES[name]
    store_root = _store_root(tmp_path_factory)

    def run(backend):
        clear_result_cache()
        with _make_executor(backend, store_root, remote_hosts,
                            serve_gateway) as executor:
            return build().run(executor=executor)

    baseline = run("sequential")
    assert all(r.ok for r in baseline), baseline[0].stderr
    for backend in ("thread", "process", "store", "remote", "serve"):
        assert [r.fingerprint() for r in run(backend)] == \
            [r.fingerprint() for r in baseline], f"{name}/{backend}"


# ---------------------------------------------------------------------------
# the Remote-Boot row: warm agent stores boot with zero build ops
# ---------------------------------------------------------------------------

#: The Store-Boot world at the same scaled-down size, so the
#: coordinator-build cell is comparable with Store-Boot/cold-build.
REMOTE_BOOT_KWARGS = dict(subsystems=2, files_per_dir=4)

REMOTE_BOOT_PROBE = ('#lang shill/ambient\n'
                     'src = open_dir("/usr/src/sys00/dir0");\n'
                     'append(stdout, path(src) + "\\n");\n')


def _remote_boot_round(agent_store, coord_store):
    """Spawn an agent over ``agent_store``, run one probe job, and
    return (seconds, coordinator BootInfo, agent BootInfo, results)."""
    clear_boot_cache()
    clear_result_cache()
    proc, addr = spawn_local_agent(agent_store)
    try:
        batch = Batch(usr_src_world(True, **REMOTE_BOOT_KWARGS), cache=False)
        batch.add(REMOTE_BOOT_PROBE, name="probe")
        with RemoteExecutor([addr], store=SnapshotStore(coord_store)) as executor:
            start = time.perf_counter()
            results = batch.run(executor=executor)
            seconds = time.perf_counter() - start
            return seconds, executor.boot_info, executor.host_boots[addr], results
    finally:
        proc.kill()
        proc.wait(timeout=10)


def test_warm_agent_store_boots_with_zero_build_ops(tmp_path_factory):
    """The acceptance criterion, op-gated: restart an agent over its own
    store and the next PREPARE restores the linked world from the
    agent's disk — ``source == "store"``, zero world-build kernel ops,
    no blob transfer — with fingerprints unchanged."""
    agent_store = tmp_path_factory.mktemp("remote-agent-store")
    # Fresh coordinator stores per round: the *agent's* warmth is under
    # test, so the coordinator must rebuild (round 1) and re-link
    # (round 2) rather than serve either side from a shared cache.
    cold_s, cold_coord, cold_agent, cold_results = _remote_boot_round(
        agent_store, tmp_path_factory.mktemp("coord-cold"))
    warm_s, _warm_coord, warm_agent, warm_results = _remote_boot_round(
        agent_store, tmp_path_factory.mktemp("coord-warm"))

    cold = Sample("coordinator-build")
    cold.seconds.append(cold_s)
    cold.ops.append(dict(cold_coord.build_ops))
    warm = Sample("agent-store-hit")
    warm.seconds.append(warm_s)
    warm.ops.append(dict(warm_agent.build_ops))
    record_cell("Remote-Boot", "coordinator-build", cold)
    record_cell("Remote-Boot", "agent-store-hit", warm)
    record_row(
        f"{'Remote-Boot':12s}coordinator-build={cold_s * 1000:8.2f}ms "
        f"({cold_coord.build_ops_total} build ops, agent via "
        f"{cold_agent.source})  "
        f"agent-store-hit={warm_s * 1000:8.2f}ms "
        f"({warm_agent.build_ops_total} agent build ops)"
    )

    # Cold round: the coordinator built the template and the agent
    # received the blob over the wire.
    assert cold_coord.source == "build" and cold_coord.build_ops_total > 0
    assert cold_agent.source == "wire"
    # Warm round: the restarted agent restored from its own store.
    assert warm_agent.source == "store"
    nonzero = {k: v for k, v in warm_agent.build_ops.items() if v}
    assert nonzero == {}, (
        f"warm agent boot performed kernel work it must not: {nonzero}")
    assert [r.fingerprint() for r in warm_results] == \
        [r.fingerprint() for r in cold_results]
