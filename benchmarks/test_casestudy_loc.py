"""Section 4.1's script-size accounting, regenerated from our scripts.

The paper reports, for each case study, how many lines the ambient and
capability-safe scripts take and how many of those are contracts —
evidence that "SHILL separates the security aspects of scripts from
functional aspects."  This benchmark counts the same quantities for our
reproduction's scripts and prints them beside the paper's numbers.  The
assertions encode the qualitative claims (contracts are a minority of
each script; the ambient scripts are short), not exact line counts.
"""

from __future__ import annotations

from conftest import record_row
from repro.casestudies import apache, findgrep, grading, package_mgmt


def count_lines(source: str) -> int:
    return sum(
        1
        for line in source.splitlines()
        if line.strip() and not line.strip().startswith("#")
    )


def count_contract_lines(source: str) -> int:
    """Lines inside ``provide name : ... ;`` declarations."""
    total = 0
    in_provide = False
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.startswith("provide "):
            in_provide = True
        if in_provide:
            total += 1
            if stripped.endswith(";"):
                in_provide = False
    return total


#: (case study, script kind) -> (source, paper's reported LoC, paper contract LoC)
TABLE = [
    ("Grading (sandboxed)", "cap", grading.SANDBOXED_CAP_SCRIPT, 22, 14),
    ("Grading (sandboxed)", "ambient", grading.SANDBOXED_AMBIENT_SCRIPT, 22, None),
    ("Grading (SHILL)", "cap", grading.PURE_SHILL_CAP_SCRIPT, 78, 6),
    ("Grading (SHILL)", "ambient", grading.PURE_SHILL_AMBIENT_SCRIPT, 16, None),
    ("Package mgmt", "cap", package_mgmt.CAP_SCRIPT, 91, 45),
    ("Package mgmt", "ambient", package_mgmt.AMBIENT_SCRIPT_TEMPLATE, 114, None),
    ("Apache", "cap", apache.CAP_SCRIPT, 30, 20),
    ("Apache", "ambient", apache.AMBIENT_SCRIPT, 27, None),
    ("Find (simple)", "cap", findgrep.SIMPLE_CAP_SCRIPT, 27, 5),
    ("Find (simple)", "ambient", findgrep.SIMPLE_AMBIENT, 11, None),
    ("Find (SHILL)", "cap", findgrep.FINE_CAP_SCRIPT + findgrep.FIND_CAP_SCRIPT, 60, 11),
    ("Find (SHILL)", "ambient", findgrep.FINE_AMBIENT, 9, None),
]


def test_casestudy_loc_table(benchmark):
    record_row("Case-study script sizes (ours vs paper):")
    record_row(f"  {'case study':22s} {'kind':8s} {'ours':>5s} {'paper':>6s} {'ctc':>4s} {'paper-ctc':>9s}")
    for study, kind, source, paper_loc, paper_ctc in TABLE:
        loc = count_lines(source)
        ctc = count_contract_lines(source) if kind == "cap" else 0
        record_row(
            f"  {study:22s} {kind:8s} {loc:5d} {paper_loc:6d} "
            f"{ctc:4d} {paper_ctc if paper_ctc is not None else '-':>9}"
        )
        if kind == "cap":
            # Contracts are present but are a minority of the script.
            assert 0 < ctc < loc
        else:
            # Ambient scripts are short: capability minting + one call.
            assert loc <= 30
    benchmark.pedantic(
        lambda: [count_contract_lines(src) for _, _, src, _, _ in TABLE],
        rounds=3, iterations=1,
    )
