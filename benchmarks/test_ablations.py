"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper, but quantifications of its design decisions:

1. **Contract proxies** — the cost of calling through a contract-guarded
   function vs. bare (Figure 10 attributes most non-exec SHILL time to
   contract checking, dominated by the pkg-native result contract).
2. **Sandbox granularity** — one sandbox running N commands vs. N
   sandboxes running one command each (the simple-vs-fine Find trade).
3. **Grant-set size** — sandbox setup cost as a function of the number of
   capabilities granted (why wallets batch at setup, not per-operation).
4. **Device interposition** — the per-write cost of the extension that
   closes the §3.2.3 chardev bypass.
"""

from __future__ import annotations

import time

from conftest import record_row
from repro.capability.caps import PipeFactoryCap
from repro.contracts.blame import Blame
from repro.contracts.core import PredicateContract
from repro.contracts.functionctc import FunctionContract
from repro.lang.runner import ShillRuntime
from repro.sandbox.privileges import Priv, PrivSet
from repro.stdlib.native import create_wallet, make_pkg_native, populate_native_wallet
from repro.world import build_world
from repro.world.image import WorldBuilder


def _rt():
    kernel = build_world()
    return ShillRuntime(kernel, user="root", cwd="/root")


def _wallet(rt):
    wallet = create_wallet()
    populate_native_wallet(
        wallet, rt.open_dir("/"), "/bin:/usr/bin:/usr/local/bin",
        "/lib:/usr/lib:/usr/local/lib", PipeFactoryCap(rt.sys),
    )
    return wallet


def test_ablation_contract_proxy_cost(benchmark):
    is_num = PredicateContract(lambda v: isinstance(v, int), "is_num")
    contract = FunctionContract([("x", is_num)], is_num)

    def target(x):
        return x + 1

    guarded = contract.check(target, Blame("p", "c"))

    def apply_fn(fn, args, kwargs):
        return fn(*args, **kwargs)

    iters = 20000
    start = time.perf_counter()
    for i in range(iters):
        target(i)
    bare = (time.perf_counter() - start) / iters
    start = time.perf_counter()
    for i in range(iters):
        guarded.invoke(apply_fn, [i], {})
    wrapped = (time.perf_counter() - start) / iters
    record_row(
        f"ablation contract-proxy: bare={bare * 1e6:6.3f}us "
        f"guarded={wrapped * 1e6:6.3f}us ({wrapped / bare:5.1f}x)"
    )
    assert wrapped > bare
    benchmark.pedantic(lambda: [guarded.invoke(apply_fn, [i], {}) for i in range(500)],
                       rounds=3, iterations=1)


def test_ablation_sandbox_granularity(benchmark):
    """N files cat'ed in one sandbox vs. one sandbox per file."""
    n = 12

    def setup_rt():
        rt = _rt()
        builder = WorldBuilder(rt.kernel)
        for i in range(n):
            builder.write_file(f"/root/data/f{i}.txt", b"x" * 32)
        return rt, _wallet(rt)

    rt1, w1 = setup_rt()
    cat1 = make_pkg_native(rt1)("cat", w1)
    files1 = [rt1.open_file(f"/root/data/f{i}.txt") for i in range(n)]
    start = time.perf_counter()
    assert rt1.call(cat1, files1) == 0
    coarse = time.perf_counter() - start

    rt2, w2 = setup_rt()
    cat2 = make_pkg_native(rt2)("cat", w2)
    start = time.perf_counter()
    for i in range(n):
        assert rt2.call(cat2, [rt2.open_file(f"/root/data/f{i}.txt")]) == 0
    fine = time.perf_counter() - start

    record_row(
        f"ablation granularity ({n} files): one-sandbox={coarse * 1000:7.2f}ms "
        f"per-file={fine * 1000:7.2f}ms ({fine / coarse:4.1f}x)"
    )
    assert fine > coarse  # per-file isolation has a real price
    rt3, w3 = setup_rt()
    cat3 = make_pkg_native(rt3)("cat", w3)
    benchmark.pedantic(
        lambda: rt3.call(cat3, [rt3.open_file("/root/data/f0.txt")]),
        rounds=3, iterations=1,
    )


def test_ablation_grant_set_size(benchmark):
    """Sandbox setup time grows with the number of granted capabilities."""
    import statistics

    def setup_cost(n_caps: int) -> float:
        rt = _rt()
        builder = WorldBuilder(rt.kernel)
        for i in range(n_caps):
            builder.write_file(f"/root/grants/g{i}.txt", b"x")
        wallet = _wallet(rt)
        echo = make_pkg_native(rt)("echo", wallet)
        extras = [rt.open_file(f"/root/grants/g{i}.txt") for i in range(n_caps)]
        rt.profile["sandbox_setup"] = 0.0
        samples = []
        for _ in range(5):
            before = rt.profile["sandbox_setup"]
            assert rt.call(echo, ["hi"], extras=extras) == 0
            samples.append(rt.profile["sandbox_setup"] - before)
        return statistics.median(samples)

    small = setup_cost(2)
    large = setup_cost(64)
    record_row(
        f"ablation grant-set size: 2 caps={small * 1000:6.2f}ms "
        f"64 caps={large * 1000:6.2f}ms ({large / small:4.1f}x)"
    )
    assert large > small
    benchmark.pedantic(lambda: setup_cost(8), rounds=2, iterations=1)


def test_ablation_grading_scale_sweep(benchmark):
    """Sandbox count — and hence SHILL-version cost — scales linearly
    with class size: 2 + students × (1 + tests), the Figure 10 formula."""
    from repro.casestudies.grading import run_shill_grading
    from repro.world import add_grading_fixture, build_world as bw

    results = {}
    for students in (2, 4, 8):
        kernel = bw()
        add_grading_fixture(kernel, students=students, tests=2,
                            malicious_reader=False, malicious_writer=False)
        start = time.perf_counter()
        result = run_shill_grading(kernel)
        elapsed = time.perf_counter() - start
        count = result.run.sandbox_count
        assert count == 2 + students * 3
        results[students] = (count, elapsed)
    record_row(
        "ablation grading scale: "
        + "  ".join(f"{n} students: {c} sandboxes, {t * 1000:6.1f}ms"
                    for n, (c, t) in results.items())
    )
    # More students -> strictly more sandboxes and more time.
    assert results[8][1] > results[2][1]

    def one_run():
        kernel = bw()
        add_grading_fixture(kernel, students=2, tests=2,
                            malicious_reader=False, malicious_writer=False)
        run_shill_grading(kernel)

    benchmark.pedantic(one_run, rounds=2, iterations=1)


def test_ablation_device_interposition_cost(benchmark):
    """Per-write cost of the chardev-interposition extension."""
    from repro.kernel.devices import TtyDevice
    from repro.kernel.fdesc import OpenFile
    from repro.kernel.syscalls import O_WRONLY
    from repro.kernel.vfs import Vnode, VType

    def per_write(interpose: bool) -> float:
        kernel = build_world()
        kernel.interpose_devices = interpose
        policy = kernel.shill_policy()
        tty = Vnode(VType.VCHR, 0o666, 0, 0)
        tty.device = TtyDevice()
        launcher = kernel.spawn_process("root", "/")
        child = kernel.procs.fork(launcher)
        session = policy.sessions.shill_init(child)
        policy.sessions.grant(session, tty, PrivSet.of(Priv.READ, Priv.WRITE, Priv.APPEND))
        child.fdtable.install(9, OpenFile(tty, O_WRONLY))
        sys = kernel.syscalls(child)
        sys.shill_enter()
        iters = 5000
        start = time.perf_counter()
        for _ in range(iters):
            sys.write(9, b"x")
        return (time.perf_counter() - start) / iters

    off = per_write(False)
    on = per_write(True)
    record_row(
        f"ablation device-interposition: off={off * 1e6:6.3f}us "
        f"on={on * 1e6:6.3f}us (+{(on - off) * 1e6:5.3f}us per write)"
    )
    assert on > off * 0.8  # interposition adds (small) cost, never saves
    benchmark.pedantic(lambda: per_write(True), rounds=2, iterations=1)
