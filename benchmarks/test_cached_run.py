"""The dependency-aware result cache, measured: a repeat query on a
mutated-but-disjoint world answers with **zero** kernel ops.

The analyzer (:mod:`repro.analysis.deps`) promises build-system early
cutoff for sandboxed runs: after a world mutation, a cached result
survives iff its static footprint provably cannot intersect the
mutation's write set.  This file pins the payoff op-count-gated as a
``Cached-Run`` row next to the Figure 9 cells:

* ``first-run`` — the walk query against a fresh world forks and
  executes; its ``ops`` are the run's own deterministic kernel op
  counts (``RunResult.ops``), all nonzero where a real run's must be;
* ``cached-hit`` — the world is then mutated with a **disjoint**
  administrative patch (:meth:`World.patch_file` — no process spawn, so
  the write set is exactly the patched path), and the identical query
  runs again: the verdict probe proves the footprint disjoint, the
  batch serves the cached result, and the measured op delta on the live
  kernel is **zero in every column** — early cutoff, end to end.

Both cells land in ``BENCH_fig9.json`` and are gated by
``benchmarks/check_baseline_ops.py``; the cached-hit row is pinned at
zero, so a single stray vnode op fails CI.  The gateway leg of the same
claim (a repeat SUBMIT answered from the per-user result cache without
an agent dispatch) is asserted from the request log in the serve-smoke
CI job and in ``tests/serve/test_gateway.py``.
"""

from __future__ import annotations

import time

import pytest

from conftest import record_cell, record_row
from repro.api import Batch, World, clear_boot_cache, clear_result_cache
from repro.bench.harness import Sample

WALK_AMBIENT = """\
#lang shill/ambient
docs = open_dir("~/Documents");
entries = contents(docs);
append(stdout, path(docs) + "\\n");
"""

#: Provably disjoint from the walk footprint (~/Documents + <stdout>).
DISJOINT_PATCH = "/tmp/cached-run-unrelated.txt"


@pytest.fixture(scope="module")
def cached_run_cells():
    """Measure both cells once; record the Cached-Run row."""
    clear_boot_cache()
    clear_result_cache()
    world = World().for_user("alice").with_jpeg_samples()

    first_batch = Batch(world).add(WALK_AMBIENT, name="walk")
    start = time.perf_counter()
    [first_result] = first_batch.run()
    first_seconds = time.perf_counter() - start

    world.patch_file(DISJOINT_PATCH, b"mutated, but disjoint")
    hit_batch = Batch(world).add(WALK_AMBIENT, name="walk")
    before = world.kernel.stats.snapshot()
    start = time.perf_counter()
    [hit_result] = hit_batch.run()
    hit_seconds = time.perf_counter() - start
    after = world.kernel.stats.snapshot()

    first = Sample("first-run")
    first.seconds.append(first_seconds)
    first.ops.append(dict(first_result.ops))
    hit = Sample("cached-hit")
    hit.seconds.append(hit_seconds)
    hit.ops.append(world.kernel.stats.delta(before, after))
    record_cell("Cached-Run", "first-run", first)
    record_cell("Cached-Run", "cached-hit", hit)
    report = hit_batch.cache_report
    record_row(
        f"{'Cached-Run':12s}first-run={first_seconds * 1000:8.2f}ms "
        f"({sum(first_result.ops.values())} run ops)  "
        f"cached-hit={hit_seconds * 1000:8.2f}ms "
        f"({sum(hit.op_counts.values())} kernel ops)  "
        f"[verdict={hit_batch.verdicts.get(0)}, "
        f"hits={report['hits']}, misses={report['misses']}]"
    )
    return first_batch, first_result, hit_batch, hit_result, hit.op_counts


def test_first_run_does_real_work(cached_run_cells):
    first_batch, first_result, _hit_batch, _hit_result, _ops = cached_run_cells
    assert first_batch.verdicts.get(0) == "miss"
    assert sum(first_result.ops.values()) > 0, (
        "the first run must show the query's real kernel op cost")


def test_cached_hit_answers_with_zero_kernel_ops(cached_run_cells):
    """The acceptance criterion, op-count gated: the repeat query on the
    mutated-but-disjoint world is served from the cache — VALID verdict,
    no fork, and not one kernel op on the live world."""
    _first_batch, _first_result, hit_batch, _hit_result, ops = cached_run_cells
    assert hit_batch.verdicts.get(0) == "hit"
    assert hit_batch.stats["forks"] == 0
    nonzero = {key: value for key, value in ops.items() if value}
    assert nonzero == {}, (
        f"cached-hit performed kernel work it must not: {nonzero}")


def test_cached_hit_is_byte_identical(cached_run_cells):
    _first_batch, first_result, _hit_batch, hit_result, _ops = cached_run_cells
    assert hit_result.fingerprint() == first_result.fingerprint()


def test_intersecting_patch_would_have_invalidated():
    """Control cell (not recorded): the same repeat query after an
    *intersecting* patch re-runs — the zero above is earned by the
    decision procedure, not by a cache that never invalidates."""
    clear_result_cache()
    world = World().for_user("alice").with_jpeg_samples()
    Batch(world).add(WALK_AMBIENT, name="walk").run()
    world.patch_file("/home/alice/Documents/extra.jpg", b"intersecting")
    batch = Batch(world).add(WALK_AMBIENT, name="walk")
    batch.run()
    assert batch.verdicts[0] == \
        "invalidated-by:/home/alice/Documents/extra.jpg"
    assert batch.stats["cache_hits"] == 0
