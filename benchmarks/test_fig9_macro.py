"""Figure 9: macro benchmarks in the four configurations.

Each test benchmarks the workload's most interesting secured
configuration with pytest-benchmark, *and* measures every configuration
with the comparison harness to print the full Figure 9 row and assert the
paper's qualitative shape:

* "the overhead of our system for programs that are not secured by SHILL
  scripts is negligible" — installed ≈ baseline;
* secured configurations cost more than baseline, with Download/Uninstall
  (startup-dominated) and SHILL-Find (one sandbox per file) the extremes.
"""

from __future__ import annotations

import pytest

from conftest import RUNS, record_row
from repro.bench import WORKLOADS, format_row, measure

#: Generous bound for "negligible": installed may not be slower than
#: baseline by more than this factor (the paper found no significant
#: difference; wall-clock noise at millisecond scale needs slack).
INSTALLED_TOLERANCE = 2.0


def _run_configs(bench: str) -> dict:
    cells = {}
    for config, make in WORKLOADS[bench].items():
        cells[config] = measure(make, runs=RUNS, warmup=1, name=config)
    record_row(format_row(bench, cells))
    return cells


def _assert_shape(bench: str, cells: dict) -> None:
    base = cells["baseline"].mean
    assert cells["installed"].mean <= base * INSTALLED_TOLERANCE, (
        f"{bench}: 'SHILL installed' overhead should be negligible"
    )
    for secured in ("sandboxed", "shill"):
        if secured in cells:
            # Security is not free, but the task still completes: the
            # secured run is bounded (well under 100x here).
            assert cells[secured].mean < base * 100


def _bench_primary(benchmark, bench: str, config: str) -> None:
    make = WORKLOADS[bench][config]
    benchmark.pedantic(lambda: make()(), rounds=max(RUNS, 2), iterations=1)


@pytest.mark.parametrize("bench,primary", [
    ("Grading", "shill"),
    ("Emacs", "shill"),
    ("Download", "sandboxed"),
    ("Untar", "sandboxed"),
    ("Configure", "sandboxed"),
    ("Make", "sandboxed"),
    ("Install", "sandboxed"),
    ("Uninstall", "sandboxed"),
    ("Apache", "sandboxed"),
    ("Find", "shill"),
])
def test_fig9_row(benchmark, bench: str, primary: str) -> None:
    cells = _run_configs(bench)
    _assert_shape(bench, cells)
    _bench_primary(benchmark, bench, primary)


def test_fig9_find_shill_slower_than_sandboxed(benchmark) -> None:
    """The SHILL version of Find creates a sandbox per .c file and is the
    most expensive configuration, as in the paper (6.01x baseline)."""
    cells = _run_configs("Find")
    assert cells["shill"].mean > cells["sandboxed"].mean
    benchmark.pedantic(lambda: WORKLOADS["Find"]["shill"]()(), rounds=2, iterations=1)


def test_fig9_download_startup_dominated(benchmark) -> None:
    """Download's secured run is dominated by runtime startup + wallet
    construction, not by the transfer itself (the paper's 1.73x for a
    much longer transfer)."""
    from repro.bench.configs import _emacs_kernel
    from repro.bench.breakdown import breakdown_download

    bd = breakdown_download(_emacs_kernel("download", True))
    assert bd.sandbox_exec < bd.total
    record_row(f"Download breakdown check: exec fraction = {bd.sandbox_exec / bd.total:.2f}")
    benchmark.pedantic(lambda: WORKLOADS["Download"]["sandboxed"]()(), rounds=2, iterations=1)
