"""Figure 9: macro benchmarks in the four configurations.

Each test benchmarks the workload's most interesting secured
configuration with pytest-benchmark, *and* measures every configuration
with the comparison harness to print the full Figure 9 row and assert the
paper's qualitative shape.

Shape assertions gate on **deterministic kernel operation counts**, not
wall-clock: under full-suite load, millisecond-scale timing means are
noisy enough to flake, while the op counts are exact and identical on
every run.  The paper's claims map onto counts directly:

* "the overhead of our system for programs that are not secured by SHILL
  scripts is negligible" — the installed configuration executes the
  *identical* operation trace as baseline (same syscalls, vnode ops, and
  MAC framework checks; the module just allows them), and creates zero
  sandboxes;
* secured configurations pay for security in sandboxes: every sandboxed
  / shill cell creates at least one, and the SHILL Find — one sandbox per
  matching file — creates the most of any configuration.

Wall-clock means ± CI are still measured and reported (the printed
Figure 9 row and the ``BENCH_fig9.json`` artifact); they are benchmark
output, not a gate.
"""

from __future__ import annotations

import pytest

from conftest import RUNS, record_cell, record_row
from repro.bench import WORKLOADS, format_row, measure


def _run_configs(bench: str) -> dict:
    cells = {}
    for config, make in WORKLOADS[bench].items():
        cells[config] = measure(make, runs=RUNS, warmup=1, name=config)
        record_cell(bench, config, cells[config])
    record_row(format_row(bench, cells))
    return cells


def _assert_shape(bench: str, cells: dict) -> None:
    base = cells["baseline"].op_counts
    installed = cells["installed"].op_counts
    assert base and installed, f"{bench}: op counts were not captured"
    # Installed-but-inactive is *exactly* baseline, operation for
    # operation — the deterministic form of "overhead is negligible".
    # Both the aggregates and the per-operation-name trace must agree
    # (equal totals could otherwise hide e.g. an open swapped for a read).
    assert installed == base, (
        f"{bench}: 'SHILL installed' must match baseline op counts"
    )
    assert cells["installed"].op_trace == cells["baseline"].op_trace, (
        f"{bench}: 'SHILL installed' must execute the identical op trace"
    )
    assert base["sandboxes_created"] == 0
    assert base["mac_denials"] == 0 and installed["mac_denials"] == 0
    for secured in ("sandboxed", "shill"):
        if secured in cells:
            sec = cells[secured].op_counts
            # Security is not free: the secured run builds sandboxes
            # (and still completes the task — its trace is non-trivial).
            assert sec["sandboxes_created"] >= 1, f"{bench}/{secured}"
            assert sec["total_syscalls"] > 0 or sec["vnode_ops"] > 0


def _bench_primary(benchmark, bench: str, config: str) -> None:
    make = WORKLOADS[bench][config]
    benchmark.pedantic(lambda: make()(), rounds=max(RUNS, 2), iterations=1)


@pytest.mark.parametrize("bench,primary", [
    ("Grading", "shill"),
    ("Emacs", "shill"),
    ("Download", "sandboxed"),
    ("Untar", "sandboxed"),
    ("Configure", "sandboxed"),
    ("Make", "sandboxed"),
    ("Install", "sandboxed"),
    ("Uninstall", "sandboxed"),
    ("Apache", "sandboxed"),
    ("Find", "shill"),
])
def test_fig9_row(benchmark, bench: str, primary: str) -> None:
    cells = _run_configs(bench)
    _assert_shape(bench, cells)
    _bench_primary(benchmark, bench, primary)


def test_fig9_find_shill_per_file_sandboxes(benchmark) -> None:
    """The SHILL version of Find creates a sandbox per .c file and is the
    most expensive configuration, as in the paper (6.01x baseline).  The
    deterministic form: it creates far more sandboxes than the simple
    version's single find+grep sandbox."""
    cells = _run_configs("Find")
    assert cells["shill"].op_counts["sandboxes_created"] > \
        cells["sandboxed"].op_counts["sandboxes_created"]
    benchmark.pedantic(lambda: WORKLOADS["Find"]["shill"]()(), rounds=2, iterations=1)


def test_fig9_download_startup_dominated(benchmark) -> None:
    """Download's secured run is dominated by runtime startup + wallet
    construction, not by the transfer itself (the paper's 1.73x for a
    much longer transfer)."""
    from repro.bench.configs import _emacs_kernel
    from repro.bench.breakdown import breakdown_download

    bd = breakdown_download(_emacs_kernel("download", True))
    assert bd.sandbox_exec < bd.total
    record_row(f"Download breakdown check: exec fraction = {bd.sandbox_exec / bd.total:.2f}")
    benchmark.pedantic(lambda: WORKLOADS["Download"]["sandboxed"]()(), rounds=2, iterations=1)
