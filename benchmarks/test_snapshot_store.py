"""The snapshot store, measured: a second boot does zero build work.

The persistent :class:`~repro.kernel.store.SnapshotStore` exists so a
fleet (or a fresh CI job restoring the cached store directory) boots a
known world from disk instead of re-running ~hundreds of world-build
kernel operations.  This file pins that claim **op-count-gated** — no
wall-clock flakes — as a ``Store-Boot`` row next to the Figure 9 cells:

* ``cold-build`` — booting the Find world through a *fresh* store always
  builds; its ``ops`` are the full deterministic world-build op counts
  (the kernel's counters right after the template materialises);
* ``store-hit`` — booting the same world digest again, with the
  in-process boot caches cleared (exactly a new process's state), must
  resolve the store link and restore from disk: the reported op delta —
  current counters minus the counters recorded when the link was
  written — is **zero in every column**, or the "boots from disk" claim
  is false.

Both cells land in ``BENCH_fig9.json`` and are gated by
``benchmarks/check_baseline_ops.py`` against the committed baseline; CI
persists the store directory (``$REPRO_STORE``) via ``actions/cache``
keyed on the baseline file, so a cache-warm run exercises the genuine
cross-process hit path.
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import record_cell, record_row
from repro.api import (
    SnapshotStore,
    StoreExecutor,
    clear_boot_cache,
    clear_result_cache,
)
from repro.bench.harness import Sample
from repro.casestudies.findgrep import usr_src_world

WORKERS = 2

#: Fixture kwargs shared by both cells — the digest (and therefore the
#: store link) is a function of these.
WORLD_KWARGS = dict(subsystems=2, files_per_dir=4)


def _timed_prepare(store: SnapshotStore):
    """Boot the Find world via a StoreExecutor from a cold in-process
    state; returns (seconds, BootInfo)."""
    clear_boot_cache()
    clear_result_cache()
    world = usr_src_world(True, **WORLD_KWARGS)
    executor = StoreExecutor(store=store, workers=WORKERS)
    start = time.perf_counter()
    executor.prepare(world)
    seconds = time.perf_counter() - start
    return seconds, executor.boot_info


@pytest.fixture(scope="module")
def store_boot_cells(tmp_path_factory):
    """Measure both cells once; record the Store-Boot row."""
    # Cold cell: a private fresh store can never hit, so this cell is
    # deterministic whether or not CI restored a cached store.
    cold_store = SnapshotStore(tmp_path_factory.mktemp("cold-store"))
    cold_seconds, cold_info = _timed_prepare(cold_store)

    # Warm cell: the persistent store (CI caches $REPRO_STORE across
    # runs).  Seed it — a no-op when the restored cache already holds
    # the link — then boot again from a cleared in-process state.
    warm_root = os.environ.get("REPRO_STORE") or str(
        tmp_path_factory.mktemp("warm-store"))
    warm_store = SnapshotStore(warm_root)
    _timed_prepare(warm_store)
    warm_seconds, warm_info = _timed_prepare(warm_store)

    cold = Sample("cold-build")
    cold.seconds.append(cold_seconds)
    cold.ops.append(dict(cold_info.build_ops))
    warm = Sample("store-hit")
    warm.seconds.append(warm_seconds)
    warm.ops.append(dict(warm_info.build_ops))
    record_cell("Store-Boot", "cold-build", cold)
    record_cell("Store-Boot", "store-hit", warm)
    record_row(
        f"{'Store-Boot':12s}cold-build={cold_seconds * 1000:8.2f}ms "
        f"({cold_info.build_ops_total} build ops)  "
        f"store-hit={warm_seconds * 1000:8.2f}ms "
        f"({warm_info.build_ops_total} build ops)  "
        f"[hits={warm_store.stats['hits']}, misses={warm_store.stats['misses']}]"
    )
    return cold_info, warm_info, warm_root


def test_cold_boot_builds_the_template(store_boot_cells):
    cold_info, _warm_info, _warm_root = store_boot_cells
    assert cold_info.source == "build"
    assert cold_info.build_ops_total > 0, (
        "a fresh store cannot serve a boot; the cold cell must show the "
        "world-build op cost")
    assert cold_info.build_ops["vnode_ops"] > 0


def test_second_boot_from_store_does_zero_build_ops(store_boot_cells):
    """The acceptance criterion, op-count gated: a second StoreExecutor
    boot of the same world digest loads from disk and performs no
    template-build kernel work at all."""
    _cold_info, warm_info, _warm_root = store_boot_cells
    assert warm_info.source == "store", (
        "second boot of a linked world digest must come from the store")
    nonzero = {key: value for key, value in warm_info.build_ops.items() if value}
    assert nonzero == {}, (
        f"store-hit boot performed kernel work it must not: {nonzero}")


def test_store_boot_serves_identical_results(store_boot_cells):
    """A store-booted world is the built world: same fingerprints."""
    from repro.api import Batch

    _cold_info, _warm_info, warm_root = store_boot_cells
    probe = ('#lang shill/ambient\n'
             'src = open_dir("/usr/src/sys00/dir0");\n'
             'append(stdout, path(src) + "\\n");\n')

    clear_boot_cache()
    clear_result_cache()
    built = (Batch(usr_src_world(True, **WORLD_KWARGS), cache=False)
             .add(probe).run())

    clear_boot_cache()
    clear_result_cache()
    with StoreExecutor(store=SnapshotStore(warm_root), workers=WORKERS) as executor:
        from_store = (Batch(usr_src_world(True, **WORLD_KWARGS), cache=False)
                      .add(probe).run(executor=executor))
    assert executor.boot_info.source == "store"
    assert [r.fingerprint() for r in from_store] == \
        [r.fingerprint() for r in built]
