"""The world fork / boot-image-cache engine, measured.

The Figure 9 harness reconstructs workload state for every timed run so
configurations always see identical worlds.  Before the fork engine that
meant a full ``build_world`` (~200 vnodes plus fixtures) per run; now it
is a copy-on-write fork of a cached template.  These benchmarks pin the
acceptance criterion: world preparation through the cache is at least 2x
faster end-to-end than per-run boots, across the Figure 9 workloads.
"""

from __future__ import annotations

import time

import pytest

from conftest import record_row
from repro.api import World, clear_boot_cache
from repro.casestudies.apache import web_world
from repro.casestudies.findgrep import usr_src_world
from repro.casestudies.grading import grading_world
from repro.casestudies.package_mgmt import emacs_world
from repro.bench.configs import SCALE

REPEATS = 5


def _fig9_worlds() -> list[World]:
    """One unbooted world per Figure 9 workload family, at bench scale."""
    return [
        grading_world(True, students=SCALE.grading_students,
                      tests=SCALE.grading_tests,
                      malicious_reader=False, malicious_writer=False),
        usr_src_world(True, subsystems=SCALE.src_subsystems,
                      files_per_dir=SCALE.src_files_per_dir),
        web_world(True, file_kb=SCALE.apache_file_kb, small_files=2),
        emacs_world(True),
    ]


def _prep_rounds(cold: bool) -> list[float]:
    """Per-round seconds to boot every Figure 9 world, REPEATS rounds;
    ``cold`` clears the boot-image cache before every round (the old
    per-run-boot regime), warm leaves it populated (the fork regime)."""
    clear_boot_cache()
    if not cold:
        for world in _fig9_worlds():  # populate templates (untimed)
            world.boot()
    rounds = []
    for _ in range(REPEATS):
        if cold:
            clear_boot_cache()
        start = time.perf_counter()
        for world in _fig9_worlds():
            world.boot()
        rounds.append(time.perf_counter() - start)
    return rounds


def test_fork_prepares_worlds_2x_faster_than_boot() -> None:
    boot_rounds = _prep_rounds(cold=True)
    fork_rounds = _prep_rounds(cold=False)
    # Compare minima: a single GC pause landing inside one timed round
    # (routine when the whole benchmark suite runs in one process) can
    # dwarf a sub-millisecond fork; the best observed round is the
    # honest cost of each path.
    ratio = min(boot_rounds) / min(fork_rounds)
    record_row(
        f"World prep (4 worlds/round): per-run boot {min(boot_rounds) * 1000:8.2f}ms, "
        f"cached fork {min(fork_rounds) * 1000:8.2f}ms ({ratio:.1f}x)"
    )
    assert ratio >= 2.0, (
        f"forking cached boot images should be >=2x faster than per-run "
        f"boots, measured {ratio:.2f}x"
    )


def test_fork_isolation_survives_the_speedup() -> None:
    """The cheap path must still be a *correct* path: forks taken from
    one cached template never observe each other's writes."""
    a = usr_src_world(True, subsystems=1, files_per_dir=4).boot()
    b = usr_src_world(True, subsystems=1, files_per_dir=4).boot()
    a.write_file("/usr/src/sys00/dir0/file0.c", b"mutated in a")
    assert b.read_file("/usr/src/sys00/dir0/file0.c") != b"mutated in a"


@pytest.mark.parametrize("parallel", [False, True])
def test_batched_find_rows(benchmark, parallel: bool) -> None:
    """A batched mini-workload over per-job forks, timed sequentially and
    thread-parallel (per-worker kernels)."""
    from repro.api import Batch, clear_result_cache

    src = """#lang shill/ambient
srcdir = open_dir("/usr/src");
listing = contents(srcdir);
"""

    def run() -> None:
        clear_result_cache()
        world = usr_src_world(True, subsystems=SCALE.src_subsystems,
                              files_per_dir=SCALE.src_files_per_dir)
        batch = Batch(world, cache=False)
        for i in range(8):
            batch.add(src, name=f"walk{i}")
        results = batch.run(parallel=parallel, workers=4)
        assert len(results) == 8

    benchmark.pedantic(run, rounds=3, iterations=1)
